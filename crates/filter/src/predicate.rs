//! Per-attribute predicates and their covering relation.

use std::cmp::Ordering;
use std::fmt;

use layercake_event::{AttrId, AttrValue};
use serde::{DeError, Deserialize, Serialize, Value};

/// A predicate on a single attribute value.
///
/// Predicates correspond to the operator/value part of the paper's
/// name-value-operator tuples, e.g. `(price, 5.0, >)`. Two non-standard
/// members complete the language: [`Predicate::Exists`] (`(volume, ∃)` in
/// Example 3) and [`Predicate::Any`], the wildcard `(Attr, "ALL", =)` of
/// Section 4.4, which matches *regardless of the attribute's presence or
/// value*.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Predicate {
    /// Value equals (numeric kinds compare through `f64`).
    Eq(AttrValue),
    /// Value differs (present and not equal).
    Ne(AttrValue),
    /// Value strictly less than.
    Lt(AttrValue),
    /// Value less than or equal.
    Le(AttrValue),
    /// Value strictly greater than.
    Gt(AttrValue),
    /// Value greater than or equal.
    Ge(AttrValue),
    /// Value equals one of the given values (a disjunction on one
    /// attribute; what covering merges of equality filters produce).
    In(Vec<AttrValue>),
    /// String value starts with the given prefix.
    Prefix(String),
    /// String value contains the given substring (the tractable fragment of
    /// the "regular expressions" expressiveness level of Section 2.1).
    Contains(String),
    /// Attribute is present, any value.
    Exists,
    /// Wildcard: matches whether or not the attribute is present.
    Any,
}

impl Predicate {
    /// Evaluates the predicate against an attribute value (`None` when the
    /// attribute is absent from the event).
    ///
    /// Every predicate except [`Predicate::Any`] requires the attribute to
    /// be present; ordering predicates additionally require the value kinds
    /// to be comparable.
    #[must_use]
    pub fn matches(&self, value: Option<&AttrValue>) -> bool {
        let Some(v) = value else {
            return matches!(self, Predicate::Any);
        };
        match self {
            Predicate::Any | Predicate::Exists => true,
            Predicate::Eq(w) => v.value_eq(w),
            Predicate::Ne(w) => !v.value_eq(w),
            Predicate::Lt(w) => v.compare(w) == Some(Ordering::Less),
            Predicate::Le(w) => matches!(v.compare(w), Some(Ordering::Less | Ordering::Equal)),
            Predicate::Gt(w) => v.compare(w) == Some(Ordering::Greater),
            Predicate::Ge(w) => matches!(v.compare(w), Some(Ordering::Greater | Ordering::Equal)),
            Predicate::In(set) => set.iter().any(|w| v.value_eq(w)),
            Predicate::Prefix(p) => v.as_str().is_some_and(|s| s.starts_with(p.as_str())),
            Predicate::Contains(p) => v.as_str().is_some_and(|s| s.contains(p.as_str())),
        }
    }

    /// Whether this predicate covers (is weaker than or equal to) `other`:
    /// every value — including absence — matched by `other` is matched by
    /// `self` (Definition 2, restricted to one attribute).
    ///
    /// The implementation is sound and conservative: a `true` result is
    /// always correct; some true coverings between exotic predicate pairs
    /// may be reported as `false`.
    #[must_use]
    pub fn covers(&self, other: &Predicate) -> bool {
        match self {
            Predicate::Any => true,
            // Only `Any` matches absent attributes, so `Exists` covers
            // everything else.
            Predicate::Exists => !matches!(other, Predicate::Any),
            // `Ne(v)` matches exactly "present and not v": it covers any
            // presence-requiring predicate that does not match `v`.
            Predicate::Ne(v) => !matches!(other, Predicate::Any) && !other.matches(Some(v)),
            // A value set covers exactly the equalities (and smaller sets)
            // it contains.
            Predicate::In(set) => match other {
                Predicate::Eq(w) => set.iter().any(|v| v.value_eq(w)),
                Predicate::In(sub) => sub.iter().all(|w| set.iter().any(|v| v.value_eq(w))),
                _ => false,
            },
            Predicate::Prefix(p) => match other {
                Predicate::Prefix(q) => q.starts_with(p.as_str()),
                Predicate::Eq(AttrValue::Str(w)) => w.starts_with(p.as_str()),
                Predicate::In(sub) if matches!(self, Predicate::Prefix(_)) => sub
                    .iter()
                    .all(|w| w.as_str().is_some_and(|s| s.starts_with(p.as_str()))),
                _ => false,
            },
            // `Contains(p)` covers anything whose every match is a string
            // containing `p`: prefixes and exact strings that contain `p`,
            // and tighter substrings.
            Predicate::Contains(p) => match other {
                Predicate::Contains(q) => q.contains(p.as_str()),
                // Every string starting with q contains q, hence contains p.
                Predicate::Prefix(q) => q.contains(p.as_str()),
                Predicate::Eq(AttrValue::Str(w)) => w.contains(p.as_str()),
                Predicate::In(sub) => sub
                    .iter()
                    .all(|w| w.as_str().is_some_and(|s| s.contains(p.as_str()))),
                _ => false,
            },
            // Interval-representable predicates.
            Predicate::Eq(_)
            | Predicate::Lt(_)
            | Predicate::Le(_)
            | Predicate::Gt(_)
            | Predicate::Ge(_) => {
                match other {
                    // No interval can soundly bound a substring predicate.
                    Predicate::Contains(_) => false,
                    // A value set is covered when every member is.
                    Predicate::In(sub) => {
                        !sub.is_empty() && sub.iter().all(|w| self.matches(Some(w)))
                    }
                    Predicate::Prefix(q) => {
                        // Every string with prefix q is lexicographically >= q,
                        // so lower bounds can cover prefixes.
                        match self {
                            Predicate::Ge(AttrValue::Str(w)) => q.as_str() >= w.as_str(),
                            Predicate::Gt(AttrValue::Str(w)) => q.as_str() > w.as_str(),
                            _ => false,
                        }
                    }
                    _ => match (Interval::of(self), Interval::of(other)) {
                        (Some(w), Some(s)) => w.contains_interval(&s),
                        _ => false,
                    },
                }
            }
        }
    }

    /// The interval view of this predicate, if it has one.
    pub(crate) fn interval(&self) -> Option<Interval> {
        Interval::of(self)
    }

    /// The paper's operator notation for this predicate.
    #[must_use]
    pub fn op_symbol(&self) -> &'static str {
        match self {
            Predicate::Eq(_) => "=",
            Predicate::Ne(_) => "!=",
            Predicate::Lt(_) => "<",
            Predicate::Le(_) => "<=",
            Predicate::Gt(_) => ">",
            Predicate::Ge(_) => ">=",
            Predicate::In(_) => "in",
            Predicate::Prefix(_) => "prefix",
            Predicate::Contains(_) => "contains",
            Predicate::Exists => "exists",
            Predicate::Any => "ALL",
        }
    }
}

/// A one-sided or two-sided interval over comparable [`AttrValue`]s; the
/// set-of-values view of the ordering predicates.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Interval {
    /// Lower bound and whether it is inclusive.
    pub lo: Option<(AttrValue, bool)>,
    /// Upper bound and whether it is inclusive.
    pub hi: Option<(AttrValue, bool)>,
}

impl Interval {
    pub(crate) fn of(pred: &Predicate) -> Option<Interval> {
        let iv = match pred {
            Predicate::Eq(v) => Interval {
                lo: Some((v.clone(), true)),
                hi: Some((v.clone(), true)),
            },
            Predicate::Lt(v) => Interval {
                lo: None,
                hi: Some((v.clone(), false)),
            },
            Predicate::Le(v) => Interval {
                lo: None,
                hi: Some((v.clone(), true)),
            },
            Predicate::Gt(v) => Interval {
                lo: Some((v.clone(), false)),
                hi: None,
            },
            Predicate::Ge(v) => Interval {
                lo: Some((v.clone(), true)),
                hi: None,
            },
            _ => return None,
        };
        Some(iv)
    }

    /// Whether `self`'s value set contains `other`'s. Bounds of incomparable
    /// kinds make this `false` (conservative).
    pub(crate) fn contains_interval(&self, other: &Interval) -> bool {
        if other.is_empty() {
            return true;
        }
        let lo_ok = match (&self.lo, &other.lo) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some((a, a_inc)), Some((b, b_inc))) => match a.compare(b) {
                Some(Ordering::Less) => true,
                Some(Ordering::Equal) => *a_inc || !*b_inc,
                _ => false,
            },
        };
        if !lo_ok {
            return false;
        }
        match (&self.hi, &other.hi) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some((a, a_inc)), Some((b, b_inc))) => match a.compare(b) {
                Some(Ordering::Greater) => true,
                Some(Ordering::Equal) => *a_inc || !*b_inc,
                _ => false,
            },
        }
    }

    /// Whether the interval denotes the empty set.
    pub(crate) fn is_empty(&self) -> bool {
        if let (Some((lo, lo_inc)), Some((hi, hi_inc))) = (&self.lo, &self.hi) {
            match lo.compare(hi) {
                Some(Ordering::Greater) => true,
                Some(Ordering::Equal) => !(*lo_inc && *hi_inc),
                Some(Ordering::Less) => false,
                None => true, // mixed-kind bounds denote nothing
            }
        } else {
            false
        }
    }

    /// Intersects two intervals (used when a filter carries several
    /// constraints on the same attribute). `None` when bounds are of
    /// incomparable kinds.
    pub(crate) fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = tighter_bound(&self.lo, &other.lo, true)?;
        let hi = tighter_bound(&self.hi, &other.hi, false)?;
        Some(Interval { lo, hi })
    }

    /// The convex hull of two intervals (used by filter merging).
    pub(crate) fn hull(&self, other: &Interval) -> Option<Interval> {
        let lo = looser_bound(&self.lo, &other.lo, true)?;
        let hi = looser_bound(&self.hi, &other.hi, false)?;
        Some(Interval { lo, hi })
    }

    /// Renders this interval back into one or two predicates.
    pub(crate) fn to_predicates(&self) -> Vec<Predicate> {
        match (&self.lo, &self.hi) {
            (Some((lo, true)), Some((hi, true))) if lo.value_eq(hi) => {
                vec![Predicate::Eq(lo.clone())]
            }
            (lo, hi) => {
                let mut out = Vec::new();
                match lo {
                    Some((v, true)) => out.push(Predicate::Ge(v.clone())),
                    Some((v, false)) => out.push(Predicate::Gt(v.clone())),
                    None => {}
                }
                match hi {
                    Some((v, true)) => out.push(Predicate::Le(v.clone())),
                    Some((v, false)) => out.push(Predicate::Lt(v.clone())),
                    None => {}
                }
                out
            }
        }
    }
}

type Bound = Option<(AttrValue, bool)>;

/// Picks the tighter of two bounds (for intersection). `is_lo` selects the
/// direction. Returns `None` on incomparable kinds.
fn tighter_bound(a: &Bound, b: &Bound, is_lo: bool) -> Option<Bound> {
    combine_bound(a, b, is_lo, true)
}

/// Picks the looser of two bounds (for hulls).
fn looser_bound(a: &Bound, b: &Bound, is_lo: bool) -> Option<Bound> {
    combine_bound(a, b, is_lo, false)
}

fn combine_bound(a: &Bound, b: &Bound, is_lo: bool, tighter: bool) -> Option<Bound> {
    match (a, b) {
        (None, None) => Some(None),
        (Some(x), None) | (None, Some(x)) => {
            // An absent bound is the loosest possible.
            if tighter {
                Some(Some(x.clone()))
            } else {
                Some(None)
            }
        }
        (Some((av, ai)), Some((bv, bi))) => {
            let ord = av.compare(bv)?;
            let pick_a = match ord {
                Ordering::Equal => {
                    // For lower bounds, exclusive is tighter; for upper
                    // bounds likewise. Inclusive is looser either way.
                    if tighter {
                        !ai || *bi // prefer the exclusive one
                    } else {
                        *ai || !bi // prefer the inclusive one
                    }
                }
                Ordering::Less => {
                    // a < b: for lower bounds b is tighter, for upper bounds
                    // a is tighter.
                    if is_lo {
                        !tighter
                    } else {
                        tighter
                    }
                }
                Ordering::Greater => {
                    if is_lo {
                        tighter
                    } else {
                        !tighter
                    }
                }
            };
            Some(Some(if pick_a {
                (av.clone(), *ai)
            } else {
                (bv.clone(), *bi)
            }))
        }
    }
}

/// A named attribute constraint: one component of a conjunction filter,
/// the paper's `(name, value, operator)` tuple.
///
/// The attribute name is *compiled* to an interned [`AttrId`] on
/// construction, so every downstream matching structure — filter tables,
/// counting slots, dense per-attribute groups — works with `u32` ids and
/// never touches the string on the hot path. [`name`](AttrFilter::name)
/// still resolves the original spelling, and the serialized form carries
/// the name (ids are process-local).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttrFilter {
    id: AttrId,
    pred: Predicate,
}

impl AttrFilter {
    /// Creates a constraint on the named attribute, interning the name.
    #[must_use]
    pub fn new(name: impl Into<String>, pred: Predicate) -> Self {
        Self {
            id: AttrId::intern(&name.into()),
            pred,
        }
    }

    /// Creates a constraint on an already-interned attribute.
    #[must_use]
    pub fn for_id(id: AttrId, pred: Predicate) -> Self {
        Self { id, pred }
    }

    /// The constrained attribute name.
    #[must_use]
    pub fn name(&self) -> &str {
        self.id.name()
    }

    /// The interned id of the constrained attribute.
    #[must_use]
    pub fn id(&self) -> AttrId {
        self.id
    }

    /// The predicate applied to the attribute.
    #[must_use]
    pub fn predicate(&self) -> &Predicate {
        &self.pred
    }

    /// Whether this is a wildcard constraint (`(Attr, "ALL", =)`).
    #[must_use]
    pub fn is_wildcard(&self) -> bool {
        matches!(self.pred, Predicate::Any)
    }
}

// Hand-written so the wire form spells out the attribute name (`{"name":
// ..., "pred": ...}`), matching the pre-interning representation.
impl Serialize for AttrFilter {
    fn serialize_value(&self) -> Value {
        let mut obj = Value::object();
        obj.insert_field("name", Value::Str(self.name().to_owned()));
        obj.insert_field("pred", self.pred.serialize_value());
        obj
    }
}

impl Deserialize for AttrFilter {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let name: String = serde::__field(v, "name")?;
        Ok(Self {
            id: AttrId::intern(&name),
            pred: serde::__field(v, "pred")?,
        })
    }
}

impl fmt::Display for AttrFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.pred {
            Predicate::Exists => write!(f, "({}, ∃)", self.name()),
            Predicate::Any => write!(f, "({}, \"ALL\", =)", self.name()),
            Predicate::Prefix(p) => write!(f, "({}, {p:?}, prefix)", self.name()),
            Predicate::In(set) => {
                write!(f, "({}, {{", self.name())?;
                for (i, v) in set.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("}, in)")
            }
            Predicate::Contains(p) => write!(f, "({}, {p:?}, contains)", self.name()),
            Predicate::Eq(v)
            | Predicate::Ne(v)
            | Predicate::Lt(v)
            | Predicate::Le(v)
            | Predicate::Gt(v)
            | Predicate::Ge(v) => write!(f, "({}, {v}, {})", self.name(), self.pred.op_symbol()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> AttrValue {
        AttrValue::Int(v)
    }
    fn f(v: f64) -> AttrValue {
        AttrValue::Float(v)
    }
    fn s(v: &str) -> AttrValue {
        AttrValue::from(v)
    }

    #[test]
    fn matching_semantics() {
        assert!(Predicate::Eq(f(10.0)).matches(Some(&i(10))));
        assert!(Predicate::Ne(s("Foo")).matches(Some(&s("Bar"))));
        assert!(Predicate::Lt(f(11.0)).matches(Some(&f(10.5))));
        assert!(!Predicate::Lt(f(11.0)).matches(Some(&f(11.0))));
        assert!(Predicate::Le(f(11.0)).matches(Some(&f(11.0))));
        assert!(Predicate::Gt(i(5)).matches(Some(&f(5.5))));
        assert!(Predicate::Ge(i(5)).matches(Some(&i(5))));
        assert!(Predicate::Prefix("Fo".into()).matches(Some(&s("Foo"))));
        assert!(!Predicate::Prefix("Fo".into()).matches(Some(&i(5))));
        assert!(Predicate::Exists.matches(Some(&i(0))));
    }

    #[test]
    fn absence_semantics() {
        assert!(Predicate::Any.matches(None));
        assert!(!Predicate::Exists.matches(None));
        assert!(!Predicate::Eq(i(1)).matches(None));
        assert!(!Predicate::Ne(i(1)).matches(None));
        assert!(!Predicate::Lt(i(1)).matches(None));
    }

    #[test]
    fn incomparable_kinds_never_match_orderings() {
        assert!(!Predicate::Lt(s("z")).matches(Some(&i(5))));
        assert!(!Predicate::Ge(i(5)).matches(Some(&s("abc"))));
        // Ne across kinds: the values are not equal, so Ne holds.
        assert!(Predicate::Ne(s("x")).matches(Some(&i(5))));
    }

    #[test]
    fn any_covers_everything() {
        for p in [
            Predicate::Eq(i(1)),
            Predicate::Exists,
            Predicate::Any,
            Predicate::Prefix("a".into()),
            Predicate::Ne(i(1)),
        ] {
            assert!(Predicate::Any.covers(&p), "Any should cover {p:?}");
        }
    }

    #[test]
    fn exists_covers_all_but_any() {
        assert!(Predicate::Exists.covers(&Predicate::Eq(i(1))));
        assert!(Predicate::Exists.covers(&Predicate::Ne(i(1))));
        assert!(Predicate::Exists.covers(&Predicate::Exists));
        assert!(Predicate::Exists.covers(&Predicate::Prefix("a".into())));
        assert!(!Predicate::Exists.covers(&Predicate::Any));
        assert!(!Predicate::Eq(i(1)).covers(&Predicate::Any));
    }

    #[test]
    fn interval_coverings_match_paper_example_2() {
        // f'' = (price, 5.0, >) covers (price, 5.0, >) tightened variants:
        let gt5 = Predicate::Gt(f(5.0));
        let ge45 = Predicate::Ge(f(4.5));
        assert!(ge45.covers(&gt5));
        assert!(!gt5.covers(&ge45));
        // Lt(11) covers Lt(10) but not vice versa (paper g1 over f1).
        assert!(Predicate::Lt(f(11.0)).covers(&Predicate::Lt(f(10.0))));
        assert!(!Predicate::Lt(f(10.0)).covers(&Predicate::Lt(f(11.0))));
        // Boundary inclusivity.
        assert!(Predicate::Le(f(10.0)).covers(&Predicate::Lt(f(10.0))));
        assert!(!Predicate::Lt(f(10.0)).covers(&Predicate::Le(f(10.0))));
        assert!(Predicate::Ge(f(5.0)).covers(&Predicate::Eq(f(5.0))));
        assert!(!Predicate::Gt(f(5.0)).covers(&Predicate::Eq(f(5.0))));
    }

    #[test]
    fn eq_covering() {
        assert!(Predicate::Eq(f(5.0)).covers(&Predicate::Eq(i(5))));
        assert!(!Predicate::Eq(i(5)).covers(&Predicate::Eq(i(6))));
        assert!(!Predicate::Eq(i(5)).covers(&Predicate::Lt(i(5))));
    }

    #[test]
    fn ne_covering_via_complement() {
        assert!(Predicate::Ne(i(7)).covers(&Predicate::Eq(i(5))));
        assert!(!Predicate::Ne(i(5)).covers(&Predicate::Eq(i(5))));
        assert!(Predicate::Ne(i(5)).covers(&Predicate::Ne(i(5))));
        assert!(!Predicate::Ne(i(5)).covers(&Predicate::Ne(i(6))));
        // Ne(10) covers Lt(10) (everything below 10 differs from 10).
        assert!(Predicate::Ne(i(10)).covers(&Predicate::Lt(i(10))));
        assert!(!Predicate::Ne(i(9)).covers(&Predicate::Lt(i(10))));
        // A string disequality covers a numeric range entirely.
        assert!(Predicate::Ne(s("x")).covers(&Predicate::Lt(i(10))));
    }

    #[test]
    fn prefix_covering() {
        assert!(Predicate::Prefix("Fo".into()).covers(&Predicate::Prefix("Foo".into())));
        assert!(!Predicate::Prefix("Foo".into()).covers(&Predicate::Prefix("Fo".into())));
        assert!(Predicate::Prefix("Fo".into()).covers(&Predicate::Eq(s("Foo"))));
        assert!(!Predicate::Prefix("Fo".into()).covers(&Predicate::Eq(s("Bar"))));
        assert!(Predicate::Prefix(String::new()).covers(&Predicate::Prefix("x".into())));
        // Lower string bounds cover prefixes.
        assert!(Predicate::Ge(s("F")).covers(&Predicate::Prefix("Fo".into())));
        assert!(Predicate::Gt(s("E")).covers(&Predicate::Prefix("F".into())));
        assert!(!Predicate::Gt(s("F")).covers(&Predicate::Prefix("F".into())));
        // Upper bounds cannot soundly cover prefixes (extensions unbounded).
        assert!(!Predicate::Lt(s("Fz")).covers(&Predicate::Prefix("Fo".into())));
    }

    #[test]
    fn cross_kind_intervals_never_cover() {
        assert!(!Predicate::Lt(s("z")).covers(&Predicate::Lt(i(10))));
        assert!(!Predicate::Ge(i(0)).covers(&Predicate::Ge(s("a"))));
    }

    #[test]
    fn interval_intersection_and_hull() {
        let a = Interval::of(&Predicate::Ge(i(5))).unwrap();
        let b = Interval::of(&Predicate::Le(i(10))).unwrap();
        let band = a.intersect(&b).unwrap();
        assert!(!band.is_empty());
        assert_eq!(
            band.to_predicates(),
            vec![Predicate::Ge(i(5)), Predicate::Le(i(10))]
        );

        let c = Interval::of(&Predicate::Lt(i(3))).unwrap();
        assert!(a.intersect(&c).unwrap().is_empty());

        let h = Interval::of(&Predicate::Lt(f(10.0)))
            .unwrap()
            .hull(&Interval::of(&Predicate::Lt(f(11.0))).unwrap())
            .unwrap();
        assert_eq!(h.to_predicates(), vec![Predicate::Lt(f(11.0))]);
    }

    #[test]
    fn point_interval_renders_as_eq() {
        let a = Interval::of(&Predicate::Ge(i(5))).unwrap();
        let b = Interval::of(&Predicate::Le(i(5))).unwrap();
        let point = a.intersect(&b).unwrap();
        assert_eq!(point.to_predicates(), vec![Predicate::Eq(i(5))]);
    }

    #[test]
    fn boundary_inclusivity_in_combine() {
        let lt = Interval::of(&Predicate::Lt(i(5))).unwrap();
        let le = Interval::of(&Predicate::Le(i(5))).unwrap();
        assert_eq!(lt.intersect(&le).unwrap(), lt);
        assert_eq!(lt.hull(&le).unwrap(), le);
    }

    #[test]
    fn attr_filter_display_matches_paper() {
        let af = AttrFilter::new("price", Predicate::Lt(f(10.0)));
        assert_eq!(af.to_string(), "(price, 10, <)");
        let af = AttrFilter::new("symbol", Predicate::Any);
        assert_eq!(af.to_string(), "(symbol, \"ALL\", =)");
        assert!(af.is_wildcard());
        let af = AttrFilter::new("volume", Predicate::Exists);
        assert_eq!(af.to_string(), "(volume, ∃)");
    }

    #[test]
    fn in_set_matching_and_covering() {
        let p = Predicate::In(vec![s("DEF"), s("GHI")]);
        assert!(p.matches(Some(&s("DEF"))));
        assert!(p.matches(Some(&s("GHI"))));
        assert!(!p.matches(Some(&s("JKL"))));
        assert!(!p.matches(None));
        // Coverings.
        assert!(p.covers(&Predicate::Eq(s("DEF"))));
        assert!(!p.covers(&Predicate::Eq(s("JKL"))));
        assert!(p.covers(&Predicate::In(vec![s("GHI")])));
        assert!(!p.covers(&Predicate::In(vec![s("GHI"), s("X")])));
        assert!(Predicate::Exists.covers(&p));
        // Numeric sets covered by intervals.
        let nums = Predicate::In(vec![i(1), i(3)]);
        assert!(Predicate::Lt(i(5)).covers(&nums));
        assert!(!Predicate::Lt(i(3)).covers(&nums));
        // Empty set is never covered through the interval path (it matches
        // nothing; conservative false is sound).
        assert!(nums.covers(&nums));
        // Prefix/Contains cover uniform string sets.
        let strs = Predicate::In(vec![s("abc"), s("abd")]);
        assert!(Predicate::Prefix("ab".into()).covers(&strs));
        assert!(Predicate::Contains("b".into()).covers(&strs));
        assert!(!Predicate::Prefix("abc".into()).covers(&strs));
    }

    #[test]
    fn contains_matching() {
        let p = Predicate::Contains("ibu".into());
        assert!(p.matches(Some(&s("distribute"))));
        assert!(!p.matches(Some(&s("central"))));
        assert!(!p.matches(Some(&i(5))));
        assert!(!p.matches(None));
        assert!(Predicate::Contains(String::new()).matches(Some(&s(""))));
    }

    #[test]
    fn contains_covering() {
        let weak = Predicate::Contains("trib".into());
        assert!(weak.covers(&Predicate::Contains("distrib".into())));
        assert!(!weak.covers(&Predicate::Contains("tri".into())));
        assert!(weak.covers(&Predicate::Eq(s("distribute"))));
        assert!(!weak.covers(&Predicate::Eq(s("central"))));
        assert!(weak.covers(&Predicate::Prefix("distrib".into())));
        assert!(!weak.covers(&Predicate::Prefix("dist".into())));
        // Prefix never covers Contains (a containing string need not start
        // with anything in particular).
        assert!(!Predicate::Prefix("dis".into()).covers(&Predicate::Contains("dis".into())));
        // But Exists and Any do.
        assert!(Predicate::Exists.covers(&Predicate::Contains("x".into())));
        assert!(Predicate::Any.covers(&Predicate::Contains("x".into())));
        // Intervals cannot bound substrings.
        assert!(!Predicate::Ge(s("a")).covers(&Predicate::Contains("b".into())));
    }

    #[test]
    fn covering_is_reflexive_on_samples() {
        for p in [
            Predicate::Eq(i(1)),
            Predicate::Ne(i(1)),
            Predicate::Lt(f(2.0)),
            Predicate::Le(f(2.0)),
            Predicate::Gt(s("a")),
            Predicate::Ge(s("a")),
            Predicate::Prefix("ab".into()),
            Predicate::Contains("ab".into()),
            Predicate::Exists,
            Predicate::Any,
        ] {
            assert!(p.covers(&p), "{p:?} should cover itself");
        }
    }
}
