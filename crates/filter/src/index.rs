//! Per-node filter tables and matching indexes.
//!
//! The paper's Figure 6 keeps, at every node, a table of
//! `<filter, id-list>` pairs and evaluates each incoming event against every
//! filter — the *naive* strategy. It notes that "efficient indexing and
//! matching techniques can be used" but leaves them out of scope; we provide
//! one such technique, a predicate **counting index** in the style of
//! Gryphon/Siena/Le Subscribe: identical predicates across filters are
//! evaluated once per event, and a filter fires when all of its predicates
//! have been counted.

use std::collections::HashMap;
use std::fmt;

use layercake_event::{ClassId, EventData, TypeRegistry};
use serde::{Deserialize, Serialize};

use crate::filter::Filter;
use crate::predicate::Predicate;

/// Destination of a forwarded event: a child node or a local subscriber,
/// as assigned by the overlay layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DestId(pub u64);

impl fmt::Display for DestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dest#{}", self.0)
    }
}

/// Matching strategy used by a [`FilterTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// Scan every filter per event (the paper's Figure 6 algorithm).
    #[default]
    Naive,
    /// Counting index: shared predicates evaluated once per event.
    Counting,
}

#[derive(Debug, Clone)]
struct Entry {
    filter: Filter,
    key: Filter,
    dests: Vec<DestId>,
}

/// A node's `<filter, id-list>` table (Figure 6) with pluggable matching
/// strategy.
///
/// Inserting an existing filter (up to constraint reordering) for a new
/// destination extends the id-list instead of duplicating the filter, as in
/// the paper's insertion algorithm.
///
/// # Example
///
/// ```
/// use layercake_event::{event_data, TypeRegistry, ClassId};
/// use layercake_filter::{Filter, FilterTable, DestId, IndexKind};
///
/// let registry = TypeRegistry::new();
/// let mut table = FilterTable::new(IndexKind::Counting);
/// table.insert(Filter::any().eq("symbol", "Foo"), DestId(1));
/// table.insert(Filter::any().gt("price", 5.0), DestId(2));
///
/// let meta = event_data! { "symbol" => "Foo", "price" => 10.0 };
/// let mut out = Vec::new();
/// table.matches(ClassId(0), &meta, &registry, &mut out);
/// out.sort();
/// assert_eq!(out, vec![DestId(1), DestId(2)]);
/// ```
#[derive(Debug, Clone)]
pub struct FilterTable {
    kind: IndexKind,
    entries: Vec<Entry>,
    /// Normalized filter → entry index, for O(1) insert-time dedup.
    /// Invalidated (and rebuilt) when entries are removed.
    by_key: HashMap<Filter, usize>,
    counting: CountingIndex,
    counting_dirty: bool,
}

impl Default for FilterTable {
    fn default() -> Self {
        Self::new(IndexKind::default())
    }
}

impl FilterTable {
    /// Creates an empty table with the given matching strategy.
    #[must_use]
    pub fn new(kind: IndexKind) -> Self {
        Self {
            kind,
            entries: Vec::new(),
            by_key: HashMap::new(),
            counting: CountingIndex::new(),
            counting_dirty: false,
        }
    }

    /// The matching strategy in use.
    #[must_use]
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Inserts a `<filter, id>` pair. Returns `true` when this created a new
    /// filter entry (as opposed to extending an existing id-list).
    pub fn insert(&mut self, filter: Filter, dest: DestId) -> bool {
        let key = filter.normalized();
        if let Some(&idx) = self.by_key.get(&key) {
            let entry = &mut self.entries[idx];
            if !entry.dests.contains(&dest) {
                entry.dests.push(dest);
            }
            return false;
        }
        if self.kind == IndexKind::Counting && !self.counting_dirty {
            self.counting.add(
                u32::try_from(self.entries.len()).expect("filter table fits in u32"),
                &filter,
            );
        }
        self.by_key.insert(key.clone(), self.entries.len());
        self.entries.push(Entry {
            filter,
            key,
            dests: vec![dest],
        });
        true
    }

    /// Removes a destination from a filter's id-list; the entry disappears
    /// when its id-list empties. Returns `true` if the pair existed.
    pub fn remove(&mut self, filter: &Filter, dest: DestId) -> bool {
        let key = filter.normalized();
        let Some(&idx) = self.by_key.get(&key) else {
            return false;
        };
        let entry = &mut self.entries[idx];
        let Some(pos) = entry.dests.iter().position(|d| *d == dest) else {
            return false;
        };
        entry.dests.remove(pos);
        if entry.dests.is_empty() {
            self.entries.remove(idx);
            self.counting_dirty = true;
            self.rebuild_key_index();
        }
        true
    }

    /// Removes a destination from the first entry whose filter *covers*
    /// `filter` — the removal counterpart of covering-collapse insertion,
    /// where a subscription may have been folded into a weaker stored
    /// filter. Returns `true` if a pair was removed.
    pub fn remove_covering(
        &mut self,
        filter: &Filter,
        dest: DestId,
        registry: &TypeRegistry,
    ) -> bool {
        let Some(idx) = self
            .entries
            .iter()
            .position(|e| e.dests.contains(&dest) && e.filter.covers(filter, registry))
        else {
            return false;
        };
        let entry = &mut self.entries[idx];
        let pos = entry
            .dests
            .iter()
            .position(|d| *d == dest)
            .expect("checked above");
        entry.dests.remove(pos);
        if entry.dests.is_empty() {
            self.entries.remove(idx);
            self.counting_dirty = true;
            self.rebuild_key_index();
        }
        true
    }

    /// Removes a destination from every entry (e.g. on lease expiry of a
    /// child), dropping entries whose id-lists empty. Returns the number of
    /// pairs removed.
    pub fn remove_dest(&mut self, dest: DestId) -> usize {
        let mut removed = 0;
        self.entries.retain_mut(|e| {
            if let Some(pos) = e.dests.iter().position(|d| *d == dest) {
                e.dests.remove(pos);
                removed += 1;
            }
            !e.dests.is_empty()
        });
        if removed > 0 {
            self.counting_dirty = true;
            self.rebuild_key_index();
        }
        removed
    }

    /// Collects the destinations of all filters matching the event, without
    /// duplicates. (`&mut self` because the counting strategy keeps per-call
    /// scratch state.)
    pub fn matches(
        &mut self,
        class: ClassId,
        meta: &EventData,
        registry: &TypeRegistry,
        out: &mut Vec<DestId>,
    ) {
        out.clear();
        match self.kind {
            IndexKind::Naive => {
                for e in &self.entries {
                    if e.filter.matches(class, meta, registry) {
                        for d in &e.dests {
                            if !out.contains(d) {
                                out.push(*d);
                            }
                        }
                    }
                }
            }
            IndexKind::Counting => {
                if self.counting_dirty {
                    self.rebuild_counting();
                }
                let mut slots = Vec::new();
                self.counting.matches(class, meta, registry, &mut slots);
                for slot in slots {
                    for d in &self.entries[slot as usize].dests {
                        if !out.contains(d) {
                            out.push(*d);
                        }
                    }
                }
            }
        }
    }

    /// Whether any stored filter matches the event.
    pub fn matches_any(
        &mut self,
        class: ClassId,
        meta: &EventData,
        registry: &TypeRegistry,
    ) -> bool {
        let mut out = Vec::new();
        self.matches(class, meta, registry, &mut out);
        !out.is_empty()
    }

    /// Finds the *strongest* stored filter covering `f`, along with its
    /// id-list — the search step of the subscription placement algorithm
    /// (Figure 5(b)). Among covering candidates, a candidate covered by all
    /// previously seen candidates wins.
    #[must_use]
    pub fn find_cover(&self, f: &Filter, registry: &TypeRegistry) -> Option<(&Filter, &[DestId])> {
        let mut best: Option<&Entry> = None;
        for e in &self.entries {
            if e.filter.covers(f, registry) {
                let better = match best {
                    None => true,
                    Some(b) => b.filter.covers(&e.filter, registry),
                };
                if better {
                    best = Some(e);
                }
            }
        }
        best.map(|e| (&e.filter, e.dests.as_slice()))
    }

    /// Iterates over `(filter, id-list)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Filter, &[DestId])> {
        self.entries.iter().map(|e| (&e.filter, e.dests.as_slice()))
    }

    /// The filters associated with a given destination.
    pub fn filters_for(&self, dest: DestId) -> impl Iterator<Item = &Filter> {
        self.entries
            .iter()
            .filter(move |e| e.dests.contains(&dest))
            .map(|e| &e.filter)
    }

    /// Number of distinct filters — the "# of filter" term of the paper's
    /// Load Complexity metric.
    #[must_use]
    pub fn filter_count(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table holds no filters.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of `<filter, id>` pairs.
    #[must_use]
    pub fn pair_count(&self) -> usize {
        self.entries.iter().map(|e| e.dests.len()).sum()
    }

    fn rebuild_key_index(&mut self) {
        self.by_key = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.key.clone(), i))
            .collect();
    }

    fn rebuild_counting(&mut self) {
        self.counting = CountingIndex::new();
        for (i, e) in self.entries.iter().enumerate() {
            self.counting.add(
                u32::try_from(i).expect("filter table fits in u32"),
                &e.filter,
            );
        }
        self.counting_dirty = false;
    }
}

/// A predicate counting index over a set of filters.
///
/// Filters are registered under dense slot numbers; matching returns the
/// slots whose predicates are all satisfied by the event (and whose class
/// constraint admits the event's class). Identical predicates shared by
/// many filters are evaluated once per event.
#[derive(Debug, Clone, Default)]
pub struct CountingIndex {
    /// Per-slot requirements.
    slots: Vec<SlotInfo>,
    /// Slots with no counted predicates (class-only or wildcard-only).
    zero_required: Vec<u32>,
    /// Distinct predicates grouped by attribute name.
    by_attr: HashMap<String, Vec<PredGroup>>,
    /// Per-slot match counters, versioned to avoid clearing per event.
    scratch: Vec<(u64, u32)>,
    epoch: u64,
}

#[derive(Debug, Clone)]
struct SlotInfo {
    required: u32,
    class: Option<ClassId>,
}

#[derive(Debug, Clone)]
struct PredGroup {
    pred: Predicate,
    slots: Vec<u32>,
}

impl CountingIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a filter under the next slot number; slots must be added
    /// densely in increasing order.
    pub fn add(&mut self, slot: u32, filter: &Filter) {
        assert_eq!(
            slot as usize,
            self.slots.len(),
            "counting index slots must be added densely"
        );
        let mut required = 0u32;
        for c in filter.constraints() {
            if matches!(c.predicate(), Predicate::Any) {
                continue; // wildcards are always satisfied
            }
            required += 1;
            let groups = self.by_attr.entry(c.name().to_owned()).or_default();
            match groups.iter_mut().find(|g| g.pred == *c.predicate()) {
                Some(g) => g.slots.push(slot),
                None => groups.push(PredGroup {
                    pred: c.predicate().clone(),
                    slots: vec![slot],
                }),
            }
        }
        if required == 0 {
            self.zero_required.push(slot);
        }
        self.slots.push(SlotInfo {
            required,
            class: filter.class(),
        });
        self.scratch.push((0, 0));
    }

    /// Collects the slots of all filters matching the event.
    pub fn matches(
        &mut self,
        class: ClassId,
        meta: &EventData,
        registry: &TypeRegistry,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        self.epoch += 1;
        let epoch = self.epoch;
        for (name, value) in meta.iter() {
            let Some(groups) = self.by_attr.get(name) else {
                continue;
            };
            for group in groups {
                if !group.pred.matches(Some(value)) {
                    continue;
                }
                for &slot in &group.slots {
                    let cell = &mut self.scratch[slot as usize];
                    if cell.0 != epoch {
                        *cell = (epoch, 0);
                    }
                    cell.1 += 1;
                    if cell.1 == self.slots[slot as usize].required {
                        out.push(slot);
                    }
                }
            }
        }
        for &slot in &self.zero_required {
            out.push(slot);
        }
        out.retain(|&slot| match self.slots[slot as usize].class {
            None => true,
            Some(want) => registry.is_subtype(class, want),
        });
        out.sort_unstable();
    }

    /// Number of registered filters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no filters are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use layercake_event::event_data;

    fn registry() -> (TypeRegistry, ClassId, ClassId) {
        let mut r = TypeRegistry::new();
        let stock = r.register("Stock", None, vec![]).unwrap();
        let auction = r.register("Auction", None, vec![]).unwrap();
        (r, stock, auction)
    }

    fn check_both(build: impl Fn(&mut FilterTable)) -> (Vec<DestId>, Vec<DestId>) {
        let (r, stock, _) = registry();
        let meta = event_data! { "symbol" => "Foo", "price" => 10.0 };
        let mut results = Vec::new();
        for kind in [IndexKind::Naive, IndexKind::Counting] {
            let mut t = FilterTable::new(kind);
            build(&mut t);
            let mut out = Vec::new();
            t.matches(stock, &meta, &r, &mut out);
            out.sort();
            results.push(out);
        }
        let counting = results.pop().unwrap();
        let naive = results.pop().unwrap();
        (naive, counting)
    }

    #[test]
    fn naive_and_counting_agree() {
        let (naive, counting) = check_both(|t| {
            t.insert(Filter::any().eq("symbol", "Foo"), DestId(1));
            t.insert(Filter::any().gt("price", 5.0), DestId(2));
            t.insert(Filter::any().eq("symbol", "Bar"), DestId(3));
            t.insert(
                Filter::any().eq("symbol", "Foo").lt("price", 9.0),
                DestId(4),
            );
            t.insert(
                Filter::any().eq("symbol", "Foo").le("price", 10.0),
                DestId(5),
            );
            t.insert(Filter::any(), DestId(6));
        });
        assert_eq!(naive, counting);
        assert_eq!(naive, vec![DestId(1), DestId(2), DestId(5), DestId(6)]);
    }

    #[test]
    fn duplicate_filters_extend_id_list() {
        let mut t = FilterTable::new(IndexKind::Naive);
        let f = Filter::any().eq("a", 1).eq("b", 2);
        // Same filter modulo constraint order.
        let f_reordered = Filter::any().eq("b", 2).eq("a", 1);
        assert!(t.insert(f.clone(), DestId(1)));
        assert!(!t.insert(f_reordered, DestId(2)));
        assert!(!t.insert(f.clone(), DestId(1)));
        assert_eq!(t.filter_count(), 1);
        assert_eq!(t.pair_count(), 2);
    }

    #[test]
    fn class_constraints_respect_subtyping() {
        let mut r = TypeRegistry::new();
        let base = r.register("Quote", None, vec![]).unwrap();
        let stock = r.register("Stock", Some("Quote"), vec![]).unwrap();
        for kind in [IndexKind::Naive, IndexKind::Counting] {
            let mut t = FilterTable::new(kind);
            t.insert(Filter::for_class(base), DestId(1));
            t.insert(Filter::for_class(stock), DestId(2));
            let meta = EventData::new();
            let mut out = Vec::new();
            t.matches(stock, &meta, &r, &mut out);
            out.sort();
            assert_eq!(out, vec![DestId(1), DestId(2)], "kind {kind:?}");
            t.matches(base, &meta, &r, &mut out);
            assert_eq!(out, vec![DestId(1)]);
        }
    }

    #[test]
    fn removal_and_rebuild() {
        let (r, stock, _) = registry();
        let meta = event_data! { "symbol" => "Foo" };
        let mut t = FilterTable::new(IndexKind::Counting);
        let f = Filter::any().eq("symbol", "Foo");
        t.insert(f.clone(), DestId(1));
        t.insert(f.clone(), DestId(2));
        assert!(t.remove(&f, DestId(1)));
        assert!(!t.remove(&f, DestId(1)));
        let mut out = Vec::new();
        t.matches(stock, &meta, &r, &mut out);
        assert_eq!(out, vec![DestId(2)]);
        assert!(t.remove(&f, DestId(2)));
        assert!(t.is_empty());
        t.matches(stock, &meta, &r, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn remove_dest_sweeps_all_entries() {
        let mut t = FilterTable::new(IndexKind::Counting);
        t.insert(Filter::any().eq("a", 1), DestId(9));
        t.insert(Filter::any().eq("b", 2), DestId(9));
        t.insert(Filter::any().eq("b", 2), DestId(3));
        assert_eq!(t.remove_dest(DestId(9)), 2);
        assert_eq!(t.filter_count(), 1);
        assert_eq!(t.remove_dest(DestId(9)), 0);
    }

    #[test]
    fn find_cover_picks_strongest() {
        let (r, stock, _) = registry();
        let mut t = FilterTable::new(IndexKind::Naive);
        let weak = Filter::for_class(stock);
        let mid = Filter::for_class(stock).eq("symbol", "DEF");
        let strong = Filter::for_class(stock)
            .eq("symbol", "DEF")
            .lt("price", 11.0);
        t.insert(weak.clone(), DestId(1));
        t.insert(mid.clone(), DestId(2));
        t.insert(strong.clone(), DestId(3));
        let sub = Filter::for_class(stock)
            .eq("symbol", "DEF")
            .lt("price", 10.0);
        let (found, dests) = t.find_cover(&sub, &r).unwrap();
        assert_eq!(found, &strong);
        assert_eq!(dests, &[DestId(3)]);
        // No covering filter at all:
        let (_, auction) = (stock, r.id_of("Auction"));
        let _ = auction;
        let other = Filter::any();
        // `weak` does not cover class-unconstrained subscriptions.
        assert!(t.find_cover(&other, &r).is_none());
    }

    #[test]
    fn wildcard_only_filters_match_everything_of_class() {
        let (r, stock, auction) = registry();
        for kind in [IndexKind::Naive, IndexKind::Counting] {
            let mut t = FilterTable::new(kind);
            t.insert(Filter::for_class(stock).wildcard("symbol"), DestId(1));
            let meta = event_data! { "symbol" => "Anything" };
            let mut out = Vec::new();
            t.matches(stock, &meta, &r, &mut out);
            assert_eq!(out, vec![DestId(1)]);
            t.matches(auction, &meta, &r, &mut out);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn counting_handles_repeated_attr_constraints() {
        let (r, stock, _) = registry();
        for kind in [IndexKind::Naive, IndexKind::Counting] {
            let mut t = FilterTable::new(kind);
            t.insert(Filter::any().ge("price", 5.0).le("price", 10.0), DestId(1));
            let mut out = Vec::new();
            t.matches(stock, &event_data! { "price" => 7.0 }, &r, &mut out);
            assert_eq!(out, vec![DestId(1)], "kind {kind:?}");
            t.matches(stock, &event_data! { "price" => 12.0 }, &r, &mut out);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn shared_predicates_fire_all_slots() {
        let (r, stock, _) = registry();
        let mut t = FilterTable::new(IndexKind::Counting);
        for i in 0u32..10 {
            t.insert(
                Filter::any().eq("symbol", "Foo").gt("price", f64::from(i)),
                DestId(u64::from(i)),
            );
        }
        let mut out = Vec::new();
        t.matches(
            stock,
            &event_data! { "symbol" => "Foo", "price" => 5.5 },
            &r,
            &mut out,
        );
        assert_eq!(out.len(), 6); // thresholds 0..=5
    }

    #[test]
    fn filters_for_lists_by_dest() {
        let mut t = FilterTable::new(IndexKind::Naive);
        t.insert(Filter::any().eq("a", 1), DestId(1));
        t.insert(Filter::any().eq("b", 2), DestId(1));
        t.insert(Filter::any().eq("c", 3), DestId(2));
        assert_eq!(t.filters_for(DestId(1)).count(), 2);
        assert_eq!(t.iter().count(), 3);
    }

    #[test]
    fn matches_any_shortcut() {
        let (r, stock, _) = registry();
        let mut t = FilterTable::new(IndexKind::Naive);
        t.insert(Filter::any().eq("symbol", "Foo"), DestId(1));
        assert!(t.matches_any(stock, &event_data! { "symbol" => "Foo" }, &r));
        assert!(!t.matches_any(stock, &event_data! { "symbol" => "Bar" }, &r));
    }
}
