//! Per-node filter tables and matching indexes.
//!
//! The paper's Figure 6 keeps, at every node, a table of
//! `<filter, id-list>` pairs and evaluates each incoming event against every
//! filter — the *naive* strategy. It notes that "efficient indexing and
//! matching techniques can be used" but leaves them out of scope; we provide
//! two such techniques:
//!
//! * a predicate **counting index** in the style of Gryphon/Siena/Le
//!   Subscribe: identical predicates across filters are evaluated once per
//!   event, and a filter fires when all of its predicates have been counted;
//! * a **compiled** variant of the counting index that additionally resolves
//!   equality predicates — by far the most common shape in content-based
//!   workloads — through a per-attribute table sorted by value, so the cost
//!   of an attribute with `k` distinct equality constants is one binary
//!   search (`O(log k)`) instead of `k` predicate evaluations.
//!
//! Both indexes key predicate groups by interned
//! [`AttrId`](layercake_event::AttrId)s in a dense vector, so dispatching an
//! event attribute to its groups is an array index, with no string hashing
//! on the hot path.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;

use layercake_event::{AttrValue, ClassId, EventData, TypeRegistry};
use serde::{Deserialize, Serialize};

use crate::filter::Filter;
use crate::predicate::Predicate;

/// Destination of a forwarded event: a child node or a local subscriber,
/// as assigned by the overlay layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DestId(pub u64);

impl fmt::Display for DestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dest#{}", self.0)
    }
}

/// Matching strategy used by a [`FilterTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// Scan every filter per event (the paper's Figure 6 algorithm).
    #[default]
    Naive,
    /// Counting index: shared predicates evaluated once per event.
    Counting,
    /// Counting index with equality predicates compiled into sorted
    /// per-attribute tables resolved by binary search.
    Compiled,
}

#[derive(Debug, Clone)]
struct Entry {
    filter: Filter,
    key: Filter,
    dests: Vec<DestId>,
}

/// A node's `<filter, id-list>` table (Figure 6) with pluggable matching
/// strategy.
///
/// Inserting an existing filter (up to constraint reordering) for a new
/// destination extends the id-list instead of duplicating the filter, as in
/// the paper's insertion algorithm.
///
/// # Example
///
/// ```
/// use layercake_event::{event_data, TypeRegistry, ClassId};
/// use layercake_filter::{Filter, FilterTable, DestId, IndexKind};
///
/// let registry = TypeRegistry::new();
/// let mut table = FilterTable::new(IndexKind::Counting);
/// table.insert(Filter::any().eq("symbol", "Foo"), DestId(1));
/// table.insert(Filter::any().gt("price", 5.0), DestId(2));
///
/// let meta = event_data! { "symbol" => "Foo", "price" => 10.0 };
/// let mut out = Vec::new();
/// table.matches(ClassId(0), &meta, &registry, &mut out);
/// out.sort();
/// assert_eq!(out, vec![DestId(1), DestId(2)]);
/// ```
#[derive(Debug, Clone)]
pub struct FilterTable {
    kind: IndexKind,
    entries: Vec<Entry>,
    /// Normalized filter → entry index, for O(1) insert-time dedup.
    /// Invalidated (and rebuilt) when entries are removed.
    by_key: HashMap<Filter, usize>,
    counting: CountingIndex,
    counting_dirty: bool,
    /// Reused per-event buffer of matched slots, so the counting path does
    /// not allocate per event.
    slot_scratch: Vec<u32>,
}

impl Default for FilterTable {
    fn default() -> Self {
        Self::new(IndexKind::default())
    }
}

impl FilterTable {
    /// Creates an empty table with the given matching strategy.
    #[must_use]
    pub fn new(kind: IndexKind) -> Self {
        Self {
            kind,
            entries: Vec::new(),
            by_key: HashMap::new(),
            counting: CountingIndex::with_compilation(kind == IndexKind::Compiled),
            counting_dirty: false,
            slot_scratch: Vec::new(),
        }
    }

    /// The matching strategy in use.
    #[must_use]
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Inserts a `<filter, id>` pair. Returns `true` when this created a new
    /// filter entry (as opposed to extending an existing id-list).
    pub fn insert(&mut self, filter: Filter, dest: DestId) -> bool {
        let key = filter.normalized();
        if let Some(&idx) = self.by_key.get(&key) {
            let entry = &mut self.entries[idx];
            if !entry.dests.contains(&dest) {
                entry.dests.push(dest);
            }
            return false;
        }
        if self.kind != IndexKind::Naive && !self.counting_dirty {
            self.counting.add(
                u32::try_from(self.entries.len()).expect("filter table fits in u32"),
                &filter,
            );
        }
        self.by_key.insert(key.clone(), self.entries.len());
        self.entries.push(Entry {
            filter,
            key,
            dests: vec![dest],
        });
        true
    }

    /// Removes a destination from a filter's id-list; the entry disappears
    /// when its id-list empties. Returns `true` if the pair existed.
    pub fn remove(&mut self, filter: &Filter, dest: DestId) -> bool {
        let key = filter.normalized();
        let Some(&idx) = self.by_key.get(&key) else {
            return false;
        };
        let entry = &mut self.entries[idx];
        let Some(pos) = entry.dests.iter().position(|d| *d == dest) else {
            return false;
        };
        entry.dests.remove(pos);
        if entry.dests.is_empty() {
            self.entries.remove(idx);
            self.counting_dirty = true;
            self.rebuild_key_index();
        }
        true
    }

    /// Removes a destination from the first entry whose filter *covers*
    /// `filter` — the removal counterpart of covering-collapse insertion,
    /// where a subscription may have been folded into a weaker stored
    /// filter. Returns `true` if a pair was removed.
    pub fn remove_covering(
        &mut self,
        filter: &Filter,
        dest: DestId,
        registry: &TypeRegistry,
    ) -> bool {
        let Some(idx) = self
            .entries
            .iter()
            .position(|e| e.dests.contains(&dest) && e.filter.covers(filter, registry))
        else {
            return false;
        };
        let entry = &mut self.entries[idx];
        let pos = entry
            .dests
            .iter()
            .position(|d| *d == dest)
            .expect("checked above");
        entry.dests.remove(pos);
        if entry.dests.is_empty() {
            self.entries.remove(idx);
            self.counting_dirty = true;
            self.rebuild_key_index();
        }
        true
    }

    /// Removes a destination from every entry (e.g. on lease expiry of a
    /// child), dropping entries whose id-lists empty. Returns the number of
    /// pairs removed.
    pub fn remove_dest(&mut self, dest: DestId) -> usize {
        let mut removed = 0;
        self.entries.retain_mut(|e| {
            if let Some(pos) = e.dests.iter().position(|d| *d == dest) {
                e.dests.remove(pos);
                removed += 1;
            }
            !e.dests.is_empty()
        });
        if removed > 0 {
            self.counting_dirty = true;
            self.rebuild_key_index();
        }
        removed
    }

    /// Collects the destinations of all filters matching the event, without
    /// duplicates, in ascending [`DestId`] order. (`&mut self` because the
    /// counting strategy keeps per-call scratch state.)
    pub fn matches(
        &mut self,
        class: ClassId,
        meta: &EventData,
        registry: &TypeRegistry,
        out: &mut Vec<DestId>,
    ) {
        out.clear();
        match self.kind {
            IndexKind::Naive => {
                for e in &self.entries {
                    if e.filter.matches(class, meta, registry) {
                        out.extend_from_slice(&e.dests);
                    }
                }
            }
            IndexKind::Counting | IndexKind::Compiled => {
                if self.counting_dirty {
                    self.rebuild_counting();
                }
                let mut slots = std::mem::take(&mut self.slot_scratch);
                self.counting.matches(class, meta, registry, &mut slots);
                for &slot in &slots {
                    out.extend_from_slice(&self.entries[slot as usize].dests);
                }
                self.slot_scratch = slots;
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Whether any stored filter matches the event, stopping at the first
    /// hit instead of computing the full destination set. This is the
    /// neighbor-forwarding question the mesh hot path asks per link.
    pub fn matches_any(
        &mut self,
        class: ClassId,
        meta: &EventData,
        registry: &TypeRegistry,
    ) -> bool {
        match self.kind {
            // Entries never have empty id-lists, so a matching filter
            // implies a destination.
            IndexKind::Naive => self
                .entries
                .iter()
                .any(|e| e.filter.matches(class, meta, registry)),
            IndexKind::Counting | IndexKind::Compiled => {
                if self.counting_dirty {
                    self.rebuild_counting();
                }
                self.counting.matches_any(class, meta, registry)
            }
        }
    }

    /// Finds the *strongest* stored filter covering `f`, along with its
    /// id-list — the search step of the subscription placement algorithm
    /// (Figure 5(b)). Among covering candidates, a candidate covered by all
    /// previously seen candidates wins.
    #[must_use]
    pub fn find_cover(&self, f: &Filter, registry: &TypeRegistry) -> Option<(&Filter, &[DestId])> {
        let mut best: Option<&Entry> = None;
        for e in &self.entries {
            if e.filter.covers(f, registry) {
                let better = match best {
                    None => true,
                    Some(b) => b.filter.covers(&e.filter, registry),
                };
                if better {
                    best = Some(e);
                }
            }
        }
        best.map(|e| (&e.filter, e.dests.as_slice()))
    }

    /// Iterates over `(filter, id-list)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Filter, &[DestId])> {
        self.entries.iter().map(|e| (&e.filter, e.dests.as_slice()))
    }

    /// The filters associated with a given destination.
    pub fn filters_for(&self, dest: DestId) -> impl Iterator<Item = &Filter> {
        self.entries
            .iter()
            .filter(move |e| e.dests.contains(&dest))
            .map(|e| &e.filter)
    }

    /// Number of distinct filters — the "# of filter" term of the paper's
    /// Load Complexity metric.
    #[must_use]
    pub fn filter_count(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table holds no filters.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of `<filter, id>` pairs.
    #[must_use]
    pub fn pair_count(&self) -> usize {
        self.entries.iter().map(|e| e.dests.len()).sum()
    }

    fn rebuild_key_index(&mut self) {
        self.by_key = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.key.clone(), i))
            .collect();
    }

    fn rebuild_counting(&mut self) {
        self.counting = CountingIndex::with_compilation(self.kind == IndexKind::Compiled);
        for (i, e) in self.entries.iter().enumerate() {
            self.counting.add(
                u32::try_from(i).expect("filter table fits in u32"),
                &e.filter,
            );
        }
        self.counting_dirty = false;
    }
}

/// The equality class of an [`AttrValue`] under `value_eq` semantics:
/// `Int` and `Float` collapse into one numeric key (so `Eq(Int(5))` and an
/// event value of `Float(5.0)` meet in the same class), while `Bool` and
/// `Str` stay apart (they are incomparable to numbers under `compare`).
///
/// Ordered so compiled equality groups can be kept sorted and resolved by
/// binary search. The ordering itself is arbitrary but total and consistent
/// with the equality classes: `-0.0` is normalized to `0.0` before keying
/// because `total_cmp` would otherwise separate two `value_eq` values.
#[derive(Debug, Clone)]
enum EqKey {
    Bool(bool),
    Num(f64),
    Str(String),
}

/// Borrowed view of an event value's equality class, so the per-event
/// binary search never allocates a `String`.
#[derive(Debug, Clone, Copy)]
enum EqKeyRef<'a> {
    Bool(bool),
    Num(f64),
    Str(&'a str),
}

fn eq_num_key(f: f64) -> Option<f64> {
    if f.is_nan() {
        // NaN equals nothing (not even itself), so it has no equality class.
        None
    } else if f == 0.0 {
        Some(0.0)
    } else {
        Some(f)
    }
}

impl EqKey {
    fn of(value: &AttrValue) -> Option<EqKey> {
        Some(match value {
            AttrValue::Bool(b) => EqKey::Bool(*b),
            AttrValue::Str(s) => EqKey::Str(s.clone()),
            AttrValue::Int(i) => EqKey::Num(*i as f64),
            AttrValue::Float(f) => EqKey::Num(eq_num_key(*f)?),
        })
    }

    fn rank(&self) -> u8 {
        match self {
            EqKey::Bool(_) => 0,
            EqKey::Num(_) => 1,
            EqKey::Str(_) => 2,
        }
    }

    fn cmp_ref(&self, other: &EqKeyRef<'_>) -> Ordering {
        match (self, other) {
            (EqKey::Bool(a), EqKeyRef::Bool(b)) => a.cmp(b),
            (EqKey::Num(a), EqKeyRef::Num(b)) => a.total_cmp(b),
            (EqKey::Str(a), EqKeyRef::Str(b)) => a.as_str().cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }

    fn cmp_key(&self, other: &EqKey) -> Ordering {
        match (self, other) {
            (EqKey::Bool(a), EqKey::Bool(b)) => a.cmp(b),
            (EqKey::Num(a), EqKey::Num(b)) => a.total_cmp(b),
            (EqKey::Str(a), EqKey::Str(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl<'a> EqKeyRef<'a> {
    fn of(value: &'a AttrValue) -> Option<EqKeyRef<'a>> {
        Some(match value {
            AttrValue::Bool(b) => EqKeyRef::Bool(*b),
            AttrValue::Str(s) => EqKeyRef::Str(s),
            AttrValue::Int(i) => EqKeyRef::Num(*i as f64),
            AttrValue::Float(f) => EqKeyRef::Num(eq_num_key(*f)?),
        })
    }

    fn rank(&self) -> u8 {
        match self {
            EqKeyRef::Bool(_) => 0,
            EqKeyRef::Num(_) => 1,
            EqKeyRef::Str(_) => 2,
        }
    }
}

/// A predicate counting index over a set of filters.
///
/// Filters are registered under dense slot numbers; matching returns the
/// slots whose predicates are all satisfied by the event (and whose class
/// constraint admits the event's class). Identical predicates shared by
/// many filters are evaluated once per event.
///
/// When built with compilation enabled
/// ([`with_compilation`](CountingIndex::with_compilation)), equality
/// predicates are additionally keyed by value in a sorted per-attribute
/// table, so all equality constraints on one attribute cost a single binary
/// search per event instead of one evaluation each.
#[derive(Debug, Clone, Default)]
pub struct CountingIndex {
    /// Whether equality predicates compile to sorted lookup tables.
    compiled: bool,
    /// Per-slot requirements.
    slots: Vec<SlotInfo>,
    /// Slots with no counted predicates (class-only or wildcard-only).
    zero_required: Vec<u32>,
    /// Distinct predicates grouped by interned attribute id; the vector is
    /// indexed directly by `AttrId.0`.
    by_attr: Vec<AttrGroups>,
    /// Per-slot match counters, versioned to avoid clearing per event.
    scratch: Vec<(u64, u32)>,
    epoch: u64,
}

#[derive(Debug, Clone)]
struct SlotInfo {
    required: u32,
    class: Option<ClassId>,
}

/// The predicate groups of one attribute.
#[derive(Debug, Clone, Default)]
struct AttrGroups {
    /// Equality groups sorted by key, resolved by binary search (compiled
    /// indexes only; empty otherwise).
    eq: Vec<EqGroup>,
    /// Every other predicate shape, evaluated by linear scan.
    scan: Vec<PredGroup>,
}

#[derive(Debug, Clone)]
struct EqGroup {
    key: EqKey,
    slots: Vec<u32>,
}

#[derive(Debug, Clone)]
struct PredGroup {
    pred: Predicate,
    slots: Vec<u32>,
}

/// Marks `slot` as having one more satisfied predicate this epoch; pushes
/// it to `out` when the count completes. Free function so callers can hold
/// disjoint field borrows.
#[inline]
fn bump_slot(
    scratch: &mut [(u64, u32)],
    slots: &[SlotInfo],
    epoch: u64,
    slot: u32,
    out: &mut Vec<u32>,
) {
    let cell = &mut scratch[slot as usize];
    if cell.0 != epoch {
        *cell = (epoch, 0);
    }
    cell.1 += 1;
    if cell.1 == slots[slot as usize].required {
        out.push(slot);
    }
}

fn class_admits(info: &SlotInfo, class: ClassId, registry: &TypeRegistry) -> bool {
    match info.class {
        None => true,
        Some(want) => registry.is_subtype(class, want),
    }
}

impl CountingIndex {
    /// Creates an empty index without equality compilation (the plain
    /// counting strategy).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty index, compiling equality predicates into sorted
    /// lookup tables when `compiled` is set.
    #[must_use]
    pub fn with_compilation(compiled: bool) -> Self {
        Self {
            compiled,
            ..Self::default()
        }
    }

    /// Registers a filter under the next slot number; slots must be added
    /// densely in increasing order.
    pub fn add(&mut self, slot: u32, filter: &Filter) {
        assert_eq!(
            slot as usize,
            self.slots.len(),
            "counting index slots must be added densely"
        );
        let mut required = 0u32;
        for c in filter.constraints() {
            if matches!(c.predicate(), Predicate::Any) {
                continue; // wildcards are always satisfied
            }
            required += 1;
            let idx = c.id().0 as usize;
            if idx >= self.by_attr.len() {
                self.by_attr.resize_with(idx + 1, AttrGroups::default);
            }
            let groups = &mut self.by_attr[idx];
            if self.compiled {
                if let Predicate::Eq(v) = c.predicate() {
                    if let Some(key) = EqKey::of(v) {
                        match groups.eq.binary_search_by(|g| g.key.cmp_key(&key)) {
                            Ok(pos) => groups.eq[pos].slots.push(slot),
                            Err(pos) => groups.eq.insert(
                                pos,
                                EqGroup {
                                    key,
                                    slots: vec![slot],
                                },
                            ),
                        }
                        continue;
                    }
                    // An Eq on NaN has no equality class (it matches
                    // nothing); the scan path preserves that semantics.
                }
            }
            match groups.scan.iter_mut().find(|g| g.pred == *c.predicate()) {
                Some(g) => g.slots.push(slot),
                None => groups.scan.push(PredGroup {
                    pred: c.predicate().clone(),
                    slots: vec![slot],
                }),
            }
        }
        if required == 0 {
            self.zero_required.push(slot);
        }
        self.slots.push(SlotInfo {
            required,
            class: filter.class(),
        });
        self.scratch.push((0, 0));
    }

    /// Collects the slots of all filters matching the event, in ascending
    /// slot order.
    pub fn matches(
        &mut self,
        class: ClassId,
        meta: &EventData,
        registry: &TypeRegistry,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        self.epoch += 1;
        let epoch = self.epoch;
        for (id, value) in meta.iter_ids() {
            let Some(groups) = self.by_attr.get(id.0 as usize) else {
                continue;
            };
            if !groups.eq.is_empty() {
                if let Some(key) = EqKeyRef::of(value) {
                    if let Ok(pos) = groups.eq.binary_search_by(|g| g.key.cmp_ref(&key)) {
                        for &slot in &groups.eq[pos].slots {
                            bump_slot(&mut self.scratch, &self.slots, epoch, slot, out);
                        }
                    }
                }
            }
            for group in &groups.scan {
                if !group.pred.matches(Some(value)) {
                    continue;
                }
                for &slot in &group.slots {
                    bump_slot(&mut self.scratch, &self.slots, epoch, slot, out);
                }
            }
        }
        for &slot in &self.zero_required {
            out.push(slot);
        }
        out.retain(|&slot| class_admits(&self.slots[slot as usize], class, registry));
        out.sort_unstable();
    }

    /// Whether any registered filter matches the event, returning at the
    /// first completed slot instead of collecting them all.
    pub fn matches_any(
        &mut self,
        class: ClassId,
        meta: &EventData,
        registry: &TypeRegistry,
    ) -> bool {
        // Zero-required slots (match-all / class-only filters) decide
        // without touching the event at all.
        for &slot in &self.zero_required {
            if class_admits(&self.slots[slot as usize], class, registry) {
                return true;
            }
        }
        self.epoch += 1;
        let epoch = self.epoch;
        let mut completed = Vec::new();
        for (id, value) in meta.iter_ids() {
            let Some(groups) = self.by_attr.get(id.0 as usize) else {
                continue;
            };
            completed.clear();
            if !groups.eq.is_empty() {
                if let Some(key) = EqKeyRef::of(value) {
                    if let Ok(pos) = groups.eq.binary_search_by(|g| g.key.cmp_ref(&key)) {
                        for &slot in &groups.eq[pos].slots {
                            bump_slot(&mut self.scratch, &self.slots, epoch, slot, &mut completed);
                        }
                    }
                }
            }
            for group in &groups.scan {
                if !group.pred.matches(Some(value)) {
                    continue;
                }
                for &slot in &group.slots {
                    bump_slot(&mut self.scratch, &self.slots, epoch, slot, &mut completed);
                }
            }
            if completed
                .iter()
                .any(|&slot| class_admits(&self.slots[slot as usize], class, registry))
            {
                return true;
            }
        }
        false
    }

    /// Number of registered filters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no filters are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use layercake_event::event_data;

    fn registry() -> (TypeRegistry, ClassId, ClassId) {
        let mut r = TypeRegistry::new();
        let stock = r.register("Stock", None, vec![]).unwrap();
        let auction = r.register("Auction", None, vec![]).unwrap();
        (r, stock, auction)
    }

    fn check_all(build: impl Fn(&mut FilterTable)) -> Vec<Vec<DestId>> {
        let (r, stock, _) = registry();
        let meta = event_data! { "symbol" => "Foo", "price" => 10.0 };
        let mut results = Vec::new();
        for kind in [IndexKind::Naive, IndexKind::Counting, IndexKind::Compiled] {
            let mut t = FilterTable::new(kind);
            build(&mut t);
            let mut out = Vec::new();
            t.matches(stock, &meta, &r, &mut out);
            out.sort();
            results.push(out);
        }
        results
    }

    #[test]
    fn all_strategies_agree() {
        let results = check_all(|t| {
            t.insert(Filter::any().eq("symbol", "Foo"), DestId(1));
            t.insert(Filter::any().gt("price", 5.0), DestId(2));
            t.insert(Filter::any().eq("symbol", "Bar"), DestId(3));
            t.insert(
                Filter::any().eq("symbol", "Foo").lt("price", 9.0),
                DestId(4),
            );
            t.insert(
                Filter::any().eq("symbol", "Foo").le("price", 10.0),
                DestId(5),
            );
            t.insert(Filter::any(), DestId(6));
        });
        let expect = vec![DestId(1), DestId(2), DestId(5), DestId(6)];
        for out in results {
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn compiled_eq_groups_cross_kinds() {
        // Int and Float equality constants land in one numeric key; an Int
        // event value must hit a Float-written constraint and vice versa.
        let (r, stock, _) = registry();
        let mut t = FilterTable::new(IndexKind::Compiled);
        t.insert(Filter::any().eq("price", 5.0), DestId(1));
        t.insert(Filter::any().eq("price", 5_i64), DestId(2));
        t.insert(Filter::any().eq("price", 6_i64), DestId(3));
        t.insert(Filter::any().eq("flag", true), DestId(4));
        let mut out = Vec::new();
        t.matches(stock, &event_data! { "price" => 5_i64 }, &r, &mut out);
        assert_eq!(out, vec![DestId(1), DestId(2)]);
        t.matches(stock, &event_data! { "price" => 6.0 }, &r, &mut out);
        assert_eq!(out, vec![DestId(3)]);
        // A boolean value must not meet numeric keys (incomparable kinds).
        t.matches(stock, &event_data! { "flag" => true }, &r, &mut out);
        assert_eq!(out, vec![DestId(4)]);
        t.matches(stock, &event_data! { "price" => true }, &r, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn compiled_mixes_eq_and_range_constraints() {
        let (r, stock, _) = registry();
        for kind in [IndexKind::Counting, IndexKind::Compiled] {
            let mut t = FilterTable::new(kind);
            t.insert(
                Filter::any().eq("symbol", "Foo").gt("price", 5.0),
                DestId(1),
            );
            t.insert(Filter::any().eq("symbol", "Foo"), DestId(2));
            let mut out = Vec::new();
            t.matches(
                stock,
                &event_data! { "symbol" => "Foo", "price" => 7.0 },
                &r,
                &mut out,
            );
            assert_eq!(out, vec![DestId(1), DestId(2)], "kind {kind:?}");
            t.matches(
                stock,
                &event_data! { "symbol" => "Foo", "price" => 3.0 },
                &r,
                &mut out,
            );
            assert_eq!(out, vec![DestId(2)], "kind {kind:?}");
        }
    }

    #[test]
    fn negative_zero_equality_class() {
        let (r, stock, _) = registry();
        let mut t = FilterTable::new(IndexKind::Compiled);
        t.insert(Filter::any().eq("x", -0.0), DestId(1));
        let mut out = Vec::new();
        t.matches(stock, &event_data! { "x" => 0.0 }, &r, &mut out);
        assert_eq!(out, vec![DestId(1)]);
    }

    #[test]
    fn matches_any_early_exit_agrees_with_full_match() {
        let (r, stock, auction) = registry();
        for kind in [IndexKind::Naive, IndexKind::Counting, IndexKind::Compiled] {
            let mut t = FilterTable::new(kind);
            t.insert(Filter::for_class(stock).eq("symbol", "Foo"), DestId(1));
            t.insert(Filter::any().gt("price", 100.0), DestId(2));
            let hit = event_data! { "symbol" => "Foo" };
            let miss = event_data! { "symbol" => "Bar", "price" => 10.0 };
            assert!(t.matches_any(stock, &hit, &r,), "kind {kind:?}");
            assert!(!t.matches_any(stock, &miss, &r), "kind {kind:?}");
            // The class-constrained filter must not fire for Auction.
            assert!(!t.matches_any(auction, &hit, &r), "kind {kind:?}");
            // A zero-required (class-only) filter answers immediately.
            t.insert(Filter::for_class(auction), DestId(3));
            assert!(t.matches_any(auction, &hit, &r), "kind {kind:?}");
        }
    }

    #[test]
    fn duplicate_filters_extend_id_list() {
        let mut t = FilterTable::new(IndexKind::Naive);
        let f = Filter::any().eq("a", 1).eq("b", 2);
        // Same filter modulo constraint order.
        let f_reordered = Filter::any().eq("b", 2).eq("a", 1);
        assert!(t.insert(f.clone(), DestId(1)));
        assert!(!t.insert(f_reordered, DestId(2)));
        assert!(!t.insert(f.clone(), DestId(1)));
        assert_eq!(t.filter_count(), 1);
        assert_eq!(t.pair_count(), 2);
    }

    #[test]
    fn class_constraints_respect_subtyping() {
        let mut r = TypeRegistry::new();
        let base = r.register("Quote", None, vec![]).unwrap();
        let stock = r.register("Stock", Some("Quote"), vec![]).unwrap();
        for kind in [IndexKind::Naive, IndexKind::Counting, IndexKind::Compiled] {
            let mut t = FilterTable::new(kind);
            t.insert(Filter::for_class(base), DestId(1));
            t.insert(Filter::for_class(stock), DestId(2));
            let meta = EventData::new();
            let mut out = Vec::new();
            t.matches(stock, &meta, &r, &mut out);
            out.sort();
            assert_eq!(out, vec![DestId(1), DestId(2)], "kind {kind:?}");
            t.matches(base, &meta, &r, &mut out);
            assert_eq!(out, vec![DestId(1)]);
        }
    }

    #[test]
    fn removal_and_rebuild() {
        let (r, stock, _) = registry();
        let meta = event_data! { "symbol" => "Foo" };
        let mut t = FilterTable::new(IndexKind::Counting);
        let f = Filter::any().eq("symbol", "Foo");
        t.insert(f.clone(), DestId(1));
        t.insert(f.clone(), DestId(2));
        assert!(t.remove(&f, DestId(1)));
        assert!(!t.remove(&f, DestId(1)));
        let mut out = Vec::new();
        t.matches(stock, &meta, &r, &mut out);
        assert_eq!(out, vec![DestId(2)]);
        assert!(t.remove(&f, DestId(2)));
        assert!(t.is_empty());
        t.matches(stock, &meta, &r, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn remove_dest_sweeps_all_entries() {
        let mut t = FilterTable::new(IndexKind::Counting);
        t.insert(Filter::any().eq("a", 1), DestId(9));
        t.insert(Filter::any().eq("b", 2), DestId(9));
        t.insert(Filter::any().eq("b", 2), DestId(3));
        assert_eq!(t.remove_dest(DestId(9)), 2);
        assert_eq!(t.filter_count(), 1);
        assert_eq!(t.remove_dest(DestId(9)), 0);
    }

    #[test]
    fn find_cover_picks_strongest() {
        let (r, stock, _) = registry();
        let mut t = FilterTable::new(IndexKind::Naive);
        let weak = Filter::for_class(stock);
        let mid = Filter::for_class(stock).eq("symbol", "DEF");
        let strong = Filter::for_class(stock)
            .eq("symbol", "DEF")
            .lt("price", 11.0);
        t.insert(weak.clone(), DestId(1));
        t.insert(mid.clone(), DestId(2));
        t.insert(strong.clone(), DestId(3));
        let sub = Filter::for_class(stock)
            .eq("symbol", "DEF")
            .lt("price", 10.0);
        let (found, dests) = t.find_cover(&sub, &r).unwrap();
        assert_eq!(found, &strong);
        assert_eq!(dests, &[DestId(3)]);
        // No covering filter at all:
        let (_, auction) = (stock, r.id_of("Auction"));
        let _ = auction;
        let other = Filter::any();
        // `weak` does not cover class-unconstrained subscriptions.
        assert!(t.find_cover(&other, &r).is_none());
    }

    #[test]
    fn wildcard_only_filters_match_everything_of_class() {
        let (r, stock, auction) = registry();
        for kind in [IndexKind::Naive, IndexKind::Counting, IndexKind::Compiled] {
            let mut t = FilterTable::new(kind);
            t.insert(Filter::for_class(stock).wildcard("symbol"), DestId(1));
            let meta = event_data! { "symbol" => "Anything" };
            let mut out = Vec::new();
            t.matches(stock, &meta, &r, &mut out);
            assert_eq!(out, vec![DestId(1)]);
            t.matches(auction, &meta, &r, &mut out);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn counting_handles_repeated_attr_constraints() {
        let (r, stock, _) = registry();
        for kind in [IndexKind::Naive, IndexKind::Counting, IndexKind::Compiled] {
            let mut t = FilterTable::new(kind);
            t.insert(Filter::any().ge("price", 5.0).le("price", 10.0), DestId(1));
            let mut out = Vec::new();
            t.matches(stock, &event_data! { "price" => 7.0 }, &r, &mut out);
            assert_eq!(out, vec![DestId(1)], "kind {kind:?}");
            t.matches(stock, &event_data! { "price" => 12.0 }, &r, &mut out);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn shared_predicates_fire_all_slots() {
        let (r, stock, _) = registry();
        let mut t = FilterTable::new(IndexKind::Counting);
        for i in 0u32..10 {
            t.insert(
                Filter::any().eq("symbol", "Foo").gt("price", f64::from(i)),
                DestId(u64::from(i)),
            );
        }
        let mut out = Vec::new();
        t.matches(
            stock,
            &event_data! { "symbol" => "Foo", "price" => 5.5 },
            &r,
            &mut out,
        );
        assert_eq!(out.len(), 6); // thresholds 0..=5
    }

    #[test]
    fn filters_for_lists_by_dest() {
        let mut t = FilterTable::new(IndexKind::Naive);
        t.insert(Filter::any().eq("a", 1), DestId(1));
        t.insert(Filter::any().eq("b", 2), DestId(1));
        t.insert(Filter::any().eq("c", 3), DestId(2));
        assert_eq!(t.filters_for(DestId(1)).count(), 2);
        assert_eq!(t.iter().count(), 3);
    }

    #[test]
    fn matches_any_shortcut() {
        let (r, stock, _) = registry();
        let mut t = FilterTable::new(IndexKind::Naive);
        t.insert(Filter::any().eq("symbol", "Foo"), DestId(1));
        assert!(t.matches_any(stock, &event_data! { "symbol" => "Foo" }, &r));
        assert!(!t.matches_any(stock, &event_data! { "symbol" => "Bar" }, &r));
    }
}
