//! Subscription aggregation: a refcounted cover forest over broker tables.
//!
//! The per-subscription [`FilterTable`] grows one entry per distinct filter,
//! so table size and per-event match cost scale linearly with subscriber
//! count. [`AggTable`] collapses filters subsumed by an existing cover
//! (Definition 2, via [`Filter::covers`]) into shared entries: subscriptions
//! form a forest where every **root** is one live index entry and covered
//! **children** are bookkeeping only. Matching runs against the live roots;
//! stage-0 subscribers re-apply their exact original filters on delivery, so
//! covering over-forwards at worst — the end-to-end delivery set is
//! unchanged.
//!
//! The forest is maintained *incrementally* under churn:
//!
//! - **Insert.** A filter covered by an existing root attaches as a child
//!   and only bumps the root's per-destination refcounts. An uncovered
//!   filter becomes a new root, *demoting* any existing roots it covers
//!   (their entries leave the live index; their subtrees flatten under the
//!   new root).
//! - **Remove.** Dropping a child only decrements refcounts. Dropping the
//!   last own-subscription of a covering root dissolves it: each child is
//!   re-homed under another covering root or *re-promoted* to a root of its
//!   own — never a full rebuild.
//! - **Optional merge.** With [`AggTable::set_merge`] enabled, an uncovered
//!   insert may fuse with a near-identical sibling root into a synthetic
//!   root built by [`merge_cover`] — bounded weakening: the merged filter
//!   must still constrain every attribute the inputs did and verifiably
//!   cover both. Synthetic roots widen the live filter, so deliveries can
//!   gain false positives; [`AggTable::merges`] counts them so the
//!   expressiveness cost is measured, not hidden.
//!
//! The forest is depth-1 by construction (children never have children), so
//! every structural operation touches a bounded neighbourhood. Two
//! representation choices keep the table flat at a million subscriptions:
//! the live index stores a single sentinel destination per root (the root's
//! slab id) and real destinations are expanded from the root's refcount map
//! at match time, so subscribe/unsubscribe never rewrites an id-list; and
//! cover searches go through posting lists keyed on equality constraints —
//! a root covering `f` can only constrain attributes `f` constrains, and
//! every equality it demands must appear in `f`, so candidates come from a
//! few hash lookups instead of a full root scan.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};

use layercake_event::{AttrId, AttrValue, ClassId, EventData, TypeRegistry};

use crate::cover::merge_cover;
use crate::filter::Filter;
use crate::index::{DestId, FilterTable, IndexKind};
use crate::predicate::Predicate;

/// Live-index changes produced by one [`AggTable::insert`] or
/// [`AggTable::remove`]: which root filters gained a live entry (something a
/// broker must announce upstream) and which lost theirs (something to
/// withdraw). `changed` reports whether the `<filter, dest>` pair itself
/// was added or removed at all.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct AggDelta {
    /// Whether the subscription pair was actually added or removed.
    pub changed: bool,
    /// Root filters whose live entry was created by this operation.
    pub added: Vec<Filter>,
    /// Root filters whose live entry was removed by this operation.
    pub removed: Vec<Filter>,
}

impl AggDelta {
    /// Cancels filters that were transiently added and removed within one
    /// operation (e.g. a child promoted to a root and immediately demoted
    /// under a stronger sibling), so brokers see only net changes.
    fn settle(&mut self) {
        if self.added.is_empty() || self.removed.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.added.len() {
            if let Some(j) = self.removed.iter().position(|f| *f == self.added[i]) {
                self.removed.remove(j);
                self.added.remove(i);
            } else {
                i += 1;
            }
        }
    }
}

/// A point-in-time summary of the forest's shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggStats {
    /// Distinct filters in the live match index (= forest roots).
    pub live_entries: usize,
    /// `<filter, dest>` pairs held in covered children (bookkeeping only).
    pub covered_subs: usize,
    /// Total `<filter, dest>` pairs tracked, covered or not.
    pub total_subs: usize,
    /// Synthetic roots currently live (created by bounded-weakening merge).
    pub merged_roots: usize,
    /// Cumulative bounded-weakening merges performed.
    pub merges: u64,
}

#[derive(Debug)]
struct AggNode {
    /// Normalized filter — the node's identity in `by_key`.
    filter: Filter,
    /// Bloom mask of the filter's non-wildcard attribute ids. A root can
    /// cover `f` only if `root.mask & !f.mask == 0`.
    mask: u64,
    /// Sorted `(attr, canonical value hash)` pairs for equality
    /// constraints — the posting-list key for cover searches.
    sig: Vec<(AttrId, u64)>,
    /// `Some(root)` for covered children, `None` for roots (depth ≤ 1).
    parent: Option<usize>,
    /// Covered children (roots only).
    children: Vec<usize>,
    /// Destinations subscribed to exactly this filter, insertion order.
    own: Vec<DestId>,
    /// Roots only: per-destination refcounts over the whole subtree. The
    /// destinations the root's live entry stands for are exactly
    /// `counts.keys()`.
    counts: HashMap<DestId, u32>,
    /// Created by a bounded-weakening merge; nobody subscribed this filter
    /// verbatim, so it dissolves once it covers fewer than two children.
    synthetic: bool,
}

impl AggNode {
    fn new(filter: Filter, synthetic: bool) -> Self {
        let mask = filter_mask(&filter);
        let sig = filter_sig(&filter);
        AggNode {
            filter,
            mask,
            sig,
            parent: None,
            children: Vec::new(),
            own: Vec::new(),
            counts: HashMap::new(),
            synthetic,
        }
    }
}

fn attr_bit(id: AttrId) -> u64 {
    1u64 << (id.0 % 64)
}

fn filter_mask(f: &Filter) -> u64 {
    f.constraints()
        .iter()
        .filter(|c| !c.is_wildcard())
        .fold(0, |m, c| m | attr_bit(c.id()))
}

/// Canonical hash of an equality constant, collapsing `Int`/`Float` into one
/// numeric key to mirror `value_eq` semantics. Collisions only widen the
/// candidate set — every candidate is re-checked with [`Filter::covers`].
fn value_sig(v: &AttrValue) -> u64 {
    let mut h = DefaultHasher::new();
    match v {
        AttrValue::Int(i) => {
            0u8.hash(&mut h);
            (*i as f64).to_bits().hash(&mut h);
        }
        AttrValue::Float(f) => {
            0u8.hash(&mut h);
            let f = if *f == 0.0 { 0.0 } else { *f };
            f.to_bits().hash(&mut h);
        }
        AttrValue::Str(s) => {
            1u8.hash(&mut h);
            s.hash(&mut h);
        }
        AttrValue::Bool(b) => {
            2u8.hash(&mut h);
            b.hash(&mut h);
        }
    }
    h.finish()
}

fn filter_sig(f: &Filter) -> Vec<(AttrId, u64)> {
    let mut sig: Vec<(AttrId, u64)> = f
        .constraints()
        .iter()
        .filter_map(|c| match c.predicate() {
            Predicate::Eq(v) => Some((c.id(), value_sig(v))),
            _ => None,
        })
        .collect();
    sig.sort_unstable();
    sig.dedup();
    sig
}

/// An aggregated subscription table: the cover forest plus the live
/// [`FilterTable`] its roots project into. Drop-in for the per-subscription
/// table on the broker's hot path — [`AggTable::matches`] only ever
/// evaluates the (much smaller) live index.
#[derive(Debug)]
pub struct AggTable {
    /// Live index over root filters. Each entry's id-list is a single
    /// sentinel: the root's slab index, expanded to real destinations from
    /// the root's refcounts on read.
    live: FilterTable,
    nodes: Vec<Option<AggNode>>,
    free: Vec<usize>,
    by_key: HashMap<Filter, usize>,
    /// Root set in ascending slab order — deterministic iteration.
    roots: BTreeSet<usize>,
    /// Posting lists: equality pair → roots whose filter demands it.
    posts: HashMap<(AttrId, u64), Vec<usize>>,
    /// Roots with no equality constraints (always cover-candidates).
    eqless: Vec<usize>,
    covered_pairs: usize,
    total_pairs: usize,
    dest_pairs: HashMap<DestId, u32>,
    match_scratch: Vec<DestId>,
    merges: u64,
    merge_enabled: bool,
}

impl AggTable {
    /// An empty forest whose live index uses the given strategy.
    #[must_use]
    pub fn new(kind: IndexKind) -> Self {
        AggTable {
            live: FilterTable::new(kind),
            nodes: Vec::new(),
            free: Vec::new(),
            by_key: HashMap::new(),
            roots: BTreeSet::new(),
            posts: HashMap::new(),
            eqless: Vec::new(),
            covered_pairs: 0,
            total_pairs: 0,
            dest_pairs: HashMap::new(),
            match_scratch: Vec::new(),
            merges: 0,
            merge_enabled: false,
        }
    }

    /// Enables or disables bounded-weakening merges of near-identical
    /// sibling roots. Off by default: with merging off the live index is an
    /// exact cover of the subscription set, so after stage-0 re-filtering
    /// deliveries are identical to the per-subscription table's and even
    /// the raw forwarding sets only differ where a child's root
    /// over-forwards.
    pub fn set_merge(&mut self, enabled: bool) {
        self.merge_enabled = enabled;
    }

    /// The matching strategy of the live index.
    #[must_use]
    pub fn kind(&self) -> IndexKind {
        self.live.kind()
    }

    /// Adds a `<filter, dest>` subscription pair to the forest.
    pub fn insert(&mut self, filter: Filter, dest: DestId, registry: &TypeRegistry) -> AggDelta {
        let mut delta = AggDelta::default();
        let key = filter.normalized();
        if let Some(&idx) = self.by_key.get(&key) {
            if self.node(idx).own.contains(&dest) {
                return delta;
            }
            self.node_mut(idx).own.push(dest);
            delta.changed = true;
            self.total_pairs += 1;
            *self.dest_pairs.entry(dest).or_insert(0) += 1;
            let root = self.node(idx).parent.unwrap_or(idx);
            if root != idx {
                self.covered_pairs += 1;
            }
            self.bump(root, dest, &mut delta);
            delta.settle();
            return delta;
        }

        let mut node = AggNode::new(key.clone(), false);
        node.own.push(dest);
        let (mask, sig) = (node.mask, node.sig.clone());
        let idx = self.alloc(node);
        self.by_key.insert(key, idx);
        delta.changed = true;
        self.total_pairs += 1;
        *self.dest_pairs.entry(dest).or_insert(0) += 1;

        if let Some(r) = self.find_covering_root(idx, mask, &sig, registry) {
            self.attach(idx, r, &mut delta);
        } else if !(self.merge_enabled && self.try_merge(idx, registry, &mut delta)) {
            self.make_root(idx, registry, &mut delta);
        }
        delta.settle();
        delta
    }

    /// Removes a `<filter, dest>` subscription pair, dissolving and
    /// re-promoting forest structure as needed.
    pub fn remove(&mut self, filter: &Filter, dest: DestId, registry: &TypeRegistry) -> AggDelta {
        let mut delta = AggDelta::default();
        let key = filter.normalized();
        let Some(&idx) = self.by_key.get(&key) else {
            return delta;
        };
        let Some(pos) = self.node(idx).own.iter().position(|d| *d == dest) else {
            return delta;
        };
        self.node_mut(idx).own.remove(pos);
        delta.changed = true;
        self.total_pairs -= 1;
        if let Some(c) = self.dest_pairs.get_mut(&dest) {
            *c -= 1;
            if *c == 0 {
                self.dest_pairs.remove(&dest);
            }
        }
        let root = self.node(idx).parent.unwrap_or(idx);
        if root != idx {
            self.covered_pairs -= 1;
        }
        self.unbump(root, dest, &mut delta);
        if self.node(idx).own.is_empty() {
            self.dissolve(idx, registry, &mut delta);
        }
        delta.settle();
        delta
    }

    /// Collects the destinations of all subscriptions whose *root* filter
    /// matches the event (ascending, deduped). With merging off every
    /// destination returned holds an original filter whose root covers it,
    /// so stage-0 re-filtering restores the exact per-subscription set.
    pub fn matches(
        &mut self,
        class: ClassId,
        meta: &EventData,
        registry: &TypeRegistry,
        out: &mut Vec<DestId>,
    ) {
        let mut hits = std::mem::take(&mut self.match_scratch);
        self.live.matches(class, meta, registry, &mut hits);
        out.clear();
        for s in &hits {
            let root = usize::try_from(s.0).expect("sentinel fits usize");
            out.extend(self.node(root).counts.keys().copied());
        }
        self.match_scratch = hits;
        out.sort_unstable();
        out.dedup();
    }

    /// Finds the strongest live filter covering `f` and the destinations it
    /// stands for (placement search).
    #[must_use]
    pub fn find_cover(
        &self,
        f: &Filter,
        registry: &TypeRegistry,
    ) -> Option<(&Filter, Vec<DestId>)> {
        self.live
            .find_cover(f, registry)
            .map(|(filter, sentinel)| (filter, self.root_dests(sentinel)))
    }

    /// Iterates over the live `(filter, destinations)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Filter, Vec<DestId>)> {
        self.live
            .iter()
            .map(|(f, sentinel)| (f, self.root_dests(sentinel)))
    }

    /// The *original* filters a destination subscribed, covered or not, in
    /// slab order (deterministic for a given operation history).
    pub fn filters_for(&self, dest: DestId) -> impl Iterator<Item = &Filter> {
        self.nodes
            .iter()
            .filter_map(|n| n.as_ref())
            .filter(move |n| n.own.contains(&dest))
            .map(|n| &n.filter)
    }

    /// Whether the destination holds any subscription at all.
    #[must_use]
    pub fn has_dest(&self, dest: DestId) -> bool {
        self.dest_pairs.contains_key(&dest)
    }

    /// Distinct filters in the live match index.
    #[must_use]
    pub fn live_entries(&self) -> usize {
        self.live.filter_count()
    }

    /// `<filter, dest>` pairs currently held by covered children.
    #[must_use]
    pub fn covered_subs(&self) -> usize {
        self.covered_pairs
    }

    /// Total `<filter, dest>` pairs tracked.
    #[must_use]
    pub fn subscription_count(&self) -> usize {
        self.total_pairs
    }

    /// Whether no subscriptions are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total_pairs == 0
    }

    /// Cumulative bounded-weakening merges performed.
    #[must_use]
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// A point-in-time shape summary.
    #[must_use]
    pub fn stats(&self) -> AggStats {
        AggStats {
            live_entries: self.live.filter_count(),
            covered_subs: self.covered_pairs,
            total_subs: self.total_pairs,
            merged_roots: self
                .roots
                .iter()
                .filter(|&&r| self.node(r).synthetic)
                .count(),
            merges: self.merges,
        }
    }

    // ---- forest internals -------------------------------------------------

    fn node(&self, idx: usize) -> &AggNode {
        self.nodes[idx].as_ref().expect("live agg node")
    }

    fn node_mut(&mut self, idx: usize) -> &mut AggNode {
        self.nodes[idx].as_mut().expect("live agg node")
    }

    fn sentinel(idx: usize) -> DestId {
        DestId(idx as u64)
    }

    /// Expands a live entry's sentinel id-list into the root's real
    /// destinations, ascending.
    fn root_dests(&self, sentinel: &[DestId]) -> Vec<DestId> {
        let root = usize::try_from(sentinel[0].0).expect("sentinel fits usize");
        let mut ds: Vec<DestId> = self.node(root).counts.keys().copied().collect();
        ds.sort_unstable();
        ds
    }

    fn alloc(&mut self, node: AggNode) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = Some(node);
            idx
        } else {
            self.nodes.push(Some(node));
            self.nodes.len() - 1
        }
    }

    fn delete_node(&mut self, idx: usize) {
        let node = self.nodes[idx].take().expect("live agg node");
        self.by_key.remove(&node.filter);
        self.free.push(idx);
    }

    fn post_root(&mut self, idx: usize) {
        let sig = self.node(idx).sig.clone();
        if sig.is_empty() {
            self.eqless.push(idx);
        } else {
            for pair in sig {
                self.posts.entry(pair).or_default().push(idx);
            }
        }
    }

    fn unpost_root(&mut self, idx: usize) {
        let sig = self.node(idx).sig.clone();
        if sig.is_empty() {
            self.eqless.retain(|&x| x != idx);
        } else {
            for pair in sig {
                if let Some(list) = self.posts.get_mut(&pair) {
                    list.retain(|&x| x != idx);
                    if list.is_empty() {
                        self.posts.remove(&pair);
                    }
                }
            }
        }
    }

    /// The strongest root covering the node's filter, if any. A candidate
    /// must post every equality it demands inside the filter's own equality
    /// set (or demand none), so the search is a handful of hash lookups
    /// plus verification — no full root scan.
    fn find_covering_root(
        &self,
        idx: usize,
        mask: u64,
        sig: &[(AttrId, u64)],
        registry: &TypeRegistry,
    ) -> Option<usize> {
        let mut cands: Vec<usize> = self.eqless.clone();
        for pair in sig {
            if let Some(list) = self.posts.get(pair) {
                cands.extend_from_slice(list);
            }
        }
        cands.sort_unstable();
        cands.dedup();
        let filter = &self.node(idx).filter;
        let mut best: Option<usize> = None;
        for r in cands {
            if r == idx {
                continue;
            }
            let cand = self.node(r);
            // A cover cannot constrain attributes the stronger filter
            // leaves free.
            if cand.mask & !mask != 0 {
                continue;
            }
            if !cand.filter.covers(filter, registry) {
                continue;
            }
            best = match best {
                None => Some(r),
                Some(b) => {
                    let bn = self.node(b);
                    // Prefer the strictly more specific cover; ties keep
                    // the lower slab index (deterministic).
                    if bn.filter.covers(&cand.filter, registry)
                        && !cand.filter.covers(&bn.filter, registry)
                    {
                        Some(r)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best
    }

    /// Roots covered by `filter` (to demote under a new root). A covered
    /// root must demand every equality `filter` demands, so candidates come
    /// from one posting list; an equality-free filter falls back to the
    /// full root scan.
    fn roots_covered_by(
        &self,
        filter: &Filter,
        mask: u64,
        sig: &[(AttrId, u64)],
        exclude: usize,
        registry: &TypeRegistry,
    ) -> Vec<usize> {
        let mut cands: Vec<usize> = if sig.is_empty() {
            self.roots.iter().copied().collect()
        } else {
            let mut shortest: Option<&Vec<usize>> = None;
            for pair in sig {
                match self.posts.get(pair) {
                    // No root demands this equality, so no root is covered.
                    None => return Vec::new(),
                    Some(list) => match shortest {
                        Some(s) if list.len() >= s.len() => {}
                        _ => shortest = Some(list),
                    },
                }
            }
            shortest.cloned().unwrap_or_default()
        };
        cands.sort_unstable();
        cands.dedup();
        cands.retain(|&r| {
            if r == exclude {
                return false;
            }
            let cand = self.node(r);
            mask & !cand.mask == 0 && filter.covers(&cand.filter, registry)
        });
        cands
    }

    fn attach(&mut self, idx: usize, root: usize, delta: &mut AggDelta) {
        self.node_mut(idx).parent = Some(root);
        self.node_mut(root).children.push(idx);
        let own = self.node(idx).own.clone();
        self.covered_pairs += own.len();
        for d in own {
            self.bump(root, d, delta);
        }
    }

    /// Turns `idx` into a root: seeds refcounts from its own destinations,
    /// demotes any existing roots its filter covers (flattening their
    /// subtrees underneath), and writes its live index entry.
    fn make_root(&mut self, idx: usize, registry: &TypeRegistry, delta: &mut AggDelta) {
        let own = self.node(idx).own.clone();
        for d in &own {
            *self.node_mut(idx).counts.entry(*d).or_insert(0) += 1;
        }
        self.roots.insert(idx);
        self.post_root(idx);

        let (filter, mask, sig) = {
            let n = self.node(idx);
            (n.filter.clone(), n.mask, n.sig.clone())
        };
        for r in self.roots_covered_by(&filter, mask, &sig, idx, registry) {
            self.demote_root(r, idx, delta);
        }

        if !self.node(idx).counts.is_empty() {
            self.live.insert(filter.clone(), Self::sentinel(idx));
            delta.added.push(filter);
        }
    }

    /// Demotes root `r` under `new_root`: withdraws `r`'s live entry,
    /// flattens `r`'s children (and `r` itself) into `new_root`'s child
    /// list, and merges the refcounts.
    fn demote_root(&mut self, r: usize, new_root: usize, delta: &mut AggDelta) {
        self.unpost_root(r);
        self.roots.remove(&r);

        let rfilter = self.node(r).filter.clone();
        if !self.node(r).counts.is_empty() {
            self.live.remove(&rfilter, Self::sentinel(r));
            delta.removed.push(rfilter);
        }

        let children = std::mem::take(&mut self.node_mut(r).children);
        for &c in &children {
            self.node_mut(c).parent = Some(new_root);
        }
        self.node_mut(new_root).children.extend(children);

        let counts = std::mem::take(&mut self.node_mut(r).counts);
        for (d, n) in counts {
            *self.node_mut(new_root).counts.entry(d).or_insert(0) += n;
        }

        // `r` itself becomes a child — unless it is an empty synthetic
        // shell, which simply dissolves into the new root.
        if self.node(r).synthetic && self.node(r).own.is_empty() {
            self.delete_node(r);
        } else {
            self.covered_pairs += self.node(r).own.len();
            self.node_mut(r).parent = Some(new_root);
            self.node_mut(new_root).children.push(r);
        }
    }

    /// Handles a node whose own-subscription list just emptied.
    fn dissolve(&mut self, idx: usize, registry: &TypeRegistry, delta: &mut AggDelta) {
        if let Some(p) = self.node(idx).parent {
            // A childless covered node: drop it and let a synthetic parent
            // collapse if it no longer earns its keep.
            self.node_mut(p).children.retain(|&c| c != idx);
            self.delete_node(idx);
            self.maybe_collapse_synthetic(p, registry, delta);
        } else {
            let n = self.node(idx);
            if n.synthetic && n.children.len() >= 2 {
                // A merge cover still collapsing several children stays.
                return;
            }
            if n.children.is_empty() {
                // A leaf root; refcounts (and the live entry) are already
                // gone via unbump.
                self.unpost_root(idx);
                self.roots.remove(&idx);
                self.delete_node(idx);
            } else {
                self.dissolve_root(idx, registry, delta);
            }
        }
    }

    /// Dissolves a covering root that lost its own subscribers: its live
    /// entry is withdrawn and every child is re-homed under another cover
    /// or re-promoted to a root — never a rebuild.
    fn dissolve_root(&mut self, idx: usize, registry: &TypeRegistry, delta: &mut AggDelta) {
        self.unpost_root(idx);
        self.roots.remove(&idx);
        let filter = self.node(idx).filter.clone();
        if !self.node(idx).counts.is_empty() {
            self.live.remove(&filter, Self::sentinel(idx));
            delta.removed.push(filter);
        }
        let children = std::mem::take(&mut self.node_mut(idx).children);
        self.delete_node(idx);
        for c in children {
            self.node_mut(c).parent = None;
            self.rehome(c, registry, delta);
        }
    }

    /// Re-homes an orphaned child: attach under a covering root if one
    /// remains, otherwise promote it to a root of its own.
    fn rehome(&mut self, c: usize, registry: &TypeRegistry, delta: &mut AggDelta) {
        // The child's pairs stop counting as covered either way; attach()
        // re-adds them if another cover takes it in.
        self.covered_pairs -= self.node(c).own.len();
        let (mask, sig) = {
            let n = self.node(c);
            (n.mask, n.sig.clone())
        };
        if let Some(r) = self.find_covering_root(c, mask, &sig, registry) {
            self.attach(c, r, delta);
        } else {
            self.make_root(c, registry, delta);
        }
    }

    /// Collapses a synthetic root that no longer covers at least two
    /// children: the merge buys nothing, so the survivor (if any) gets its
    /// exact filter back in the live index.
    fn maybe_collapse_synthetic(
        &mut self,
        p: usize,
        registry: &TypeRegistry,
        delta: &mut AggDelta,
    ) {
        let n = self.node(p);
        if !n.synthetic || !n.own.is_empty() || n.children.len() >= 2 {
            return;
        }
        if n.children.is_empty() {
            // Refcounts emptied with the last child, so no live entry left.
            self.unpost_root(p);
            self.roots.remove(&p);
            self.delete_node(p);
        } else {
            self.dissolve_root(p, registry, delta);
        }
    }

    /// Bumps the root's refcount for `dest`, materializing the live entry
    /// with the root's first destination.
    fn bump(&mut self, root: usize, dest: DestId, delta: &mut AggDelta) {
        let node = self.node_mut(root);
        let first = node.counts.is_empty();
        *node.counts.entry(dest).or_insert(0) += 1;
        if first {
            let filter = node.filter.clone();
            self.live.insert(filter.clone(), Self::sentinel(root));
            delta.added.push(filter);
        }
    }

    /// Drops one refcount; the root's live entry goes with its last
    /// destination.
    fn unbump(&mut self, root: usize, dest: DestId, delta: &mut AggDelta) {
        let node = self.node_mut(root);
        let c = node
            .counts
            .get_mut(&dest)
            .expect("refcount present for tracked pair");
        *c -= 1;
        if *c == 0 {
            node.counts.remove(&dest);
            if node.counts.is_empty() {
                let filter = node.filter.clone();
                self.live.remove(&filter, Self::sentinel(root));
                delta.removed.push(filter);
            }
        }
    }

    /// Attempts a bounded-weakening merge of the fresh uncovered node `idx`
    /// with a near-identical sibling root (same class, same constrained
    /// attributes). The merged filter must still constrain every attribute
    /// the inputs did and must verifiably cover both — otherwise the merge
    /// is rejected and `idx` becomes a plain root.
    fn try_merge(&mut self, idx: usize, registry: &TypeRegistry, delta: &mut AggDelta) -> bool {
        let (filter, mask) = {
            let n = self.node(idx);
            (n.filter.clone(), n.mask)
        };
        let class = filter.class();
        let cands: Vec<usize> = self
            .roots
            .iter()
            .copied()
            .filter(|&r| {
                let n = self.node(r);
                !n.synthetic && n.mask == mask && n.filter.class() == class
            })
            .collect();
        for r in cands {
            let rf = self.node(r).filter.clone();
            let merged = merge_cover(&[&filter, &rf], registry).normalized();
            if merged.is_match_all()
                || filter_mask(&merged) != mask
                || self.by_key.contains_key(&merged)
                || !merged.covers(&filter, registry)
                || !merged.covers(&rf, registry)
            {
                continue;
            }
            let m = self.alloc(AggNode::new(merged.clone(), true));
            self.by_key.insert(merged, m);
            self.merges += 1;
            // Root-ify the synthetic cover first: its demotion scan folds
            // `r` (and anything else it covers) in, then the fresh node
            // attaches as one more child.
            self.make_root(m, registry, delta);
            self.attach(idx, m, delta);
            return true;
        }
        false
    }

    /// Exhaustively validates the forest invariants (tests only).
    #[cfg(test)]
    fn check(&self, registry: &TypeRegistry) {
        let mut total = 0usize;
        let mut covered = 0usize;
        for (idx, slot) in self.nodes.iter().enumerate() {
            let Some(node) = slot else { continue };
            assert_eq!(
                self.by_key.get(&node.filter),
                Some(&idx),
                "by_key points back"
            );
            total += node.own.len();
            match node.parent {
                Some(p) => {
                    assert!(self.roots.contains(&p), "parent is a root");
                    assert!(self.node(p).children.contains(&idx), "parent lists child");
                    assert!(node.children.is_empty(), "forest is depth-1");
                    assert!(node.counts.is_empty(), "children carry no counts");
                    assert!(!node.own.is_empty(), "children carry subscribers");
                    assert!(
                        self.node(p).filter.covers(&node.filter, registry),
                        "child is covered by its root"
                    );
                    covered += node.own.len();
                }
                None => {
                    assert!(self.roots.contains(&idx), "parentless node is a root");
                    let mut expect: HashMap<DestId, u32> = HashMap::new();
                    for d in &node.own {
                        *expect.entry(*d).or_insert(0) += 1;
                    }
                    for &c in &node.children {
                        for d in &self.node(c).own {
                            *expect.entry(*d).or_insert(0) += 1;
                        }
                    }
                    assert_eq!(node.counts, expect, "root refcounts match subtree");
                    let live_ids: Option<Vec<DestId>> = self
                        .live
                        .iter()
                        .find(|(f, _)| **f == node.filter)
                        .map(|(_, ds)| ds.to_vec());
                    if node.counts.is_empty() {
                        assert!(
                            live_ids.is_none(),
                            "destination-less root has no live entry"
                        );
                    } else {
                        assert_eq!(
                            live_ids,
                            Some(vec![Self::sentinel(idx)]),
                            "root's live entry holds its sentinel"
                        );
                    }
                }
            }
        }
        assert_eq!(total, self.total_pairs, "total pair accounting");
        assert_eq!(covered, self.covered_pairs, "covered pair accounting");
        let live_roots = self
            .roots
            .iter()
            .filter(|&&r| !self.node(r).counts.is_empty())
            .count();
        assert_eq!(
            live_roots,
            self.live.filter_count(),
            "one live entry per destination-holding root"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use layercake_event::event_data;

    fn registry() -> (TypeRegistry, ClassId) {
        let mut r = TypeRegistry::new();
        let stock = r.register("Stock", None, vec![]).unwrap();
        (r, stock)
    }

    fn sym(class: ClassId, s: &str) -> Filter {
        Filter::for_class(class).eq("symbol", s)
    }

    fn sym_lt(class: ClassId, s: &str, ceiling: f64) -> Filter {
        Filter::for_class(class)
            .eq("symbol", s)
            .lt("price", ceiling)
    }

    /// Deterministic xorshift64* — the filter crate has no rand dev-dep.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    #[test]
    fn covered_insert_shares_the_root_entry() {
        let (r, stock) = registry();
        let mut t = AggTable::new(IndexKind::Compiled);
        let d1 = t.insert(sym(stock, "A"), DestId(1), &r);
        assert_eq!(d1.added, vec![sym(stock, "A").normalized()]);
        let d2 = t.insert(sym_lt(stock, "A", 10.0), DestId(2), &r);
        assert!(d2.changed && d2.added.is_empty() && d2.removed.is_empty());
        assert_eq!(t.live_entries(), 1);
        assert_eq!(t.covered_subs(), 1);
        assert_eq!(t.subscription_count(), 2);
        t.check(&r);

        let mut out = Vec::new();
        t.matches(
            stock,
            &event_data! { "symbol" => "A", "price" => 5.0 },
            &r,
            &mut out,
        );
        assert_eq!(out, vec![DestId(1), DestId(2)]);
    }

    #[test]
    fn weaker_insert_demotes_existing_roots() {
        let (r, stock) = registry();
        let mut t = AggTable::new(IndexKind::Compiled);
        t.insert(sym_lt(stock, "A", 10.0), DestId(1), &r);
        t.insert(sym_lt(stock, "A", 20.0), DestId(2), &r);
        // 20.0 covers 10.0: one root, one covered child.
        assert_eq!(t.live_entries(), 1);
        assert_eq!(t.covered_subs(), 1);
        // Weaker still: the bare symbol filter covers both.
        let d = t.insert(sym(stock, "A"), DestId(3), &r);
        assert_eq!(d.removed, vec![sym_lt(stock, "A", 20.0).normalized()]);
        assert_eq!(d.added, vec![sym(stock, "A").normalized()]);
        assert_eq!(t.live_entries(), 1);
        assert_eq!(t.covered_subs(), 2);
        t.check(&r);
    }

    #[test]
    fn removing_covering_root_repromotes_children() {
        let (r, stock) = registry();
        let mut t = AggTable::new(IndexKind::Compiled);
        t.insert(sym(stock, "A"), DestId(1), &r);
        t.insert(sym_lt(stock, "A", 10.0), DestId(2), &r);
        t.insert(sym_lt(stock, "A", 20.0), DestId(3), &r);
        assert_eq!(t.live_entries(), 1);
        assert_eq!(t.covered_subs(), 2);

        let d = t.remove(&sym(stock, "A"), DestId(1), &r);
        assert!(d.changed);
        assert_eq!(d.removed, vec![sym(stock, "A").normalized()]);
        // The 20.0 child re-promotes and re-covers the 10.0 child; the
        // transient 10.0 promotion settles away.
        assert_eq!(d.added, vec![sym_lt(stock, "A", 20.0).normalized()]);
        assert_eq!(t.live_entries(), 1);
        assert_eq!(t.covered_subs(), 1);
        t.check(&r);

        let mut out = Vec::new();
        t.matches(
            stock,
            &event_data! { "symbol" => "A", "price" => 5.0 },
            &r,
            &mut out,
        );
        assert_eq!(out, vec![DestId(2), DestId(3)]);
    }

    #[test]
    fn refcounts_survive_duplicate_coverage() {
        let (r, stock) = registry();
        let mut t = AggTable::new(IndexKind::Compiled);
        // One destination holds both the root filter and a covered one.
        t.insert(sym(stock, "A"), DestId(1), &r);
        t.insert(sym_lt(stock, "A", 10.0), DestId(1), &r);
        assert_eq!(t.live_entries(), 1);
        // Dropping the covered one must keep the live pair alive.
        let d = t.remove(&sym_lt(stock, "A", 10.0), DestId(1), &r);
        assert!(d.changed && d.removed.is_empty());
        assert_eq!(t.live_entries(), 1);
        assert!(t.has_dest(DestId(1)));
        t.check(&r);

        let mut out = Vec::new();
        t.matches(
            stock,
            &event_data! { "symbol" => "A", "price" => 50.0 },
            &r,
            &mut out,
        );
        assert_eq!(out, vec![DestId(1)]);
    }

    #[test]
    fn unrelated_filters_stay_separate_roots() {
        let (r, stock) = registry();
        let mut t = AggTable::new(IndexKind::Compiled);
        t.insert(sym(stock, "A"), DestId(1), &r);
        t.insert(sym(stock, "B"), DestId(2), &r);
        assert_eq!(t.live_entries(), 2);
        assert_eq!(t.covered_subs(), 0);
        t.check(&r);
    }

    #[test]
    fn remove_unknown_pair_is_a_noop() {
        let (r, stock) = registry();
        let mut t = AggTable::new(IndexKind::Compiled);
        t.insert(sym(stock, "A"), DestId(1), &r);
        let d = t.remove(&sym(stock, "B"), DestId(1), &r);
        assert!(!d.changed);
        let d = t.remove(&sym(stock, "A"), DestId(9), &r);
        assert!(!d.changed);
        assert_eq!(t.subscription_count(), 1);
        t.check(&r);
    }

    #[test]
    fn find_cover_and_iter_expand_real_destinations() {
        let (r, stock) = registry();
        let mut t = AggTable::new(IndexKind::Compiled);
        t.insert(sym(stock, "A"), DestId(7), &r);
        t.insert(sym_lt(stock, "A", 10.0), DestId(3), &r);
        let (f, ds) = t.find_cover(&sym_lt(stock, "A", 5.0), &r).unwrap();
        assert_eq!(*f, sym(stock, "A").normalized());
        assert_eq!(ds, vec![DestId(3), DestId(7)]);
        let entries: Vec<(Filter, Vec<DestId>)> = t.iter().map(|(f, ds)| (f.clone(), ds)).collect();
        assert_eq!(
            entries,
            vec![(sym(stock, "A").normalized(), vec![DestId(3), DestId(7)])]
        );
    }

    #[test]
    fn filters_for_reports_original_filters() {
        let (r, stock) = registry();
        let mut t = AggTable::new(IndexKind::Compiled);
        t.insert(sym(stock, "A"), DestId(1), &r);
        t.insert(sym_lt(stock, "A", 10.0), DestId(2), &r);
        let fs: Vec<&Filter> = t.filters_for(DestId(2)).collect();
        assert_eq!(fs, vec![&sym_lt(stock, "A", 10.0).normalized()]);
        assert!(t.has_dest(DestId(2)));
        assert!(!t.has_dest(DestId(3)));
    }

    #[test]
    fn bounded_weakening_merge_fuses_near_identical_siblings() {
        let (r, stock) = registry();
        let mut t = AggTable::new(IndexKind::Compiled);
        t.set_merge(true);
        t.insert(sym(stock, "A"), DestId(1), &r);
        let d = t.insert(sym(stock, "B"), DestId(2), &r);
        // Equality union: one synthetic root `symbol ∈ {A, B}` covers both.
        assert_eq!(t.live_entries(), 1);
        assert_eq!(t.merges(), 1);
        assert_eq!(t.stats().merged_roots, 1);
        assert_eq!(t.covered_subs(), 2);
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.removed, vec![sym(stock, "A").normalized()]);
        t.check(&r);

        // The widened root may over-forward between the originals — that is
        // the measured expressiveness cost.
        let mut out = Vec::new();
        t.matches(stock, &event_data! { "symbol" => "B" }, &r, &mut out);
        assert_eq!(out, vec![DestId(1), DestId(2)]);

        // Dropping one child collapses the synthetic root back to the
        // survivor's exact filter.
        let d = t.remove(&sym(stock, "B"), DestId(2), &r);
        assert_eq!(d.added, vec![sym(stock, "A").normalized()]);
        assert_eq!(t.live_entries(), 1);
        assert_eq!(t.stats().merged_roots, 0);
        assert_eq!(t.covered_subs(), 0);
        t.check(&r);
    }

    #[test]
    fn merge_rejects_unbounded_weakening() {
        let (r, stock) = registry();
        let mut t = AggTable::new(IndexKind::Compiled);
        t.set_merge(true);
        // Different attribute sets: no merge candidate at all.
        t.insert(sym(stock, "A"), DestId(1), &r);
        t.insert(Filter::for_class(stock).lt("price", 5.0), DestId(2), &r);
        assert_eq!(t.live_entries(), 2);
        assert_eq!(t.merges(), 0);
        t.check(&r);
    }

    #[test]
    fn random_churn_matches_a_plain_table_after_refiltering() {
        let (r, stock) = registry();
        let mut rng = Lcg(0xA66_5EED);
        let symbols = ["A", "B", "C"];
        for round in 0..8 {
            let mut agg = AggTable::new(IndexKind::Compiled);
            let mut plain = FilterTable::new(IndexKind::Compiled);
            let mut pairs: Vec<(Filter, DestId)> = Vec::new();
            for op in 0..120 {
                let s = symbols[rng.below(3) as usize];
                let f = if rng.below(10) < 3 {
                    sym(stock, s)
                } else {
                    sym_lt(stock, s, (rng.below(5) + 1) as f64 * 5.0)
                };
                let dest = DestId(rng.below(20));
                if !pairs.is_empty() && rng.below(100) < 35 {
                    let k = rng.below(pairs.len() as u64) as usize;
                    let (f, d) = pairs.swap_remove(k);
                    agg.remove(&f, d, &r);
                    plain.remove(&f, d);
                } else {
                    agg.insert(f.clone(), dest, &r);
                    plain.insert(f.clone(), dest);
                    pairs.push((f, dest));
                }
                if op % 30 == 29 {
                    agg.check(&r);
                }
                let meta = event_data! {
                    "symbol" => symbols[rng.below(3) as usize],
                    "price" => rng.below(30) as f64
                };
                let mut got = Vec::new();
                agg.matches(stock, &meta, &r, &mut got);
                // The aggregated table may only over-forward; re-applying
                // each destination's original filters (what stage-0
                // subscribers do) restores the exact set.
                got.retain(|d| agg.filters_for(*d).any(|f| f.matches(stock, &meta, &r)));
                let mut want = Vec::new();
                plain.matches(stock, &meta, &r, &mut want);
                assert_eq!(got, want, "round {round} op {op}");
            }
            agg.check(&r);
            assert!(agg.live_entries() <= plain.filter_count());
        }
    }
}
