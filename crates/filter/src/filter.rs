//! Conjunction filters with an optional event-class constraint.

use std::fmt;

use layercake_event::{AttrValue, ClassId, Envelope, EventData, TypeRegistry};
use serde::{Deserialize, Serialize};

use crate::cover::filter_covers;
use crate::predicate::{AttrFilter, Predicate};

/// Identifier of a subscription filter instance.
///
/// Several brokers may store (weakened forms of) the same subscription; the
/// id ties them together for renewal and removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FilterId(pub u64);

impl fmt::Display for FilterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "filter#{}", self.0)
    }
}

/// A subscription filter: an optional class constraint (type-based
/// filtering, subtype-inclusive) plus a conjunction of attribute
/// constraints.
///
/// This realizes the paper's Definition 1: a function from events to
/// booleans, in the concrete filter language of name-value-operator tuples
/// with a distinguished `class` attribute, e.g.
/// `f = (class, "Stock", =) (symbol, "Foo", =) (price, 10.0, <)`.
///
/// `Filter` values are immutable once built; the builder-style methods
/// consume and return the filter so one-liners read like the paper's
/// notation:
///
/// ```
/// use layercake_filter::Filter;
/// use layercake_event::ClassId;
///
/// let f = Filter::for_class(ClassId(0))
///     .eq("symbol", "Foo")
///     .lt("price", 10.0);
/// assert_eq!(f.constraints().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Filter {
    class: Option<ClassId>,
    constraints: Vec<AttrFilter>,
}

impl Filter {
    /// The filter `f_T` that matches every event (no class constraint, no
    /// attribute constraints).
    #[must_use]
    pub fn any() -> Self {
        Self {
            class: None,
            constraints: Vec::new(),
        }
    }

    /// A filter constrained to an event class and its subclasses.
    #[must_use]
    pub fn for_class(class: ClassId) -> Self {
        Self {
            class: Some(class),
            constraints: Vec::new(),
        }
    }

    /// Adds an arbitrary attribute constraint.
    #[must_use]
    pub fn with(mut self, constraint: AttrFilter) -> Self {
        self.constraints.push(constraint);
        self
    }

    /// Adds an equality constraint.
    #[must_use]
    pub fn eq(self, name: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.with(AttrFilter::new(name, Predicate::Eq(value.into())))
    }

    /// Adds a disequality constraint.
    #[must_use]
    pub fn ne(self, name: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.with(AttrFilter::new(name, Predicate::Ne(value.into())))
    }

    /// Adds a strict less-than constraint.
    #[must_use]
    pub fn lt(self, name: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.with(AttrFilter::new(name, Predicate::Lt(value.into())))
    }

    /// Adds a less-than-or-equal constraint.
    #[must_use]
    pub fn le(self, name: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.with(AttrFilter::new(name, Predicate::Le(value.into())))
    }

    /// Adds a strict greater-than constraint.
    #[must_use]
    pub fn gt(self, name: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.with(AttrFilter::new(name, Predicate::Gt(value.into())))
    }

    /// Adds a greater-than-or-equal constraint.
    #[must_use]
    pub fn ge(self, name: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.with(AttrFilter::new(name, Predicate::Ge(value.into())))
    }

    /// Adds a string-prefix constraint.
    #[must_use]
    pub fn prefix(self, name: impl Into<String>, prefix: impl Into<String>) -> Self {
        self.with(AttrFilter::new(name, Predicate::Prefix(prefix.into())))
    }

    /// Adds a substring constraint.
    #[must_use]
    pub fn contains(self, name: impl Into<String>, needle: impl Into<String>) -> Self {
        self.with(AttrFilter::new(name, Predicate::Contains(needle.into())))
    }

    /// Adds a value-set constraint (the attribute must equal one of the
    /// given values).
    #[must_use]
    pub fn in_set<V: Into<AttrValue>>(
        self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = V>,
    ) -> Self {
        self.with(AttrFilter::new(
            name,
            Predicate::In(values.into_iter().map(Into::into).collect()),
        ))
    }

    /// Adds a presence constraint (`(name, ∃)`).
    #[must_use]
    pub fn exists(self, name: impl Into<String>) -> Self {
        self.with(AttrFilter::new(name, Predicate::Exists))
    }

    /// Adds a wildcard constraint (`(name, "ALL", =)`, Section 4.4).
    #[must_use]
    pub fn wildcard(self, name: impl Into<String>) -> Self {
        self.with(AttrFilter::new(name, Predicate::Any))
    }

    /// The class constraint, if any.
    #[must_use]
    pub fn class(&self) -> Option<ClassId> {
        self.class
    }

    /// Replaces the class constraint.
    #[must_use]
    pub fn with_class(mut self, class: Option<ClassId>) -> Self {
        self.class = class;
        self
    }

    /// The attribute constraints, in insertion (schema) order.
    #[must_use]
    pub fn constraints(&self) -> &[AttrFilter] {
        &self.constraints
    }

    /// Iterates over the constraints on a given attribute.
    pub fn constraints_on<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a AttrFilter> {
        // A name that was never interned cannot appear in any constraint.
        let id = layercake_event::AttrId::lookup(name);
        self.constraints.iter().filter(move |c| Some(c.id()) == id)
    }

    /// Whether this filter has neither class nor non-wildcard attribute
    /// constraints (i.e. behaves like `f_T`).
    #[must_use]
    pub fn is_match_all(&self) -> bool {
        self.class.is_none() && self.constraints.iter().all(AttrFilter::is_wildcard)
    }

    /// The wildcard constraints of this filter, in order (Section 4.4's set
    /// `C`).
    pub fn wildcard_constraints(&self) -> impl Iterator<Item = &AttrFilter> {
        self.constraints.iter().filter(|c| c.is_wildcard())
    }

    /// Evaluates the attribute constraints against event meta-data,
    /// ignoring the class constraint.
    #[must_use]
    pub fn matches_meta(&self, meta: &EventData) -> bool {
        self.constraints
            .iter()
            .all(|c| c.predicate().matches(meta.get_id(c.id())))
    }

    /// Evaluates the full filter: the event's class must be a subtype of the
    /// filter's class (if constrained) and all attribute constraints must
    /// hold.
    #[must_use]
    pub fn matches(&self, class: ClassId, meta: &EventData, registry: &TypeRegistry) -> bool {
        self.matches_class(class, registry) && self.matches_meta(meta)
    }

    /// Evaluates only the class constraint.
    #[must_use]
    pub fn matches_class(&self, class: ClassId, registry: &TypeRegistry) -> bool {
        match self.class {
            None => true,
            Some(want) => registry.is_subtype(class, want),
        }
    }

    /// Evaluates the filter against an event envelope's routing meta-data.
    #[must_use]
    pub fn matches_envelope(&self, env: &Envelope, registry: &TypeRegistry) -> bool {
        self.matches(env.class(), env.meta(), registry)
    }

    /// Whether this filter covers `other` (Definition 2): every event
    /// matched by `other` is matched by `self`. Sound and conservative —
    /// see the crate docs.
    #[must_use]
    pub fn covers(&self, other: &Filter, registry: &TypeRegistry) -> bool {
        filter_covers(self, other, registry)
    }

    /// A canonical form with constraints sorted by attribute name (stable,
    /// preserving the relative order of same-attribute constraints), for use
    /// as a deduplication key in filter tables.
    #[must_use]
    pub fn normalized(&self) -> Filter {
        let mut constraints = self.constraints.clone();
        constraints.sort_by(|a, b| a.name().cmp(b.name()));
        Filter {
            class: self.class,
            constraints,
        }
    }

    /// Renders the filter with the class resolved to its name.
    #[must_use]
    pub fn display_with(&self, registry: &TypeRegistry) -> String {
        let mut out = String::new();
        if let Some(id) = self.class {
            let name = registry
                .class(id)
                .map_or_else(|| id.to_string(), |c| c.name().to_owned());
            out.push_str(&format!("(class, {name:?}, =)"));
        }
        for c in &self.constraints {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&c.to_string());
        }
        if out.is_empty() {
            out.push_str("(true)");
        }
        out
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        if let Some(id) = self.class {
            write!(f, "(class, {}, =)", id.0)?;
            first = false;
        }
        for c in &self.constraints {
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        if first {
            f.write_str("(true)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use layercake_event::event_data;

    #[test]
    fn example_1_matching() {
        let e1 = event_data! { "symbol" => "Foo", "price" => 10.0, "volume" => 32_300 };
        let e2 = event_data! { "symbol" => "Bar", "price" => 15.0, "volume" => 25_600 };
        let f = Filter::any().eq("symbol", "Foo").gt("price", 5.0);
        assert!(f.matches_meta(&e1));
        assert!(!f.matches_meta(&e2));
    }

    #[test]
    fn class_constraint_with_subtyping() {
        let mut r = TypeRegistry::new();
        let base = r.register("Quote", None, vec![]).unwrap();
        let stock = r.register("Stock", Some("Quote"), vec![]).unwrap();
        let f = Filter::for_class(base);
        let meta = EventData::new();
        assert!(f.matches(stock, &meta, &r));
        assert!(f.matches(base, &meta, &r));
        let g = Filter::for_class(stock);
        assert!(!g.matches(base, &meta, &r));
    }

    #[test]
    fn match_all_detection() {
        assert!(Filter::any().is_match_all());
        assert!(Filter::any().wildcard("a").is_match_all());
        assert!(!Filter::any().eq("a", 1).is_match_all());
        assert!(!Filter::for_class(ClassId(0)).is_match_all());
    }

    #[test]
    fn missing_attribute_fails_non_wildcards() {
        let meta = event_data! { "symbol" => "Foo" };
        assert!(!Filter::any().eq("price", 10.0).matches_meta(&meta));
        assert!(!Filter::any().exists("price").matches_meta(&meta));
        assert!(Filter::any().wildcard("price").matches_meta(&meta));
    }

    #[test]
    fn conjunction_requires_all() {
        let meta = event_data! { "symbol" => "Foo", "price" => 10.0 };
        let f = Filter::any().eq("symbol", "Foo").lt("price", 5.0);
        assert!(!f.matches_meta(&meta));
        let g = Filter::any().eq("symbol", "Foo").lt("price", 15.0);
        assert!(g.matches_meta(&meta));
    }

    #[test]
    fn multiple_constraints_on_same_attribute() {
        let meta = event_data! { "price" => 7.0 };
        let band = Filter::any().ge("price", 5.0).le("price", 10.0);
        assert!(band.matches_meta(&meta));
        let empty = Filter::any().ge("price", 10.0).le("price", 5.0);
        assert!(!empty.matches_meta(&meta));
    }

    #[test]
    fn display_matches_paper_notation() {
        let f = Filter::any().eq("symbol", "Foo").gt("price", 5.0);
        assert_eq!(f.to_string(), "(symbol, \"Foo\", =) (price, 5, >)");
        assert_eq!(Filter::any().to_string(), "(true)");
        let g = Filter::for_class(ClassId(3)).lt("price", 10.0);
        assert_eq!(g.to_string(), "(class, 3, =) (price, 10, <)");
    }

    #[test]
    fn display_with_registry_resolves_class_names() {
        let mut r = TypeRegistry::new();
        let stock = r.register("Stock", None, vec![]).unwrap();
        let f = Filter::for_class(stock).eq("symbol", "Foo");
        assert_eq!(
            f.display_with(&r),
            "(class, \"Stock\", =) (symbol, \"Foo\", =)"
        );
    }

    #[test]
    fn normalized_is_order_insensitive() {
        let a = Filter::any().eq("b", 1).eq("a", 2);
        let b = Filter::any().eq("a", 2).eq("b", 1);
        assert_ne!(a, b);
        assert_eq!(a.normalized(), b.normalized());
    }

    #[test]
    fn serde_round_trip() {
        let f = Filter::for_class(ClassId(1))
            .eq("symbol", "Foo")
            .lt("price", 10.0);
        let s = serde_json::to_string(&f).unwrap();
        let back: Filter = serde_json::from_str(&s).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn wildcard_constraints_iterator() {
        let f = Filter::any().eq("a", 1).wildcard("b").wildcard("c");
        let names: Vec<_> = f
            .wildcard_constraints()
            .map(|c| c.name().to_owned())
            .collect();
        assert_eq!(names, ["b", "c"]);
    }
}
