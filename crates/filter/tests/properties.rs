//! Property-based tests for the filter language invariants.
//!
//! These check the paper's formal propositions on randomly generated
//! filters and events:
//!
//! * soundness of the covering relation (Definition 2),
//! * Proposition 1 (weakened filters cover originals),
//! * covering merges are upper bounds,
//! * standardization preserves semantics (Section 4.4),
//! * the naive and counting match strategies agree.

use layercake_event::{
    AttrValue, AttributeDecl, ClassId, EventData, StageMap, TypeRegistry, ValueKind,
};
use layercake_filter::{
    merge_cover, standardize, weaken_to_stage, DestId, Filter, FilterTable, IndexKind, Predicate,
};
use proptest::prelude::*;

const ATTRS: &[&str] = &["year", "conference", "author", "title"];
const STRINGS: &[&str] = &["", "a", "ab", "abc", "b", "icdcs", "icdcs02", "zz"];

fn arb_value() -> impl Strategy<Value = AttrValue> {
    arb_value_inner()
}

fn arb_value_inner() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        (-5i64..=5).prop_map(AttrValue::Int),
        (-4i32..=4).prop_map(|i| AttrValue::Float(f64::from(i) * 0.5)),
        proptest::sample::select(STRINGS).prop_map(AttrValue::from),
        any::<bool>().prop_map(AttrValue::Bool),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        arb_value().prop_map(Predicate::Eq),
        arb_value().prop_map(Predicate::Ne),
        arb_value().prop_map(Predicate::Lt),
        arb_value().prop_map(Predicate::Le),
        arb_value().prop_map(Predicate::Gt),
        arb_value().prop_map(Predicate::Ge),
        proptest::collection::vec(arb_value_inner(), 0..3).prop_map(Predicate::In),
        proptest::sample::select(STRINGS).prop_map(|s| Predicate::Prefix(s.to_owned())),
        proptest::sample::select(STRINGS).prop_map(|s| Predicate::Contains(s.to_owned())),
        Just(Predicate::Exists),
        Just(Predicate::Any),
    ]
}

/// A filter over the fixed attribute pool with 0..=4 constraints.
fn arb_filter() -> impl Strategy<Value = Filter> {
    proptest::collection::vec((proptest::sample::select(ATTRS), arb_predicate()), 0..4).prop_map(
        |constraints| {
            let mut f = Filter::any();
            for (name, pred) in constraints {
                f = f.with(layercake_filter::AttrFilter::new(name, pred));
            }
            f
        },
    )
}

/// An event assigning values to a random subset of the attribute pool.
fn arb_event() -> impl Strategy<Value = EventData> {
    proptest::collection::vec((proptest::sample::select(ATTRS), arb_value()), 0..5).prop_map(
        |pairs| {
            let mut e = EventData::new();
            for (n, v) in pairs {
                e.insert(n, v);
            }
            e
        },
    )
}

fn empty_registry_and_class() -> (TypeRegistry, ClassId) {
    let mut r = TypeRegistry::new();
    let id = r.register("Biblio", None, biblio_attrs()).unwrap();
    (r, id)
}

/// A registry with a base class and a subtype, for exercising type-based
/// filtering in the index-agreement properties.
fn registry_with_subtype() -> (TypeRegistry, ClassId, ClassId) {
    let mut r = TypeRegistry::new();
    let base = r.register("Biblio", None, biblio_attrs()).unwrap();
    let sub = r.register("Journal", Some("Biblio"), vec![]).unwrap();
    (r, base, sub)
}

fn biblio_attrs() -> Vec<AttributeDecl> {
    vec![
        AttributeDecl::new("year", ValueKind::Int),
        AttributeDecl::new("conference", ValueKind::Str),
        AttributeDecl::new("author", ValueKind::Str),
        AttributeDecl::new("title", ValueKind::Str),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Predicate covering soundness: weak ⊒ strong implies the matched sets
    /// nest, for every sampled value and for absence.
    #[test]
    fn predicate_covering_is_sound(weak in arb_predicate(), strong in arb_predicate(), v in arb_value()) {
        if weak.covers(&strong) {
            prop_assert!(!strong.matches(Some(&v)) || weak.matches(Some(&v)),
                "weak {weak:?} claims to cover {strong:?} but fails on {v:?}");
            prop_assert!(!strong.matches(None) || weak.matches(None));
        }
    }

    /// Predicate covering is reflexive.
    #[test]
    fn predicate_covering_is_reflexive(p in arb_predicate()) {
        prop_assert!(p.covers(&p));
    }

    /// Predicate covering is transitive on the sampled space.
    #[test]
    fn predicate_covering_is_transitive(a in arb_predicate(), b in arb_predicate(), c in arb_predicate()) {
        if a.covers(&b) && b.covers(&c) {
            prop_assert!(a.covers(&c), "{a:?} ⊒ {b:?} ⊒ {c:?} but not {a:?} ⊒ {c:?}");
        }
    }

    /// Filter covering soundness over whole events.
    #[test]
    fn filter_covering_is_sound(weak in arb_filter(), strong in arb_filter(), e in arb_event()) {
        let (r, class) = empty_registry_and_class();
        if weak.covers(&strong, &r) && strong.matches(class, &e, &r) {
            prop_assert!(weak.matches(class, &e, &r),
                "weak {weak} covers {strong} but fails on {e}");
        }
    }

    /// Filter covering is reflexive and transitive (preorder).
    #[test]
    fn filter_covering_is_preorder(a in arb_filter(), b in arb_filter(), c in arb_filter()) {
        let (r, _) = empty_registry_and_class();
        prop_assert!(a.covers(&a, &r));
        if a.covers(&b, &r) && b.covers(&c, &r) {
            prop_assert!(a.covers(&c, &r));
        }
    }

    /// `Filter::any` (f_T) covers everything.
    #[test]
    fn match_all_covers_everything(f in arb_filter()) {
        let (r, _) = empty_registry_and_class();
        prop_assert!(Filter::any().covers(&f, &r));
    }

    /// merge_cover is an upper bound of its inputs, both by the covering
    /// check and behaviourally on sampled events.
    #[test]
    fn merge_cover_is_upper_bound(f1 in arb_filter(), f2 in arb_filter(), f3 in arb_filter(), e in arb_event()) {
        let (r, class) = empty_registry_and_class();
        let merged = merge_cover(&[&f1, &f2, &f3], &r);
        for f in [&f1, &f2, &f3] {
            prop_assert!(merged.covers(f, &r), "merge {merged} does not cover {f}");
            if f.matches(class, &e, &r) {
                prop_assert!(merged.matches(class, &e, &r));
            }
        }
    }

    /// Proposition 1: stage-weakened filters cover the original, checked
    /// behaviourally.
    #[test]
    fn stage_weakening_covers_original(f in arb_filter(), e in arb_event(), stage in 0usize..5) {
        let (r, class_id) = empty_registry_and_class();
        let class = r.class(class_id).unwrap();
        let g = StageMap::from_prefixes(&[4, 3, 2, 1]).unwrap();
        let f = f.with_class(Some(class_id));
        let w = weaken_to_stage(&f, class, &g, stage);
        prop_assert!(w.covers(&f, &r), "weakened {w} does not cover {f} at stage {stage}");
        if f.matches(class_id, &e, &r) {
            prop_assert!(w.matches(class_id, &e, &r));
        }
    }

    /// Standardization preserves semantics exactly (Section 4.4: wildcard
    /// attribute filters do not change the matched set).
    #[test]
    fn standardization_preserves_semantics(f in arb_filter(), e in arb_event()) {
        let (r, class_id) = empty_registry_and_class();
        let class = r.class(class_id).unwrap();
        // Restrict to schema-compatible filters.
        if let Ok(std) = standardize(&f.clone().with_class(Some(class_id)), class) {
            prop_assert_eq!(
                f.clone().with_class(Some(class_id)).matches(class_id, &e, &r),
                std.matches(class_id, &e, &r),
                "filter {} vs standardized {}", f, std
            );
        }
    }

    /// Normalization (the dedup key) never changes matching behaviour.
    #[test]
    fn normalization_preserves_semantics(f in arb_filter(), e in arb_event()) {
        let (r, class) = empty_registry_and_class();
        prop_assert_eq!(f.matches(class, &e, &r), f.normalized().matches(class, &e, &r));
    }

    /// Weakening algebra: weakening is idempotent per stage and monotone
    /// across stages (weakening further only ever removes constraints).
    #[test]
    fn weakening_is_idempotent_and_monotone(f in arb_filter(), s1 in 0usize..4, s2 in 0usize..4, e in arb_event()) {
        let (r, class_id) = empty_registry_and_class();
        let class = r.class(class_id).unwrap();
        let g = StageMap::from_prefixes(&[4, 3, 2, 1]).unwrap();
        let f = f.with_class(Some(class_id));
        // Idempotence: re-weakening at the same stage is a fixed point.
        let w1 = weaken_to_stage(&f, class, &g, s1);
        prop_assert_eq!(&weaken_to_stage(&w1, class, &g, s1), &w1);
        // Composition: weakening through s1 then s2 behaves like weakening
        // to the weaker (higher) of the two directly — on non-zero stages,
        // where weakening actually applies (stage 0 is the identity).
        if s1 > 0 && s2 > 0 {
            let via = weaken_to_stage(&w1, class, &g, s2);
            let direct = weaken_to_stage(&f, class, &g, s1.max(s2));
            prop_assert_eq!(
                via.matches(class_id, &e, &r),
                direct.matches(class_id, &e, &r),
                "via {} vs direct {}", via, direct
            );
        }
        // Monotonicity: a higher stage's filter covers a lower stage's.
        if s2 >= s1 {
            let w2 = weaken_to_stage(&f, class, &g, s2);
            prop_assert!(w2.covers(&w1, &r), "stage {} ⊒ stage {}", s2, s1);
        }
    }

    /// The naive scan, the counting index, and the compiled index always
    /// return the same destinations — over random filter tables and events,
    /// including subtyped class constraints, wildcards, and repeated
    /// range constraints on one attribute (all generated by `arb_filter`'s
    /// attribute-pool sampling with replacement).
    #[test]
    fn index_strategies_agree(
        filters in proptest::collection::vec((arb_filter(), 0u8..3), 1..12),
        events in proptest::collection::vec((arb_event(), any::<bool>()), 1..6),
    ) {
        let (r, base, sub) = registry_with_subtype();
        let mut tables = [
            FilterTable::new(IndexKind::Naive),
            FilterTable::new(IndexKind::Counting),
            FilterTable::new(IndexKind::Compiled),
        ];
        for (i, (f, class_pick)) in filters.iter().enumerate() {
            let class = match class_pick {
                0 => None,
                1 => Some(base),
                _ => Some(sub),
            };
            let f = f.clone().with_class(class);
            for t in &mut tables {
                t.insert(f.clone(), DestId(i as u64));
            }
        }
        for (e, publish_sub) in &events {
            let class = if *publish_sub { sub } else { base };
            let mut outs: Vec<Vec<DestId>> = Vec::new();
            let mut anys = Vec::new();
            for t in &mut tables {
                let mut out = Vec::new();
                t.matches(class, e, &r, &mut out);
                out.sort();
                anys.push(t.matches_any(class, e, &r));
                outs.push(out);
            }
            prop_assert_eq!(&outs[0], &outs[1], "naive vs counting disagree on {}", e);
            prop_assert_eq!(&outs[0], &outs[2], "naive vs compiled disagree on {}", e);
            for (out, any) in outs.iter().zip(&anys) {
                prop_assert_eq!(!out.is_empty(), *any, "matches_any disagrees on {}", e);
            }
        }
    }

    /// Index agreement survives interleaved removals.
    #[test]
    fn index_strategies_agree_after_removal(
        filters in proptest::collection::vec(arb_filter(), 2..10),
        remove_mask in proptest::collection::vec(any::<bool>(), 2..10),
        e in arb_event(),
    ) {
        let (r, class) = empty_registry_and_class();
        let mut naive = FilterTable::new(IndexKind::Naive);
        let mut counting = FilterTable::new(IndexKind::Counting);
        let mut compiled = FilterTable::new(IndexKind::Compiled);
        for (i, f) in filters.iter().enumerate() {
            let dest = DestId(i as u64);
            naive.insert(f.clone(), dest);
            counting.insert(f.clone(), dest);
            compiled.insert(f.clone(), dest);
        }
        for (i, (f, rm)) in filters.iter().zip(remove_mask.iter()).enumerate() {
            if *rm {
                let dest = DestId(i as u64);
                let removed = naive.remove(f, dest);
                assert_eq!(removed, counting.remove(f, dest));
                assert_eq!(removed, compiled.remove(f, dest));
            }
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut c = Vec::new();
        naive.matches(class, &e, &r, &mut a);
        counting.matches(class, &e, &r, &mut b);
        compiled.matches(class, &e, &r, &mut c);
        a.sort();
        b.sort();
        c.sort();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }

    /// find_cover returns a filter that indeed covers the probe.
    #[test]
    fn find_cover_returns_actual_cover(
        filters in proptest::collection::vec(arb_filter(), 1..10),
        probe in arb_filter(),
    ) {
        let (r, _) = empty_registry_and_class();
        let mut t = FilterTable::new(IndexKind::Naive);
        for (i, f) in filters.iter().enumerate() {
            t.insert(f.clone(), DestId(i as u64));
        }
        if let Some((cover, dests)) = t.find_cover(&probe, &r) {
            prop_assert!(cover.covers(&probe, &r));
            prop_assert!(!dests.is_empty());
        } else {
            // No stored filter claims to cover the probe.
            for f in &filters {
                prop_assert!(!f.covers(&probe, &r));
            }
        }
    }
}
