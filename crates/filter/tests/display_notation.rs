//! The rendered notation matches the paper's, so debug output and the
//! `dump_tables` view read like the paper's examples.

use layercake_event::{AttributeDecl, TypeRegistry, ValueKind};
use layercake_filter::{standardize, Filter};

fn stock_registry() -> (TypeRegistry, layercake_event::ClassId) {
    let mut r = TypeRegistry::new();
    let id = r
        .register(
            "Stock",
            None,
            vec![
                AttributeDecl::new("symbol", ValueKind::Str),
                AttributeDecl::new("price", ValueKind::Float),
            ],
        )
        .unwrap();
    (r, id)
}

#[test]
fn example_1_filter_notation() {
    let f = Filter::any().eq("symbol", "Foo").gt("price", 5.0);
    assert_eq!(f.to_string(), "(symbol, \"Foo\", =) (price, 5, >)");
}

#[test]
fn example_5_stage_filters_notation() {
    let (r, stock) = stock_registry();
    let f1 = Filter::for_class(stock)
        .eq("symbol", "DEF")
        .lt("price", 10.0);
    assert_eq!(
        f1.display_with(&r),
        "(class, \"Stock\", =) (symbol, \"DEF\", =) (price, 10, <)"
    );
    let i1 = Filter::for_class(stock);
    assert_eq!(i1.display_with(&r), "(class, \"Stock\", =)");
}

#[test]
fn standard_format_shows_wildcards() {
    let (r, stock) = stock_registry();
    let class = r.class(stock).unwrap();
    // fx = (class, "Stock", =)(symbol, "DEF", =) → price becomes ALL.
    let fx = Filter::for_class(stock).eq("symbol", "DEF");
    let std = standardize(&fx, class).unwrap();
    assert_eq!(
        std.display_with(&r),
        "(class, \"Stock\", =) (symbol, \"DEF\", =) (price, \"ALL\", =)"
    );
}

#[test]
fn operator_symbols_cover_the_language() {
    let f = Filter::any()
        .ne("a", 1)
        .le("b", 2)
        .ge("c", 3)
        .exists("d")
        .prefix("e", "p")
        .contains("f", "q")
        .in_set("g", ["x", "y"]);
    let s = f.to_string();
    for needle in [
        "(a, 1, !=)",
        "(b, 2, <=)",
        "(c, 3, >=)",
        "(d, ∃)",
        "(e, \"p\", prefix)",
        "(f, \"q\", contains)",
        "(g, {\"x\", \"y\"}, in)",
    ] {
        assert!(s.contains(needle), "missing {needle} in {s}");
    }
}

#[test]
fn unknown_class_ids_render_gracefully() {
    let r = TypeRegistry::new();
    let f = Filter::for_class(layercake_event::ClassId(42)).eq("k", 1);
    assert_eq!(f.display_with(&r), "(class, \"class#42\", =) (k, 1, =)");
    assert_eq!(f.to_string(), "(class, 42, =) (k, 1, =)");
}

#[test]
fn match_all_renders_as_true() {
    assert_eq!(Filter::any().to_string(), "(true)");
    assert_eq!(Filter::any().display_with(&TypeRegistry::new()), "(true)");
}
