//! Typed subscription handles.

use std::marker::PhantomData;

use layercake_event::TypedEvent;
use layercake_overlay::SubscriberHandle;

/// A typed subscription to events of type `E` (and its subtypes).
///
/// The handle is `Copy`; pass it back to
/// [`EventSystem::poll`](crate::EventSystem::poll) to drain the typed
/// events accepted since the last poll, or exchange it for a channel with
/// [`EventSystem::channel`](crate::EventSystem::channel).
pub struct Subscription<E: TypedEvent> {
    pub(crate) handle: SubscriberHandle,
    pub(crate) _marker: PhantomData<fn() -> E>,
}

impl<E: TypedEvent> Subscription<E> {
    pub(crate) fn new(handle: SubscriberHandle) -> Self {
        Self {
            handle,
            _marker: PhantomData,
        }
    }

    /// The underlying overlay subscriber handle.
    #[must_use]
    pub fn handle(&self) -> SubscriberHandle {
        self.handle
    }
}

impl<E: TypedEvent> Clone for Subscription<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E: TypedEvent> Copy for Subscription<E> {}

impl<E: TypedEvent> std::fmt::Debug for Subscription<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("event", &E::CLASS_NAME)
            .field("handle", &self.handle)
            .finish()
    }
}
