//! Error type of the typed event-system facade.

use std::error::Error;
use std::fmt;

use layercake_event::EventError;
use layercake_filter::FilterError;

/// Errors produced by the typed event-system API.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// An event-model error (registration, encoding, decoding).
    Event(EventError),
    /// A filter-language error (validation, standardization).
    Filter(FilterError),
    /// The event type was not registered with the builder.
    NotRegistered(String),
    /// The event class was never advertised, so brokers have no stage map
    /// for it; call [`crate::EventSystem::advertise`] first.
    NotAdvertised(String),
    /// A subscription filter's class is not the subscribed event type or a
    /// subtype of it, so delivered payloads could not decode to the
    /// requested type.
    ClassMismatch {
        /// The type the subscriber asked for.
        subscribed: String,
        /// The class named by the filter.
        filter_class: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Event(e) => write!(f, "{e}"),
            CoreError::Filter(e) => write!(f, "{e}"),
            CoreError::NotRegistered(name) => {
                write!(f, "event type {name:?} was not registered with the builder")
            }
            CoreError::NotAdvertised(name) => {
                write!(f, "event class {name:?} has not been advertised")
            }
            CoreError::ClassMismatch {
                subscribed,
                filter_class,
            } => write!(
                f,
                "filter class {filter_class:?} is not a subtype of subscribed type {subscribed:?}"
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Event(e) => Some(e),
            CoreError::Filter(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EventError> for CoreError {
    fn from(e: EventError) -> Self {
        CoreError::Event(e)
    }
}

impl From<FilterError> for CoreError {
    fn from(e: FilterError) -> Self {
        CoreError::Filter(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::NotAdvertised("Stock".to_owned());
        assert_eq!(
            e.to_string(),
            "event class \"Stock\" has not been advertised"
        );
        assert!(e.source().is_none());
        let e = CoreError::from(EventError::UnknownClassName("X".to_owned()));
        assert!(e.source().is_some());
        let e = CoreError::ClassMismatch {
            subscribed: "Stock".into(),
            filter_class: "Auction".into(),
        };
        assert!(e.to_string().contains("subtype"));
    }

    #[test]
    fn send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<CoreError>();
    }
}
