//! # layercake-core — type-safe publish/subscribe with multi-stage filtering
//!
//! This crate is the paper's headline contribution as a library: an event
//! system that simultaneously provides
//!
//! * **event safety** — events are instances of application-defined Rust
//!   types (declared with [`typed_event!`]); their representation never
//!   leaves the publisher and subscriber runtimes;
//! * **subscription expressiveness** — subscriptions combine a declarative
//!   filter over any schema attribute with an arbitrary *stateful* typed
//!   predicate evaluated at the subscriber (the paper's `BuyFilter`);
//! * **filtering scalability** — between the two endpoints, a hierarchy of
//!   brokers pre-filters events using automatically *weakened* filters over
//!   extracted meta-data, so no intermediate node ever deserializes an
//!   event object or evaluates application code.
//!
//! # Quickstart
//!
//! ```
//! use layercake_core::{EventSystem, typed_event};
//!
//! typed_event! {
//!     /// The paper's Example 4 event type.
//!     pub struct Stock: "Stock" {
//!         symbol: String,
//!         price: f64,
//!     }
//! }
//!
//! # fn main() -> Result<(), layercake_core::CoreError> {
//! let mut system = EventSystem::builder()
//!     .levels(&[4, 2, 1])          // 4 edge brokers, 2 mid, 1 root
//!     .with_event::<Stock>()?
//!     .build();
//! system.advertise::<Stock>(None)?; // default stage map
//!
//! // Declarative filter + stateful residual predicate, both typed.
//! let cheap_foo = system
//!     .subscribe::<Stock>(|f| f.eq("symbol", "Foo").lt("price", 10.0))?;
//!
//! system.publish(&Stock::new("Foo".into(), 9.0))?;
//! system.publish(&Stock::new("Foo".into(), 12.0))?;
//! system.publish(&Stock::new("Bar".into(), 5.0))?;
//! system.settle();
//!
//! let got: Vec<Stock> = system.poll(&cheap_foo)?;
//! assert_eq!(got.len(), 1);
//! assert_eq!(got[0].symbol(), "Foo");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod subscription;
mod system;

pub use error::CoreError;
pub use subscription::Subscription;
pub use system::{EventSystem, EventSystemBuilder};

// One-stop re-exports of the layered API.
pub use layercake_event::{
    typed_event, Advertisement, AttrValue, AttributeDecl, ClassId, Envelope, EventData, EventSeq,
    StageMap, TypeRegistry, TypedEvent, ValueKind,
};
pub use layercake_filter::{Filter, FilterId, IndexKind, Predicate};
pub use layercake_metrics::RunMetrics;
pub use layercake_overlay::{OverlayConfig, PlacementPolicy};
pub use layercake_sim::SimDuration;
