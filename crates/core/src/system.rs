//! The typed event-system facade.

use std::collections::HashSet;
use std::marker::PhantomData;
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;

use layercake_event::{
    Advertisement, ClassId, Envelope, EventSeq, StageMap, TypeRegistry, TypedEvent,
};
use layercake_filter::{Filter, IndexKind};
use layercake_metrics::RunMetrics;
use layercake_overlay::{OverlayConfig, OverlaySim, PlacementPolicy, SubscriberHandle};
use layercake_sim::SimDuration;

use crate::error::CoreError;
use crate::subscription::Subscription;

/// Builder for an [`EventSystem`].
///
/// All event types must be registered here, before the broker hierarchy is
/// built (brokers share an immutable view of the type registry, mirroring
/// the paper's assumption that type information is globally available for
/// reflection).
#[derive(Debug)]
pub struct EventSystemBuilder {
    overlay: OverlayConfig,
    registry: TypeRegistry,
}

impl Default for EventSystemBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl EventSystemBuilder {
    /// Starts a builder with the paper's default topology (100/10/1).
    #[must_use]
    pub fn new() -> Self {
        Self {
            overlay: OverlayConfig::default(),
            registry: TypeRegistry::new(),
        }
    }

    /// Sets the broker counts per stage, from stage 1 up to the root
    /// (which must be 1). See [`OverlayConfig::levels`].
    #[must_use]
    pub fn levels(mut self, levels: &[usize]) -> Self {
        self.overlay.levels = levels.to_vec();
        self
    }

    /// Registers an event type (and requires its parent type, if any, to be
    /// registered first).
    ///
    /// # Errors
    ///
    /// Propagates registration conflicts from the type registry.
    pub fn with_event<E: TypedEvent>(mut self) -> Result<Self, CoreError> {
        self.registry.register_event::<E>()?;
        Ok(self)
    }

    /// Sets the subscription placement policy.
    #[must_use]
    pub fn placement(mut self, placement: PlacementPolicy) -> Self {
        self.overlay.placement = placement;
        self
    }

    /// Sets the broker filter-table matching strategy.
    #[must_use]
    pub fn index(mut self, index: IndexKind) -> Self {
        self.overlay.index = index;
        self
    }

    /// Enables the soft-state lease machinery with the given TTL.
    #[must_use]
    pub fn leases(mut self, ttl: SimDuration) -> Self {
        self.overlay.leases_enabled = true;
        self.overlay.ttl = ttl;
        self
    }

    /// Enables or disables stage-aware wildcard placement (Section 4.4).
    #[must_use]
    pub fn wildcard_stage_placement(mut self, enabled: bool) -> Self {
        self.overlay.wildcard_stage_placement = enabled;
        self
    }

    /// Seeds the brokers' random placement decisions.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.overlay.seed = seed;
        self
    }

    /// Builds the broker hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the topology is invalid (see
    /// [`OverlayConfig::validate`]).
    #[must_use]
    pub fn build(self) -> EventSystem {
        let registry = Arc::new(self.registry);
        EventSystem {
            sim: OverlaySim::new(self.overlay, registry),
            advertised: HashSet::new(),
            next_seq: 0,
            dispatchers: Vec::new(),
        }
    }
}

type Dispatcher = Box<dyn FnMut(Envelope) + Send>;

/// A type-safe publish/subscribe system running over a simulated
/// multi-stage filtering overlay.
///
/// See the [crate docs](crate) for a quickstart. The system is
/// deterministic: publications and subscriptions become effective when
/// [`EventSystem::settle`] drains the in-flight protocol traffic.
pub struct EventSystem {
    sim: OverlaySim,
    advertised: HashSet<ClassId>,
    next_seq: u64,
    dispatchers: Vec<(SubscriberHandle, Dispatcher)>,
}

impl std::fmt::Debug for EventSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSystem")
            .field("subscribers", &self.sim.subscriber_count())
            .field("published", &self.sim.published())
            .field("advertised", &self.advertised)
            .finish_non_exhaustive()
    }
}

impl EventSystem {
    /// Starts building an event system.
    #[must_use]
    pub fn builder() -> EventSystemBuilder {
        EventSystemBuilder::new()
    }

    /// The shared type registry.
    #[must_use]
    pub fn registry(&self) -> &Arc<TypeRegistry> {
        self.sim.registry()
    }

    /// The class id of a registered event type.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotRegistered`] if the type was not registered
    /// with the builder.
    pub fn class_of<E: TypedEvent>(&self) -> Result<ClassId, CoreError> {
        self.registry()
            .id_of(E::CLASS_NAME)
            .ok_or_else(|| CoreError::NotRegistered(E::CLASS_NAME.to_owned()))
    }

    /// Advertises an event class, flooding its attribute–stage association
    /// to every broker (Section 4.1). `stage_map: None` derives a stepped
    /// default: each stage above 0 drops one more least-general attribute.
    ///
    /// Publishing requires a prior advertisement; subscribing does not, but
    /// subscriptions placed before the advertisement are stored unweakened.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NotRegistered`] for unregistered types.
    /// * Stage-map arity errors via [`CoreError::Event`].
    pub fn advertise<E: TypedEvent>(
        &mut self,
        stage_map: Option<StageMap>,
    ) -> Result<ClassId, CoreError> {
        let class = self.class_of::<E>()?;
        let arity = self
            .registry()
            .class(class)
            .expect("registered class exists")
            .arity();
        let map = match stage_map {
            Some(m) => {
                m.check_arity(arity)?;
                m
            }
            None => StageMap::stepped(arity, self.sim.registry().len().max(1))
                .and_then(|_| StageMap::stepped(arity, self.stages() + 1))?,
        };
        self.sim.advertise(Advertisement::new(class, map));
        self.sim.settle();
        self.advertised.insert(class);
        Ok(class)
    }

    /// Number of broker stages in the hierarchy.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.sim
            .brokers()
            .iter()
            .filter_map(|&b| self.sim.broker(b))
            .map(layercake_overlay::Broker::stage)
            .max()
            .unwrap_or(1)
    }

    /// Subscribes to events of type `E` (and subtypes) with a declarative
    /// filter. The closure receives a filter already scoped to `E`'s class
    /// and adds attribute constraints:
    ///
    /// ```ignore
    /// system.subscribe::<Stock>(|f| f.eq("symbol", "Foo").lt("price", 10.0))?;
    /// ```
    ///
    /// # Errors
    ///
    /// * [`CoreError::NotRegistered`] for unregistered types.
    /// * [`CoreError::ClassMismatch`] if the closure rescoped the filter to
    ///   a class that is not `E` or a subtype.
    /// * Filter validation errors via [`CoreError::Filter`].
    pub fn subscribe<E: TypedEvent>(
        &mut self,
        build: impl FnOnce(Filter) -> Filter,
    ) -> Result<Subscription<E>, CoreError> {
        self.subscribe_inner::<E>(build, None)
    }

    /// Subscribes with a declarative filter *plus* a stateful typed residual
    /// predicate, evaluated only at the subscriber runtime — the paper's
    /// expressive filters (Section 3.4's `BuyFilter`):
    ///
    /// ```ignore
    /// let mut buy = BuyFilter::new("Foo", 10.0, 0.95);
    /// system.subscribe_with::<Stock, _>(
    ///     |f| f.eq("symbol", "Foo").lt("price", 10.0),
    ///     move |quote| buy.matches(quote),
    /// )?;
    /// ```
    ///
    /// Events whose payload fails to decode as `E` are rejected by the
    /// residual stage.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EventSystem::subscribe`].
    pub fn subscribe_with<E: TypedEvent, R>(
        &mut self,
        build: impl FnOnce(Filter) -> Filter,
        mut residual: R,
    ) -> Result<Subscription<E>, CoreError>
    where
        R: FnMut(&E) -> bool + Send + 'static,
    {
        let wrapped = move |env: &Envelope| -> bool {
            env.decode::<E>().map(|e| residual(&e)).unwrap_or(false)
        };
        self.subscribe_inner::<E>(build, Some(Box::new(wrapped)))
    }

    /// Subscribes with a *disjunction* of declarative filters: an event is
    /// delivered when any branch matches (the "conjunctions/disjunctions"
    /// expressiveness level of the paper's Figure 2). Branches without a
    /// class constraint are scoped to `E`'s class; each branch is routed
    /// independently, and events are delivered exactly once.
    ///
    /// ```ignore
    /// system.subscribe_any::<Stock>(vec![
    ///     Filter::any().eq("symbol", "Foo"),
    ///     Filter::any().lt("price", 1.0),
    /// ])?;
    /// ```
    ///
    /// # Errors
    ///
    /// Same conditions as [`EventSystem::subscribe`], checked per branch;
    /// an empty branch list is a filter error.
    pub fn subscribe_any<E: TypedEvent>(
        &mut self,
        branches: Vec<Filter>,
    ) -> Result<Subscription<E>, CoreError> {
        self.subscribe_any_with::<E>(branches, None)
    }

    /// [`EventSystem::subscribe_any`] with a stateful typed residual
    /// predicate applied after the disjunction.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EventSystem::subscribe_any`].
    pub fn subscribe_any_with<E: TypedEvent>(
        &mut self,
        branches: Vec<Filter>,
        residual: Option<Box<dyn layercake_overlay::ResidualFilter>>,
    ) -> Result<Subscription<E>, CoreError> {
        let class = self.class_of::<E>()?;
        let mut scoped = Vec::with_capacity(branches.len());
        for branch in branches {
            let branch = if branch.class().is_none() {
                branch.with_class(Some(class))
            } else {
                branch
            };
            match branch.class() {
                Some(c) if self.registry().is_subtype(c, class) => {}
                other => {
                    let filter_class = other
                        .and_then(|c| self.registry().class(c).map(|cl| cl.name().to_owned()))
                        .unwrap_or_else(|| "<none>".to_owned());
                    return Err(CoreError::ClassMismatch {
                        subscribed: E::CLASS_NAME.to_owned(),
                        filter_class,
                    });
                }
            }
            scoped.push(branch);
        }
        let handle = self.sim.add_subscriber_any(scoped, residual)?;
        self.sim.set_store_envelopes(handle, true);
        self.sim.settle();
        Ok(Subscription::new(handle))
    }

    fn subscribe_inner<E: TypedEvent>(
        &mut self,
        build: impl FnOnce(Filter) -> Filter,
        residual: Option<Box<dyn layercake_overlay::ResidualFilter>>,
    ) -> Result<Subscription<E>, CoreError> {
        let class = self.class_of::<E>()?;
        let filter = build(Filter::for_class(class));
        match filter.class() {
            Some(c) if self.registry().is_subtype(c, class) => {}
            other => {
                let filter_class = other
                    .and_then(|c| self.registry().class(c).map(|cl| cl.name().to_owned()))
                    .unwrap_or_else(|| "<none>".to_owned());
                return Err(CoreError::ClassMismatch {
                    subscribed: E::CLASS_NAME.to_owned(),
                    filter_class,
                });
            }
        }
        let handle = self.sim.add_subscriber_with(filter, residual)?;
        self.sim.set_store_envelopes(handle, true);
        // Complete the placement walk before returning so that the
        // subscription is immediately effective for subsequent publishes.
        self.sim.settle();
        Ok(Subscription::new(handle))
    }

    /// Publishes a typed event: its meta-data is extracted once at this
    /// edge, the object is serialized for opaque transport, and the
    /// envelope enters the hierarchy at the root.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NotRegistered`] / [`CoreError::NotAdvertised`] if the
    ///   type is unknown or was never advertised.
    /// * Encoding failures via [`CoreError::Event`].
    pub fn publish<E: TypedEvent>(&mut self, event: &E) -> Result<EventSeq, CoreError> {
        let class = self.class_of::<E>()?;
        if !self.advertised.contains(&class) {
            return Err(CoreError::NotAdvertised(E::CLASS_NAME.to_owned()));
        }
        let seq = EventSeq(self.next_seq);
        self.next_seq += 1;
        let env = Envelope::encode(class, seq, event)?;
        self.sim.publish(env);
        Ok(seq)
    }

    /// Drains in-flight protocol traffic: placements complete, published
    /// events are filtered down and delivered, channel subscriptions
    /// receive their events.
    pub fn settle(&mut self) {
        self.sim.settle();
        for (handle, dispatch) in &mut self.dispatchers {
            for env in self.sim.take_inbox(*handle) {
                dispatch(env);
            }
        }
    }

    /// Advances virtual time by `d` (lease renewals and expiries included).
    pub fn run_for(&mut self, d: SimDuration) {
        self.sim.run_for(d);
    }

    /// Drains the typed events accepted by a subscription since the last
    /// poll.
    ///
    /// # Errors
    ///
    /// Returns a decode error if a delivered payload is not a valid `E`
    /// encoding (cannot happen for events published through
    /// [`EventSystem::publish`] with a correctly-registered hierarchy).
    pub fn poll<E: TypedEvent>(&mut self, sub: &Subscription<E>) -> Result<Vec<E>, CoreError> {
        self.sim
            .take_inbox(sub.handle)
            .into_iter()
            .map(|env| env.decode::<E>().map_err(CoreError::from))
            .collect()
    }

    /// Exchanges a subscription for a typed channel: every event accepted
    /// after this call is decoded and pushed into the returned receiver on
    /// [`EventSystem::settle`]. Don't combine with [`EventSystem::poll`]
    /// on the same subscription — whichever drains first wins.
    pub fn channel<E: TypedEvent>(&mut self, sub: &Subscription<E>) -> Receiver<E> {
        let (tx, rx) = channel();
        let dispatch = move |env: Envelope| {
            if let Ok(event) = env.decode::<E>() {
                let _ = tx.send(event);
            }
        };
        self.dispatchers.push((sub.handle, Box::new(dispatch)));
        let _marker: PhantomData<E> = PhantomData;
        rx
    }

    /// Soft-state unsubscription: stops lease renewal for the subscription
    /// (effective once 3 × TTL pass; requires leases to be enabled).
    pub fn unsubscribe<E: TypedEvent>(&mut self, sub: &Subscription<E>) {
        self.sim.unsubscribe(sub.handle);
    }

    /// Explicit unsubscription (Section 4.3): removes the subscription from
    /// its hosting node immediately and withdraws no-longer-needed weakened
    /// filters up the hierarchy. Takes effect at the next
    /// [`EventSystem::settle`].
    pub fn unsubscribe_now<E: TypedEvent>(&mut self, sub: &Subscription<E>) -> bool {
        self.sim.unsubscribe_now(sub.handle)
    }

    /// Takes a durable subscription offline: its hosting broker buffers
    /// matching events until [`EventSystem::reconnect`] (Section 2.1's
    /// "durable subscriptions" for temporarily disconnected subscribers).
    pub fn disconnect<E: TypedEvent>(&mut self, sub: &Subscription<E>) -> bool {
        self.sim.disconnect(sub.handle)
    }

    /// Brings a durable subscription back online; buffered events are
    /// delivered in publication order at the next settle.
    pub fn reconnect<E: TypedEvent>(&mut self, sub: &Subscription<E>) -> bool {
        self.sim.reconnect(sub.handle)
    }

    /// Per-node filtering metrics of everything run so far.
    #[must_use]
    pub fn metrics(&self) -> RunMetrics {
        self.sim.metrics()
    }

    /// Total events published.
    #[must_use]
    pub fn published(&self) -> u64 {
        self.sim.published()
    }

    /// Direct access to the underlying overlay simulation (for evaluation
    /// harnesses that need broker-level introspection).
    #[must_use]
    pub fn overlay(&self) -> &OverlaySim {
        &self.sim
    }

    /// Mutable access to the underlying overlay simulation.
    pub fn overlay_mut(&mut self) -> &mut OverlaySim {
        &mut self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use layercake_event::typed_event;
    use layercake_workload::stock::{BuyFilter, Stock, VolumeStock};

    fn stock_system() -> EventSystem {
        let mut system = EventSystem::builder()
            .levels(&[4, 2, 1])
            .with_event::<Stock>()
            .unwrap()
            .with_event::<VolumeStock>()
            .unwrap()
            .build();
        system.advertise::<Stock>(None).unwrap();
        system.advertise::<VolumeStock>(None).unwrap();
        system
    }

    #[test]
    fn typed_end_to_end() {
        let mut system = stock_system();
        let sub = system
            .subscribe::<Stock>(|f| f.eq("symbol", "Foo").lt("price", 10.0))
            .unwrap();
        system.settle();
        system.publish(&Stock::new("Foo".into(), 9.0)).unwrap();
        system.publish(&Stock::new("Foo".into(), 12.0)).unwrap();
        system.publish(&Stock::new("Bar".into(), 5.0)).unwrap();
        system.settle();
        let got = system.poll(&sub).unwrap();
        assert_eq!(got, vec![Stock::new("Foo".into(), 9.0)]);
        // Poll drains: a second poll is empty.
        assert!(system.poll(&sub).unwrap().is_empty());
    }

    #[test]
    fn polymorphic_delivery_of_subtypes() {
        let mut system = stock_system();
        let base_sub = system
            .subscribe::<Stock>(|f| f.eq("symbol", "Neo"))
            .unwrap();
        system.settle();
        system
            .publish(&VolumeStock::new("Neo".into(), 42.0, 1_000))
            .unwrap();
        system.settle();
        // The subtype event decodes into the supertype view.
        let got = system.poll(&base_sub).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].symbol(), "Neo");
        assert_eq!(*got[0].price(), 42.0);
    }

    #[test]
    fn subtype_subscription_ignores_base_events() {
        let mut system = stock_system();
        let sub = system.subscribe::<VolumeStock>(|f| f).unwrap();
        system.settle();
        system.publish(&Stock::new("Foo".into(), 1.0)).unwrap();
        system
            .publish(&VolumeStock::new("Foo".into(), 1.0, 10))
            .unwrap();
        system.settle();
        let got = system.poll(&sub).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(*got[0].volume(), 10);
    }

    #[test]
    fn stateful_residual_buy_filter() {
        let mut system = stock_system();
        let mut buy = BuyFilter::new("Foo", 10.0, 0.95);
        let sub = system
            .subscribe_with::<Stock, _>(
                |f| f.eq("symbol", "Foo").lt("price", 10.0),
                move |quote| buy.matches(quote),
            )
            .unwrap();
        system.settle();
        // 9.0 primes `last` without matching; 8.0 is a >5% drop: match.
        system.publish(&Stock::new("Foo".into(), 9.0)).unwrap();
        system.publish(&Stock::new("Foo".into(), 8.0)).unwrap();
        system.publish(&Stock::new("Foo".into(), 8.3)).unwrap();
        system.settle();
        let got = system.poll(&sub).unwrap();
        assert_eq!(got, vec![Stock::new("Foo".into(), 8.0)]);
    }

    #[test]
    fn publish_requires_advertisement() {
        typed_event! {
            pub struct Lonely: "Lonely" { x: i64 }
        }
        let mut system = EventSystem::builder()
            .levels(&[2, 1])
            .with_event::<Lonely>()
            .unwrap()
            .build();
        let err = system.publish(&Lonely::new(1)).unwrap_err();
        assert!(matches!(err, CoreError::NotAdvertised(_)));
        system.advertise::<Lonely>(None).unwrap();
        assert!(system.publish(&Lonely::new(1)).is_ok());
    }

    #[test]
    fn unregistered_type_is_rejected() {
        typed_event! {
            pub struct Ghost: "Ghost" { x: i64 }
        }
        let mut system = stock_system();
        assert!(matches!(
            system.publish(&Ghost::new(1)),
            Err(CoreError::NotRegistered(_))
        ));
        assert!(matches!(
            system.subscribe::<Ghost>(|f| f),
            Err(CoreError::NotRegistered(_))
        ));
    }

    #[test]
    fn class_mismatch_in_filter_is_rejected() {
        let mut system = stock_system();
        let auction_like = system.class_of::<VolumeStock>().unwrap();
        // Rescoping a VolumeStock filter onto a Stock subscription is fine
        // (subtype)…
        assert!(system
            .subscribe::<Stock>(|f| f.with_class(Some(auction_like)))
            .is_ok());
        // …but scoping a VolumeStock subscription at the Stock class is not.
        let stock_class = system.class_of::<Stock>().unwrap();
        let err = system
            .subscribe::<VolumeStock>(|f| f.with_class(Some(stock_class)))
            .unwrap_err();
        assert!(matches!(err, CoreError::ClassMismatch { .. }));
    }

    #[test]
    fn channel_subscription_receives_on_settle() {
        let mut system = stock_system();
        let sub = system
            .subscribe::<Stock>(|f| f.eq("symbol", "Foo"))
            .unwrap();
        let rx = system.channel(&sub);
        system.settle();
        system.publish(&Stock::new("Foo".into(), 3.0)).unwrap();
        system.publish(&Stock::new("Bar".into(), 3.0)).unwrap();
        system.settle();
        let got: Vec<Stock> = rx.try_iter().collect();
        assert_eq!(got, vec![Stock::new("Foo".into(), 3.0)]);
    }

    #[test]
    fn metrics_expose_broker_work() {
        let mut system = stock_system();
        let _sub = system
            .subscribe::<Stock>(|f| f.eq("symbol", "Foo"))
            .unwrap();
        system.settle();
        system.publish(&Stock::new("Foo".into(), 1.0)).unwrap();
        system.settle();
        let m = system.metrics();
        assert_eq!(m.total_events, 1);
        assert_eq!(m.total_subs, 1);
        assert!(m.records.len() >= 8);
        assert!(m.global_rlc_total() > 0.0);
    }

    #[test]
    fn builder_knobs_compose() {
        let system = EventSystem::builder()
            .levels(&[2, 1])
            .placement(PlacementPolicy::Random)
            .index(IndexKind::Naive)
            .wildcard_stage_placement(false)
            .seed(7)
            .with_event::<Stock>()
            .unwrap()
            .build();
        assert_eq!(system.stages(), 2);
        assert!(!format!("{system:?}").is_empty());
    }
}
