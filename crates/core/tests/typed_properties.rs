//! Property tests of the typed pipeline: Proposition 2 end to end (the
//! extracted meta-data pre-filters soundly for every weakened filter) and
//! exact typed delivery under random workloads.

use layercake_core::{typed_event, EventSystem, Filter, StageMap, TypedEvent};
use layercake_event::TypeRegistry;
use layercake_filter::weaken_to_stage;
use proptest::prelude::*;

typed_event! {
    /// A quote with a three-attribute schema so stage maps have room to
    /// weaken: venue ≻ symbol ≻ price.
    pub struct Quote: "Quote" {
        venue: String,
        symbol: String,
        price: f64,
    }
}

const VENUES: &[&str] = &["NYSE", "NASDAQ", "XETRA"];
const SYMBOLS: &[&str] = &["AAA", "BBB", "CCC", "DDD"];

fn arb_quote() -> impl Strategy<Value = Quote> {
    (
        proptest::sample::select(VENUES),
        proptest::sample::select(SYMBOLS),
        0u32..2_000,
    )
        .prop_map(|(v, s, cents)| Quote::new(v.to_owned(), s.to_owned(), f64::from(cents) / 100.0))
}

/// A declarative filter in the Quote schema.
fn arb_filter() -> impl Strategy<Value = FilterSpec> {
    (
        proptest::option::of(proptest::sample::select(VENUES)),
        proptest::option::of(proptest::sample::select(SYMBOLS)),
        proptest::option::of(0u32..2_000),
    )
        .prop_map(|(venue, symbol, max_cents)| FilterSpec {
            venue: venue.map(str::to_owned),
            symbol: symbol.map(str::to_owned),
            max_price: max_cents.map(|c| f64::from(c) / 100.0),
        })
}

#[derive(Debug, Clone)]
struct FilterSpec {
    venue: Option<String>,
    symbol: Option<String>,
    max_price: Option<f64>,
}

impl FilterSpec {
    fn build(&self, f: Filter) -> Filter {
        let mut f = f;
        if let Some(v) = &self.venue {
            f = f.eq("venue", v.clone());
        }
        if let Some(s) = &self.symbol {
            f = f.eq("symbol", s.clone());
        }
        if let Some(p) = self.max_price {
            f = f.lt("price", p);
        }
        f
    }

    fn accepts(&self, q: &Quote) -> bool {
        self.venue.as_ref().is_none_or(|v| q.venue() == v)
            && self.symbol.as_ref().is_none_or(|s| q.symbol() == s)
            && self.max_price.is_none_or(|p| *q.price() < p)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Proposition 2, end to end: for every stage, the weakened filter
    /// applied to the *extracted meta-data* never rejects an event the
    /// original typed predicate accepts.
    #[test]
    fn extraction_and_weakening_are_jointly_sound(spec in arb_filter(), quotes in proptest::collection::vec(arb_quote(), 1..24)) {
        let mut registry = TypeRegistry::new();
        let class_id = registry.register_event::<Quote>().unwrap();
        let class = registry.class(class_id).unwrap().clone();
        let g = StageMap::from_prefixes(&[3, 2, 1]).unwrap();
        let f = spec.build(Filter::for_class(class_id));
        for q in &quotes {
            let meta = q.extract();
            let full = f.matches(class_id, &meta, &registry);
            prop_assert_eq!(full, spec.accepts(q), "declarative filter agrees with the typed predicate");
            for stage in 0..4 {
                let weak = weaken_to_stage(&f, &class, &g, stage);
                if full {
                    prop_assert!(
                        weak.matches(class_id, &meta, &registry),
                        "stage-{stage} pre-filter dropped an accepted event"
                    );
                }
            }
        }
    }

    /// Typed delivery equals the typed oracle for random subscription sets
    /// and quote streams.
    #[test]
    fn typed_delivery_equals_typed_oracle(
        specs in proptest::collection::vec(arb_filter(), 1..6),
        quotes in proptest::collection::vec(arb_quote(), 1..30),
    ) {
        let mut system = EventSystem::builder()
            .levels(&[4, 2, 1])
            .with_event::<Quote>()
            .unwrap()
            .build();
        system.advertise::<Quote>(Some(StageMap::from_prefixes(&[3, 2, 1]).unwrap())).unwrap();
        let subs: Vec<_> = specs
            .iter()
            .map(|spec| {
                let spec = spec.clone();
                system.subscribe::<Quote>(move |f| spec.build(f)).unwrap()
            })
            .collect();
        for q in &quotes {
            system.publish(q).unwrap();
        }
        system.settle();
        for (spec, sub) in specs.iter().zip(&subs) {
            let got = system.poll(sub).unwrap();
            let want: Vec<Quote> = quotes.iter().filter(|q| spec.accepts(q)).cloned().collect();
            prop_assert_eq!(got, want, "typed delivery mismatch for {:?}", spec);
        }
    }
}
