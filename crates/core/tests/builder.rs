//! Builder and facade edge cases: registration ordering, advertisement
//! validation, and API misuse surfacing as typed errors.

use layercake_core::{typed_event, CoreError, EventSystem, StageMap};

typed_event! {
    pub struct Base: "Base" {
        key: String,
    }
}

typed_event! {
    pub struct Derived: "Derived" extends Base {
        key: String,
        extra: i64,
    }
}

#[test]
fn parent_must_be_registered_first() {
    // Registering the subtype before its parent fails cleanly.
    let err = EventSystem::builder().with_event::<Derived>().unwrap_err();
    assert!(matches!(err, CoreError::Event(_)));
    // The right order works.
    let sys = EventSystem::builder()
        .levels(&[2, 1])
        .with_event::<Base>()
        .unwrap()
        .with_event::<Derived>()
        .unwrap()
        .build();
    let base = sys.class_of::<Base>().unwrap();
    let derived = sys.class_of::<Derived>().unwrap();
    assert!(sys.registry().is_subtype(derived, base));
}

#[test]
fn double_registration_is_idempotent() {
    let sys = EventSystem::builder()
        .with_event::<Base>()
        .unwrap()
        .with_event::<Base>()
        .unwrap()
        .build();
    assert!(sys.class_of::<Base>().is_ok());
}

#[test]
fn advertise_with_custom_stage_map() {
    let mut sys = EventSystem::builder()
        .levels(&[2, 1])
        .with_event::<Base>()
        .unwrap()
        .build();
    // A map referencing attributes beyond the 1-attribute schema fails.
    let too_wide = StageMap::from_prefixes(&[3, 1]).unwrap();
    let err = sys.advertise::<Base>(Some(too_wide)).unwrap_err();
    assert!(matches!(err, CoreError::Event(_)));
    // A fitting map succeeds.
    let ok = StageMap::from_prefixes(&[1, 1]).unwrap();
    sys.advertise::<Base>(Some(ok)).unwrap();
    assert!(sys.publish(&Base::new("x".into())).is_ok());
}

#[test]
fn stages_reports_hierarchy_depth() {
    let sys = EventSystem::builder()
        .levels(&[8, 4, 2, 1])
        .with_event::<Base>()
        .unwrap()
        .build();
    assert_eq!(sys.stages(), 4);
}

#[test]
#[should_panic(expected = "invalid overlay configuration")]
fn invalid_topology_panics_at_build() {
    let _ = EventSystem::builder().levels(&[1, 8]).build();
}

#[test]
fn subscribe_to_subtype_delivers_only_subtype() {
    let mut sys = EventSystem::builder()
        .levels(&[2, 1])
        .with_event::<Base>()
        .unwrap()
        .with_event::<Derived>()
        .unwrap()
        .build();
    sys.advertise::<Base>(None).unwrap();
    sys.advertise::<Derived>(None).unwrap();
    let derived_only = sys.subscribe::<Derived>(|f| f).unwrap();
    let all_base = sys.subscribe::<Base>(|f| f).unwrap();
    sys.publish(&Base::new("b".into())).unwrap();
    sys.publish(&Derived::new("d".into(), 7)).unwrap();
    sys.settle();
    assert_eq!(sys.poll(&derived_only).unwrap().len(), 1);
    assert_eq!(sys.poll(&all_base).unwrap().len(), 2);
}

#[test]
fn unsubscribed_channel_stops_receiving() {
    let mut sys = EventSystem::builder()
        .levels(&[2, 1])
        .with_event::<Base>()
        .unwrap()
        .build();
    sys.advertise::<Base>(None).unwrap();
    let sub = sys.subscribe::<Base>(|f| f.eq("key", "k")).unwrap();
    let rx = sys.channel(&sub);
    sys.publish(&Base::new("k".into())).unwrap();
    sys.settle();
    assert_eq!(rx.try_iter().count(), 1);
    assert!(sys.unsubscribe_now(&sub));
    sys.settle();
    sys.publish(&Base::new("k".into())).unwrap();
    sys.settle();
    assert_eq!(rx.try_iter().count(), 0);
}
