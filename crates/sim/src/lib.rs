//! Deterministic discrete-event simulation substrate for `layercake`.
//!
//! The paper evaluates multi-stage filtering with a simulation of a broker
//! hierarchy (Section 5.2). This crate provides the substrate for that
//! evaluation: a single-threaded, fully deterministic discrete-event engine
//! with virtual time, actor mailboxes and timers.
//!
//! * [`SimTime`] / [`SimDuration`] — virtual clock in integer ticks.
//! * [`Actor`] — a node in the simulated system; reacts to messages and
//!   timers via [`Ctx`], which buffers outgoing sends so handlers never
//!   observe re-entrancy.
//! * [`World`] — the scheduler: a priority queue of pending deliveries
//!   ordered by `(time, sequence)` so that equal-time events retain a
//!   deterministic FIFO order.
//!
//! The engine is generic over a single concrete actor type; heterogeneous
//! systems (brokers, publishers, subscribers) wrap their roles in an enum,
//! which keeps dispatch static and post-run state inspection trivial.
//!
//! # Example
//!
//! ```
//! use layercake_sim::{Actor, ActorId, Ctx, SimDuration, World};
//!
//! struct Counter {
//!     received: u32,
//! }
//!
//! impl Actor for Counter {
//!     type Msg = u32;
//!     fn on_message(&mut self, _from: ActorId, msg: u32, ctx: &mut Ctx<'_, u32>) {
//!         self.received += msg;
//!         if msg > 1 {
//!             // halve and forward to ourselves after one tick
//!             let me = ctx.me();
//!             ctx.send_after(me, msg / 2, SimDuration::from_ticks(1));
//!         }
//!     }
//! }
//!
//! let mut world = World::new();
//! let a = world.add_actor(Counter { received: 0 });
//! world.send_external(a, 8);
//! let report = world.run();
//! assert_eq!(world.actor(a).received, 8 + 4 + 2 + 1);
//! assert_eq!(report.delivered_messages, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod time;

pub use engine::{Actor, ActorId, Ctx, FaultPlan, RunReport, World};
pub use time::{SimDuration, SimTime};
