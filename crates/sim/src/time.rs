//! Virtual time for the discrete-event engine.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in integer ticks since simulation start.
///
/// The tick granularity is up to the model; the overlay simulations treat
/// one tick as one microsecond.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw ticks.
    #[must_use]
    pub fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Raw tick count.
    #[must_use]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Duration elapsed since an earlier time (saturating).
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

/// A span of virtual time in ticks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw ticks.
    #[must_use]
    pub fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Raw tick count.
    #[must_use]
    pub fn ticks(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ticks(10);
        let d = SimDuration::from_ticks(5);
        assert_eq!((t + d).ticks(), 15);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), SimDuration::ZERO);
        assert_eq!(d * 3, SimDuration::from_ticks(15));
        let mut t2 = t;
        t2 += d;
        assert_eq!(t2.ticks(), 15);
    }

    #[test]
    fn saturation() {
        let t = SimTime::from_ticks(u64::MAX);
        assert_eq!((t + SimDuration::from_ticks(1)).ticks(), u64::MAX);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::ZERO < SimTime::from_ticks(1));
        assert_eq!(SimTime::from_ticks(3).to_string(), "t=3");
        assert_eq!(SimDuration::from_ticks(3).to_string(), "3 ticks");
    }
}
