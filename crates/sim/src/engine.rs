//! The discrete-event scheduler.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::{SimDuration, SimTime};

/// Identifier of an actor within a [`World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub usize);

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// A simulated node: reacts to messages and timers.
///
/// Handlers receive a [`Ctx`] through which they can send messages and set
/// timers; effects are buffered and scheduled after the handler returns, so
/// an actor never observes its own re-entrant delivery.
pub trait Actor {
    /// The message type exchanged in this simulation.
    type Msg;

    /// Handles a message delivered to this actor.
    fn on_message(&mut self, from: ActorId, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>);

    /// Handles a timer previously set with [`Ctx::set_timer`]. The default
    /// implementation ignores timers.
    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = (tag, ctx);
    }

    /// Called when the actor restarts after a [`World::crash`]. The actor
    /// should reset the soft state it cannot have persisted and may send
    /// messages / set timers to rejoin the system (in-flight deliveries and
    /// pending timers from before the crash are already discarded). The
    /// default implementation does nothing.
    fn on_restart(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Virtual time this actor needs to *service* `msg` once it arrives.
    ///
    /// `None` (the default) means processing is instantaneous — the message
    /// is handled at its nominal arrival time. Returning `Some(cost)` makes
    /// the actor a finite-rate server: arrivals are serialized through a
    /// per-actor busy clock, so a message's effective delivery time is
    /// `max(nominal arrival, end of previous service) + cost`. Backlog and
    /// queueing delay then emerge naturally when the offered rate exceeds
    /// `1 / cost`. The world queries the *receiver* at scheduling time, so
    /// an actor can charge different costs per message class (e.g. charge
    /// data, wave control through).
    fn service_cost(&self, msg: &Self::Msg) -> Option<SimDuration> {
        let _ = msg;
        None
    }
}

/// Per-link fault model: probabilities rolled on a dedicated, seeded RNG
/// stream per `(from, to)` link, so outcomes are deterministic and
/// independent of unrelated traffic.
///
/// Faults apply to actor-to-actor messages only — never to timers or
/// external injections.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that a scheduled message is silently lost.
    pub drop_probability: f64,
    /// Probability in `[0, 1]` that a message is delivered twice (the
    /// duplicate is scheduled independently, with its own jitter).
    pub dup_probability: f64,
    /// Maximum extra latency added to each delivery, drawn uniformly from
    /// `0..=max_jitter` ticks.
    pub max_jitter: SimDuration,
}

impl FaultPlan {
    /// A plan that never drops, duplicates, or delays — useful as a base
    /// for struct-update syntax.
    pub const NONE: FaultPlan = FaultPlan {
        drop_probability: 0.0,
        dup_probability: 0.0,
        max_jitter: SimDuration::ZERO,
    };

    /// Whether this plan can ever alter a delivery.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.drop_probability > 0.0
            || self.dup_probability > 0.0
            || self.max_jitter > SimDuration::ZERO
    }
}

enum Effect<M> {
    Send {
        to: ActorId,
        msg: M,
        delay: SimDuration,
    },
    Timer {
        tag: u64,
        delay: SimDuration,
    },
}

/// Handler-side view of the world: the clock plus buffered effects.
pub struct Ctx<'a, M> {
    now: SimTime,
    me: ActorId,
    default_latency: SimDuration,
    effects: &'a mut Vec<Effect<M>>,
}

impl<M> Ctx<'_, M> {
    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the handling actor.
    #[must_use]
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Sends a message with the world's default link latency.
    pub fn send(&mut self, to: ActorId, msg: M) {
        let delay = self.default_latency;
        self.send_after(to, msg, delay);
    }

    /// Sends a message that will be delivered after `delay`.
    pub fn send_after(&mut self, to: ActorId, msg: M, delay: SimDuration) {
        self.effects.push(Effect::Send { to, msg, delay });
    }

    /// Schedules [`Actor::on_timer`] with `tag` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.effects.push(Effect::Timer { tag, delay });
    }
}

enum Item<M> {
    Message { from: ActorId, to: ActorId, msg: M },
    Timer { actor: ActorId, tag: u64 },
}

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    item: Item<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first;
        // sequence numbers break ties FIFO.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Summary of a completed [`World::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunReport {
    /// Number of messages delivered to actors.
    pub delivered_messages: u64,
    /// Number of timer firings.
    pub fired_timers: u64,
    /// Messages dropped on blocked links or addressed to crashed actors.
    pub dropped_messages: u64,
    /// Messages lost to a [`FaultPlan`] drop roll during this run.
    pub fault_dropped_messages: u64,
    /// Extra deliveries scheduled by [`FaultPlan`] duplication this run.
    pub duplicated_messages: u64,
    /// Virtual time of the last processed item.
    pub end_time: SimTime,
    /// Whether the run stopped because it hit the step limit.
    pub hit_step_limit: bool,
}

/// The discrete-event scheduler holding all actors and pending deliveries.
///
/// Determinism: items are processed in `(time, insertion sequence)` order,
/// and handlers' effects are scheduled in the order they were issued, so a
/// simulation's outcome is a pure function of its inputs.
pub struct World<A: Actor> {
    actors: Vec<A>,
    queue: BinaryHeap<Scheduled<A::Msg>>,
    now: SimTime,
    seq: u64,
    default_latency: SimDuration,
    step_limit: u64,
    effects_scratch: Vec<Effect<A::Msg>>,
    blocked: HashSet<(ActorId, ActorId)>,
    crashed: HashSet<ActorId>,
    fault_seed: u64,
    default_fault: Option<FaultPlan>,
    fault_plans: HashMap<(ActorId, ActorId), FaultPlan>,
    fault_rngs: HashMap<(ActorId, ActorId), StdRng>,
    fault_dropped: u64,
    fault_duplicated: u64,
    crash_discarded: u64,
    busy_until: HashMap<ActorId, SimTime>,
    inflight: HashMap<ActorId, u64>,
    peak_inflight: HashMap<ActorId, u64>,
}

impl<A: Actor> Default for World<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Actor> World<A> {
    /// Creates an empty world with a default link latency of 1 tick.
    #[must_use]
    pub fn new() -> Self {
        Self::with_latency(SimDuration::from_ticks(1))
    }

    /// Creates an empty world with the given default link latency.
    #[must_use]
    pub fn with_latency(default_latency: SimDuration) -> Self {
        Self {
            actors: Vec::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            default_latency,
            step_limit: u64::MAX,
            effects_scratch: Vec::new(),
            blocked: HashSet::new(),
            crashed: HashSet::new(),
            fault_seed: 0,
            default_fault: None,
            fault_plans: HashMap::new(),
            fault_rngs: HashMap::new(),
            fault_dropped: 0,
            fault_duplicated: 0,
            crash_discarded: 0,
            busy_until: HashMap::new(),
            inflight: HashMap::new(),
            peak_inflight: HashMap::new(),
        }
    }

    /// Fault injection: drops every message traveling from `from` to `to`
    /// (checked at delivery time, so in-flight messages are lost too).
    /// External injections are never blocked.
    pub fn block_link(&mut self, from: ActorId, to: ActorId) {
        self.blocked.insert((from, to));
    }

    /// Heals a previously blocked link.
    pub fn unblock_link(&mut self, from: ActorId, to: ActorId) {
        self.blocked.remove(&(from, to));
    }

    /// Blocks every link touching `node`, in both directions — a crashed or
    /// partitioned node. Messages *to* the node are dropped; note the node's
    /// own timers still fire (its local clock keeps running).
    pub fn partition_node(&mut self, node: ActorId) {
        for i in 0..self.actors.len() {
            self.blocked.insert((ActorId(i), node));
            self.blocked.insert((node, ActorId(i)));
        }
    }

    /// Heals every link touching `node`.
    pub fn heal_node(&mut self, node: ActorId) {
        self.blocked.retain(|&(a, b)| a != node && b != node);
    }

    /// Sets the base seed from which per-link fault RNG streams are derived.
    /// Changing the seed resets all per-link streams.
    pub fn set_fault_seed(&mut self, seed: u64) {
        self.fault_seed = seed;
        self.fault_rngs.clear();
    }

    /// Installs (or clears, with `None`) a fault plan applied to every
    /// actor-to-actor link without a per-link override.
    pub fn set_default_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.default_fault = plan;
    }

    /// Installs a fault plan for one directed link, overriding the default.
    pub fn set_link_fault_plan(&mut self, from: ActorId, to: ActorId, plan: FaultPlan) {
        self.fault_plans.insert((from, to), plan);
    }

    /// Removes all fault plans (default and per-link). RNG streams are
    /// kept, so re-installing plans later continues the same sequences.
    pub fn clear_fault_plans(&mut self) {
        self.default_fault = None;
        self.fault_plans.clear();
    }

    /// Total messages lost to fault-plan drop rolls since world creation.
    #[must_use]
    pub fn fault_dropped(&self) -> u64 {
        self.fault_dropped
    }

    /// Total duplicate deliveries scheduled by fault plans since creation.
    #[must_use]
    pub fn fault_duplicated(&self) -> u64 {
        self.fault_duplicated
    }

    /// Total queued items discarded by [`World::crash`] since creation.
    #[must_use]
    pub fn crash_discarded(&self) -> u64 {
        self.crash_discarded
    }

    /// Crashes an actor: discards every queued delivery addressed to it and
    /// every pending timer it owns, and drops all messages that arrive
    /// while it is down. Its state is left in place — what survives a real
    /// process restart is decided by the actor's [`Actor::on_restart`].
    ///
    /// Returns the number of queued items discarded.
    pub fn crash(&mut self, node: ActorId) -> u64 {
        self.crashed.insert(node);
        let before = self.queue.len();
        let kept: Vec<Scheduled<A::Msg>> = self
            .queue
            .drain()
            .filter(|s| match &s.item {
                Item::Message { to, .. } => *to != node,
                Item::Timer { actor, .. } => *actor != node,
            })
            .collect();
        let discarded = (before - kept.len()) as u64;
        self.crash_discarded += discarded;
        self.queue = BinaryHeap::from(kept);
        // Every delivery addressed to the node is gone, and its service
        // backlog dies with the process.
        self.inflight.remove(&node);
        self.busy_until.remove(&node);
        discarded
    }

    /// Returns whether `node` is currently crashed.
    #[must_use]
    pub fn is_crashed(&self, node: ActorId) -> bool {
        self.crashed.contains(&node)
    }

    /// Restarts a crashed actor. Invokes [`Actor::on_restart`] so the node
    /// can reset soft state and rejoin; effects it issues are scheduled
    /// normally. Returns `false` (and does nothing) if the actor was not
    /// crashed.
    pub fn restart(&mut self, node: ActorId) -> bool
    where
        A::Msg: Clone,
    {
        if !self.crashed.remove(&node) {
            return false;
        }
        let mut effects = std::mem::take(&mut self.effects_scratch);
        {
            let mut ctx = Ctx {
                now: self.now,
                me: node,
                default_latency: self.default_latency,
                effects: &mut effects,
            };
            self.actors[node.0].on_restart(&mut ctx);
        }
        self.drain_effects(node, &mut effects);
        self.effects_scratch = effects;
        true
    }

    /// Caps the number of items a single `run` may process (a safeguard
    /// against livelock in model bugs). Default: unlimited.
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// Adds an actor, returning its id.
    pub fn add_actor(&mut self, actor: A) -> ActorId {
        self.actors.push(actor);
        ActorId(self.actors.len() - 1)
    }

    /// Immutable access to an actor's state.
    ///
    /// # Panics
    ///
    /// Panics if the id is not part of this world.
    #[must_use]
    pub fn actor(&self, id: ActorId) -> &A {
        &self.actors[id.0]
    }

    /// Mutable access to an actor's state (for test setup and post-run
    /// extraction; not for bypassing the message layer mid-run).
    pub fn actor_mut(&mut self, id: ActorId) -> &mut A {
        &mut self.actors[id.0]
    }

    /// All actors, in id order.
    #[must_use]
    pub fn actors(&self) -> &[A] {
        &self.actors
    }

    /// Number of actors.
    #[must_use]
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Injects a message from outside the simulation, delivered at the
    /// current time plus the default latency (later if the receiver models
    /// a service time and is backlogged).
    pub fn send_external(&mut self, to: ActorId, msg: A::Msg) {
        let at = self.shaped_arrival(to, self.now + self.default_latency, &msg);
        self.push(
            at,
            Item::Message {
                from: ActorId(usize::MAX),
                to,
                msg,
            },
        );
    }

    /// Injects a message delivered at an absolute virtual time (later if
    /// the receiver models a service time and is backlogged).
    pub fn send_external_at(&mut self, to: ActorId, msg: A::Msg, at: SimTime) {
        let at = self.shaped_arrival(to, at.max(self.now), &msg);
        self.push(
            at,
            Item::Message {
                from: ActorId(usize::MAX),
                to,
                msg,
            },
        );
    }

    /// Runs until the queue drains (or the step limit is hit).
    pub fn run(&mut self) -> RunReport
    where
        A::Msg: Clone,
    {
        self.run_until(SimTime::from_ticks(u64::MAX))
    }

    /// Runs until the queue drains or virtual time would exceed `deadline`.
    /// Items scheduled after the deadline stay queued. On return the clock
    /// stands at `deadline` (the elapsed window is fully spent, so repeated
    /// bounded runs advance virtual time deterministically), except for the
    /// unbounded sentinel used by [`World::run`].
    pub fn run_until(&mut self, deadline: SimTime) -> RunReport
    where
        A::Msg: Clone,
    {
        let mut report = RunReport::default();
        let fault_dropped_start = self.fault_dropped;
        let fault_duplicated_start = self.fault_duplicated;
        let mut steps = 0u64;
        while let Some(next) = self.queue.peek() {
            if next.at > deadline {
                break;
            }
            if steps >= self.step_limit {
                report.hit_step_limit = true;
                break;
            }
            steps += 1;
            let scheduled = self.queue.pop().expect("peeked item exists");
            self.now = scheduled.at;
            let actor_id = match &scheduled.item {
                Item::Message { to, .. } => *to,
                Item::Timer { actor, .. } => *actor,
            };
            if matches!(scheduled.item, Item::Message { .. }) {
                if let Some(n) = self.inflight.get_mut(&actor_id) {
                    *n = n.saturating_sub(1);
                }
            }
            debug_assert!(actor_id.0 < self.actors.len(), "delivery to unknown actor");
            let mut effects = std::mem::take(&mut self.effects_scratch);
            {
                let mut ctx = Ctx {
                    now: self.now,
                    me: actor_id,
                    default_latency: self.default_latency,
                    effects: &mut effects,
                };
                match scheduled.item {
                    Item::Message { from, msg, to } => {
                        if self.blocked.contains(&(from, to)) || self.crashed.contains(&to) {
                            report.dropped_messages += 1;
                        } else {
                            report.delivered_messages += 1;
                            self.actors[actor_id.0].on_message(from, msg, &mut ctx);
                        }
                    }
                    Item::Timer { tag, .. } => {
                        // Timers of a crashed actor were purged at crash
                        // time; anything left (crashed mid-window) is
                        // silently discarded.
                        if !self.crashed.contains(&actor_id) {
                            report.fired_timers += 1;
                            self.actors[actor_id.0].on_timer(tag, &mut ctx);
                        }
                    }
                }
            }
            self.drain_effects(actor_id, &mut effects);
            self.effects_scratch = effects;
        }
        report.fault_dropped_messages = self.fault_dropped - fault_dropped_start;
        report.duplicated_messages = self.fault_duplicated - fault_duplicated_start;
        // Spend the remainder of the window.
        if deadline < SimTime::from_ticks(u64::MAX) && !report.hit_step_limit && self.now < deadline
        {
            self.now = deadline;
        }
        report.end_time = self.now;
        report
    }

    /// Number of queued, undelivered items.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Messages currently scheduled toward `id` (in transit or waiting out
    /// the receiver's service backlog). Timers are not counted.
    #[must_use]
    pub fn inflight_of(&self, id: ActorId) -> u64 {
        self.inflight.get(&id).copied().unwrap_or(0)
    }

    /// High-water mark of [`World::inflight_of`] over the world's lifetime.
    #[must_use]
    pub fn peak_inflight_of(&self, id: ActorId) -> u64 {
        self.peak_inflight.get(&id).copied().unwrap_or(0)
    }

    /// Applies the receiver's service model to a nominal arrival time: if
    /// the receiver charges a cost for this message, the delivery is pushed
    /// behind its service backlog and the busy clock advances.
    fn shaped_arrival(&mut self, to: ActorId, nominal: SimTime, msg: &A::Msg) -> SimTime {
        let Some(cost) = self.actors.get(to.0).and_then(|a| a.service_cost(msg)) else {
            return nominal;
        };
        let start = nominal.max(self.busy_until.get(&to).copied().unwrap_or(SimTime::ZERO));
        let done = start + cost;
        self.busy_until.insert(to, done);
        done
    }

    fn push(&mut self, at: SimTime, item: Item<A::Msg>) {
        if let Item::Message { to, .. } = &item {
            let n = self.inflight.entry(*to).or_insert(0);
            *n += 1;
            let peak = self.peak_inflight.entry(*to).or_insert(0);
            *peak = (*peak).max(*n);
        }
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, item });
    }

    /// Schedules an actor's buffered effects, rolling fault plans on sends.
    fn drain_effects(&mut self, from: ActorId, effects: &mut Vec<Effect<A::Msg>>)
    where
        A::Msg: Clone,
    {
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { to, msg, delay } => self.schedule_send(from, to, msg, delay),
                Effect::Timer { tag, delay } => {
                    let at = self.now + delay;
                    self.push(at, Item::Timer { actor: from, tag });
                }
            }
        }
    }

    fn plan_for(&self, from: ActorId, to: ActorId) -> Option<FaultPlan> {
        self.fault_plans
            .get(&(from, to))
            .copied()
            .or(self.default_fault)
    }

    fn schedule_send(&mut self, from: ActorId, to: ActorId, msg: A::Msg, delay: SimDuration)
    where
        A::Msg: Clone,
    {
        let plan = self.plan_for(from, to).filter(FaultPlan::is_active);
        let Some(plan) = plan else {
            let at = self.shaped_arrival(to, self.now + delay, &msg);
            self.push(at, Item::Message { from, to, msg });
            return;
        };
        let seed = self.fault_seed;
        let rng = self
            .fault_rngs
            .entry((from, to))
            .or_insert_with(|| StdRng::seed_from_u64(link_stream_seed(seed, from, to)));
        // Fixed roll order (drop, dup, two jitters) keeps each link's RNG
        // stream aligned across runs regardless of the outcomes.
        let dropped = plan.drop_probability > 0.0 && rng.gen_bool(plan.drop_probability);
        let duplicated = plan.dup_probability > 0.0 && rng.gen_bool(plan.dup_probability);
        let jitter_main = roll_jitter(rng, plan.max_jitter);
        let jitter_dup = roll_jitter(rng, plan.max_jitter);
        // Drop and duplication are independent per-copy outcomes: the
        // original may be lost while its duplicate survives.
        if duplicated {
            self.fault_duplicated += 1;
            let at = self.shaped_arrival(to, self.now + delay + jitter_dup, &msg);
            self.push(
                at,
                Item::Message {
                    from,
                    to,
                    msg: msg.clone(),
                },
            );
        }
        if dropped {
            self.fault_dropped += 1;
        } else {
            let at = self.shaped_arrival(to, self.now + delay + jitter_main, &msg);
            self.push(at, Item::Message { from, to, msg });
        }
    }
}

/// Derives the RNG seed for one directed link's fault stream.
fn link_stream_seed(seed: u64, from: ActorId, to: ActorId) -> u64 {
    let a = (from.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let b = (to.0 as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    seed ^ a.rotate_left(17) ^ b
}

fn roll_jitter<R: Rng + ?Sized>(rng: &mut R, max: SimDuration) -> SimDuration {
    if max == SimDuration::ZERO {
        SimDuration::ZERO
    } else {
        SimDuration::from_ticks(rng.gen_range(0..=max.ticks()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        log: Vec<(u64, u32, usize)>, // (time, payload, from)
        bounce_to: Option<ActorId>,
    }

    impl Actor for Echo {
        type Msg = u32;
        fn on_message(&mut self, from: ActorId, msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.log.push((ctx.now().ticks(), msg, from.0));
            if let Some(peer) = self.bounce_to {
                if msg > 0 {
                    ctx.send(peer, msg - 1);
                }
            }
        }
        fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, u32>) {
            self.log.push((
                ctx.now().ticks(),
                1000 + u64::from(tag as u32) as u32,
                usize::MAX - 1,
            ));
        }
    }

    fn echo() -> Echo {
        Echo {
            log: Vec::new(),
            bounce_to: None,
        }
    }

    #[test]
    fn ping_pong_until_drained() {
        let mut world = World::new();
        let a = world.add_actor(echo());
        let b = world.add_actor(echo());
        world.actor_mut(a).bounce_to = Some(b);
        world.actor_mut(b).bounce_to = Some(a);
        world.send_external(a, 5);
        let report = world.run();
        assert_eq!(report.delivered_messages, 6); // 5,4,3,2,1,0
        assert_eq!(world.actor(a).log.len(), 3);
        assert_eq!(world.actor(b).log.len(), 3);
        assert_eq!(world.pending(), 0);
        // Latency 1 per hop: timestamps strictly increase.
        assert_eq!(world.actor(a).log[0].0, 1);
        assert_eq!(world.actor(b).log[0].0, 2);
    }

    #[test]
    fn equal_time_messages_are_fifo() {
        let mut world: World<Echo> = World::with_latency(SimDuration::ZERO);
        let a = world.add_actor(echo());
        for i in 0..10 {
            world.send_external(a, i);
        }
        world.run();
        let payloads: Vec<u32> = world.actor(a).log.iter().map(|(_, p, _)| *p).collect();
        assert_eq!(payloads, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn timers_fire_at_the_right_time() {
        struct TimerActor {
            fired_at: Vec<(u64, u64)>,
        }
        impl Actor for TimerActor {
            type Msg = ();
            fn on_message(&mut self, _: ActorId, (): (), ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_ticks(10), 1);
                ctx.set_timer(SimDuration::from_ticks(5), 2);
            }
            fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, ()>) {
                self.fired_at.push((tag, ctx.now().ticks()));
            }
        }
        let mut world = World::new();
        let a = world.add_actor(TimerActor { fired_at: vec![] });
        world.send_external(a, ());
        world.run();
        assert_eq!(world.actor(a).fired_at, vec![(2, 6), (1, 11)]);
    }

    #[test]
    fn run_until_leaves_future_items_queued() {
        let mut world: World<Echo> = World::new();
        let a = world.add_actor(echo());
        world.send_external_at(a, 1, SimTime::from_ticks(5));
        world.send_external_at(a, 2, SimTime::from_ticks(50));
        let report = world.run_until(SimTime::from_ticks(10));
        assert_eq!(report.delivered_messages, 1);
        assert_eq!(world.pending(), 1);
        let report = world.run();
        assert_eq!(report.delivered_messages, 1);
        assert_eq!(world.now(), SimTime::from_ticks(50));
    }

    #[test]
    fn external_send_at_past_time_is_clamped() {
        let mut world: World<Echo> = World::new();
        let a = world.add_actor(echo());
        world.send_external_at(a, 1, SimTime::from_ticks(20));
        world.run();
        world.send_external_at(a, 2, SimTime::from_ticks(3)); // in the past
        world.run();
        let times: Vec<u64> = world.actor(a).log.iter().map(|(t, _, _)| *t).collect();
        assert_eq!(times, vec![20, 20]);
    }

    #[test]
    fn step_limit_stops_runaway() {
        struct Looper;
        impl Actor for Looper {
            type Msg = ();
            fn on_message(&mut self, _: ActorId, (): (), ctx: &mut Ctx<'_, ()>) {
                let me = ctx.me();
                ctx.send(me, ());
            }
        }
        let mut world = World::new();
        let a = world.add_actor(Looper);
        world.send_external(a, ());
        world.set_step_limit(100);
        let report = world.run();
        assert!(report.hit_step_limit);
        assert_eq!(report.delivered_messages, 100);
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once() -> Vec<(u64, u32, usize)> {
            let mut world = World::new();
            let a = world.add_actor(echo());
            let b = world.add_actor(echo());
            world.actor_mut(a).bounce_to = Some(b);
            world.actor_mut(b).bounce_to = Some(a);
            world.send_external(a, 7);
            world.send_external(b, 3);
            world.run();
            let mut log = world.actor(a).log.clone();
            log.extend(world.actor(b).log.iter().copied());
            log
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn bounded_runs_spend_their_whole_window() {
        let mut world: World<Echo> = World::new();
        let a = world.add_actor(echo());
        world.send_external(a, 1);
        world.run_until(SimTime::from_ticks(100));
        assert_eq!(world.now(), SimTime::from_ticks(100));
        // Repeated empty windows keep advancing the clock.
        world.run_until(SimTime::from_ticks(250));
        assert_eq!(world.now(), SimTime::from_ticks(250));
        // The unbounded run does not jump to infinity.
        world.send_external(a, 2);
        world.run();
        assert_eq!(world.now(), SimTime::from_ticks(251));
    }

    #[test]
    fn external_sender_id_is_sentinel() {
        let mut world: World<Echo> = World::new();
        let a = world.add_actor(echo());
        world.send_external(a, 9);
        world.run();
        assert_eq!(world.actor(a).log[0].2, usize::MAX);
    }

    /// Fans `count` messages from `a` to `b` through an actor hop (faults
    /// only apply to actor-to-actor sends) and returns the world.
    fn fan_out(count: u32, plan: FaultPlan, seed: u64) -> (World<Fanner>, ActorId) {
        let mut world: World<Fanner> = World::new();
        let src = world.add_actor(Fanner {
            target: None,
            received: 0,
        });
        let dst = world.add_actor(Fanner {
            target: None,
            received: 0,
        });
        world.actor_mut(src).target = Some((dst, count));
        world.set_fault_seed(seed);
        world.set_default_fault_plan(Some(plan));
        world.send_external(src, 0);
        (world, dst)
    }

    struct Fanner {
        target: Option<(ActorId, u32)>,
        received: u32,
    }

    impl Actor for Fanner {
        type Msg = u32;
        fn on_message(&mut self, _from: ActorId, _msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.received += 1;
            if let Some((to, count)) = self.target.take() {
                for i in 0..count {
                    ctx.send(to, i);
                }
            }
        }
    }

    #[test]
    fn fault_drops_are_counted_and_deterministic() {
        let plan = FaultPlan {
            drop_probability: 0.3,
            ..FaultPlan::NONE
        };
        let (mut w1, d1) = fan_out(500, plan, 42);
        let r1 = w1.run();
        let (mut w2, d2) = fan_out(500, plan, 42);
        let r2 = w2.run();
        assert!(r1.fault_dropped_messages > 0, "0.3 drop over 500 sends");
        assert_eq!(r1.fault_dropped_messages, r2.fault_dropped_messages);
        assert_eq!(w1.actor(d1).received, w2.actor(d2).received);
        assert_eq!(
            u64::from(w1.actor(d1).received) + r1.fault_dropped_messages,
            500
        );
    }

    #[test]
    fn fault_duplicates_add_deliveries() {
        let plan = FaultPlan {
            dup_probability: 0.2,
            ..FaultPlan::NONE
        };
        let (mut world, dst) = fan_out(500, plan, 7);
        let report = world.run();
        assert!(report.duplicated_messages > 0, "0.2 dup over 500 sends");
        assert_eq!(
            u64::from(world.actor(dst).received),
            500 + report.duplicated_messages
        );
    }

    #[test]
    fn jitter_delays_but_never_loses() {
        let plan = FaultPlan {
            max_jitter: SimDuration::from_ticks(9),
            ..FaultPlan::NONE
        };
        let (mut world, dst) = fan_out(200, plan, 3);
        let report = world.run();
        assert_eq!(world.actor(dst).received, 200);
        assert_eq!(report.fault_dropped_messages, 0);
        assert_eq!(report.duplicated_messages, 0);
        // The last delivery must land no later than send time + base + max.
        assert!(world.now().ticks() <= 1 + 1 + 9);
    }

    #[test]
    fn different_seeds_give_different_outcomes() {
        let plan = FaultPlan {
            drop_probability: 0.5,
            ..FaultPlan::NONE
        };
        let (mut w1, _) = fan_out(200, plan, 1);
        let (mut w2, _) = fan_out(200, plan, 2);
        let (r1, r2) = (w1.run(), w2.run());
        assert_ne!(
            r1.fault_dropped_messages, r2.fault_dropped_messages,
            "200 coin flips on two seeds landing identical is ~impossible"
        );
    }

    #[test]
    fn crash_discards_inflight_and_blocks_arrivals() {
        let mut world: World<Echo> = World::new();
        let a = world.add_actor(echo());
        world.send_external_at(a, 1, SimTime::from_ticks(5));
        world.send_external_at(a, 2, SimTime::from_ticks(6));
        let discarded = world.crash(a);
        assert_eq!(discarded, 2);
        assert!(world.is_crashed(a));
        // New arrivals while down are dropped at delivery time.
        world.send_external_at(a, 3, SimTime::from_ticks(10));
        let report = world.run();
        assert_eq!(report.delivered_messages, 0);
        assert_eq!(report.dropped_messages, 1);
        assert!(world.actor(a).log.is_empty());
        assert_eq!(world.crash_discarded(), 2);
    }

    #[test]
    fn crash_purges_pending_timers() {
        struct TimerActor {
            fired: u32,
        }
        impl Actor for TimerActor {
            type Msg = ();
            fn on_message(&mut self, _: ActorId, (): (), ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_ticks(10), 1);
            }
            fn on_timer(&mut self, _tag: u64, _ctx: &mut Ctx<'_, ()>) {
                self.fired += 1;
            }
        }
        let mut world = World::new();
        let a = world.add_actor(TimerActor { fired: 0 });
        world.send_external(a, ());
        world.run_until(SimTime::from_ticks(5)); // handler ran, timer pending
        assert_eq!(world.crash(a), 1);
        world.restart(a);
        world.run();
        assert_eq!(world.actor(a).fired, 0, "pre-crash timer must not fire");
    }

    #[test]
    fn restart_invokes_hook_and_resumes_delivery() {
        struct Rejoiner {
            restarts: u32,
            received: Vec<u32>,
        }
        impl Actor for Rejoiner {
            type Msg = u32;
            fn on_message(&mut self, _: ActorId, msg: u32, _: &mut Ctx<'_, u32>) {
                self.received.push(msg);
            }
            fn on_restart(&mut self, ctx: &mut Ctx<'_, u32>) {
                self.restarts += 1;
                let me = ctx.me();
                ctx.send(me, 99); // e.g. a self-notification to rebuild state
            }
        }
        let mut world = World::new();
        let a = world.add_actor(Rejoiner {
            restarts: 0,
            received: vec![],
        });
        world.crash(a);
        assert!(world.restart(a));
        assert!(!world.restart(a), "double restart is a no-op");
        world.send_external(a, 7);
        world.run();
        assert_eq!(world.actor(a).restarts, 1);
        assert_eq!(world.actor(a).received, vec![99, 7]);
    }

    /// Server charging a fixed cost for odd payloads, nothing for even —
    /// models a broker that charges data but waves control through.
    struct Server {
        cost: u64,
        log: Vec<(u64, u32)>,
    }

    impl Actor for Server {
        type Msg = u32;
        fn on_message(&mut self, _from: ActorId, msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.log.push((ctx.now().ticks(), msg));
        }
        fn service_cost(&self, msg: &u32) -> Option<SimDuration> {
            (*msg % 2 == 1).then(|| SimDuration::from_ticks(self.cost))
        }
    }

    #[test]
    fn service_time_serializes_arrivals() {
        let mut world: World<Server> = World::new();
        let a = world.add_actor(Server {
            cost: 10,
            log: vec![],
        });
        // Three chargeable messages injected at t=0, nominal arrival t=1:
        // they must be serviced back-to-back at 11, 21, 31, in FIFO order.
        for i in 0..3 {
            world.send_external(a, 2 * i + 1);
        }
        world.run();
        let times: Vec<u64> = world.actor(a).log.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![11, 21, 31]);
        let payloads: Vec<u32> = world.actor(a).log.iter().map(|(_, p)| *p).collect();
        assert_eq!(payloads, vec![1, 3, 5]);
    }

    #[test]
    fn zero_cost_messages_bypass_the_busy_clock() {
        let mut world: World<Server> = World::new();
        let a = world.add_actor(Server {
            cost: 10,
            log: vec![],
        });
        world.send_external(a, 1); // serviced at 11
        world.send_external(a, 2); // free: arrives at nominal t=1
        world.run();
        assert_eq!(world.actor(a).log, vec![(1, 2), (11, 1)]);
    }

    #[test]
    fn inflight_tracks_backlog_and_peak() {
        let mut world: World<Server> = World::new();
        let a = world.add_actor(Server {
            cost: 100,
            log: vec![],
        });
        for _ in 0..5 {
            world.send_external(a, 1);
        }
        assert_eq!(world.inflight_of(a), 5);
        assert_eq!(world.peak_inflight_of(a), 5);
        world.run_until(SimTime::from_ticks(250)); // services two of five
        assert_eq!(world.inflight_of(a), 3);
        assert_eq!(world.peak_inflight_of(a), 5, "peak is a high-water mark");
        world.run();
        assert_eq!(world.inflight_of(a), 0);
        assert_eq!(world.peak_inflight_of(a), 5);
    }

    #[test]
    fn crash_clears_backlog_and_busy_clock() {
        let mut world: World<Server> = World::new();
        let a = world.add_actor(Server {
            cost: 50,
            log: vec![],
        });
        for _ in 0..4 {
            world.send_external(a, 1);
        }
        world.crash(a);
        assert_eq!(world.inflight_of(a), 0);
        world.restart(a);
        // A fresh arrival is serviced from a clean busy clock, not behind
        // the dead backlog's 4 × 50 ticks.
        world.send_external(a, 1);
        world.run();
        assert_eq!(world.actor(a).log, vec![(51, 1)]);
    }

    #[test]
    fn per_link_plan_overrides_default() {
        let mut world: World<Fanner> = World::new();
        let src = world.add_actor(Fanner {
            target: None,
            received: 0,
        });
        let dst = world.add_actor(Fanner {
            target: None,
            received: 0,
        });
        world.actor_mut(src).target = Some((dst, 100));
        world.set_fault_seed(11);
        world.set_default_fault_plan(Some(FaultPlan {
            drop_probability: 1.0,
            ..FaultPlan::NONE
        }));
        // The src→dst link is explicitly clean: nothing may be lost.
        world.set_link_fault_plan(src, dst, FaultPlan::NONE);
        world.send_external(src, 0);
        let report = world.run();
        assert_eq!(world.actor(dst).received, 100);
        assert_eq!(report.fault_dropped_messages, 0);
    }
}
