//! The discrete-event scheduler.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Identifier of an actor within a [`World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub usize);

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// A simulated node: reacts to messages and timers.
///
/// Handlers receive a [`Ctx`] through which they can send messages and set
/// timers; effects are buffered and scheduled after the handler returns, so
/// an actor never observes its own re-entrant delivery.
pub trait Actor {
    /// The message type exchanged in this simulation.
    type Msg;

    /// Handles a message delivered to this actor.
    fn on_message(&mut self, from: ActorId, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>);

    /// Handles a timer previously set with [`Ctx::set_timer`]. The default
    /// implementation ignores timers.
    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = (tag, ctx);
    }
}

enum Effect<M> {
    Send {
        to: ActorId,
        msg: M,
        delay: SimDuration,
    },
    Timer {
        tag: u64,
        delay: SimDuration,
    },
}

/// Handler-side view of the world: the clock plus buffered effects.
pub struct Ctx<'a, M> {
    now: SimTime,
    me: ActorId,
    default_latency: SimDuration,
    effects: &'a mut Vec<Effect<M>>,
}

impl<M> Ctx<'_, M> {
    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the handling actor.
    #[must_use]
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Sends a message with the world's default link latency.
    pub fn send(&mut self, to: ActorId, msg: M) {
        let delay = self.default_latency;
        self.send_after(to, msg, delay);
    }

    /// Sends a message that will be delivered after `delay`.
    pub fn send_after(&mut self, to: ActorId, msg: M, delay: SimDuration) {
        self.effects.push(Effect::Send { to, msg, delay });
    }

    /// Schedules [`Actor::on_timer`] with `tag` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.effects.push(Effect::Timer { tag, delay });
    }
}

enum Item<M> {
    Message { from: ActorId, to: ActorId, msg: M },
    Timer { actor: ActorId, tag: u64 },
}

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    item: Item<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first;
        // sequence numbers break ties FIFO.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Summary of a completed [`World::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunReport {
    /// Number of messages delivered to actors.
    pub delivered_messages: u64,
    /// Number of timer firings.
    pub fired_timers: u64,
    /// Messages dropped on blocked links (fault injection).
    pub dropped_messages: u64,
    /// Virtual time of the last processed item.
    pub end_time: SimTime,
    /// Whether the run stopped because it hit the step limit.
    pub hit_step_limit: bool,
}

/// The discrete-event scheduler holding all actors and pending deliveries.
///
/// Determinism: items are processed in `(time, insertion sequence)` order,
/// and handlers' effects are scheduled in the order they were issued, so a
/// simulation's outcome is a pure function of its inputs.
pub struct World<A: Actor> {
    actors: Vec<A>,
    queue: BinaryHeap<Scheduled<A::Msg>>,
    now: SimTime,
    seq: u64,
    default_latency: SimDuration,
    step_limit: u64,
    effects_scratch: Vec<Effect<A::Msg>>,
    blocked: std::collections::HashSet<(ActorId, ActorId)>,
}

impl<A: Actor> Default for World<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Actor> World<A> {
    /// Creates an empty world with a default link latency of 1 tick.
    #[must_use]
    pub fn new() -> Self {
        Self::with_latency(SimDuration::from_ticks(1))
    }

    /// Creates an empty world with the given default link latency.
    #[must_use]
    pub fn with_latency(default_latency: SimDuration) -> Self {
        Self {
            actors: Vec::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            default_latency,
            step_limit: u64::MAX,
            effects_scratch: Vec::new(),
            blocked: std::collections::HashSet::new(),
        }
    }

    /// Fault injection: drops every message traveling from `from` to `to`
    /// (checked at delivery time, so in-flight messages are lost too).
    /// External injections are never blocked.
    pub fn block_link(&mut self, from: ActorId, to: ActorId) {
        self.blocked.insert((from, to));
    }

    /// Heals a previously blocked link.
    pub fn unblock_link(&mut self, from: ActorId, to: ActorId) {
        self.blocked.remove(&(from, to));
    }

    /// Blocks every link touching `node`, in both directions — a crashed or
    /// partitioned node. Messages *to* the node are dropped; note the node's
    /// own timers still fire (its local clock keeps running).
    pub fn partition_node(&mut self, node: ActorId) {
        for i in 0..self.actors.len() {
            self.blocked.insert((ActorId(i), node));
            self.blocked.insert((node, ActorId(i)));
        }
    }

    /// Heals every link touching `node`.
    pub fn heal_node(&mut self, node: ActorId) {
        self.blocked.retain(|&(a, b)| a != node && b != node);
    }

    /// Caps the number of items a single `run` may process (a safeguard
    /// against livelock in model bugs). Default: unlimited.
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// Adds an actor, returning its id.
    pub fn add_actor(&mut self, actor: A) -> ActorId {
        self.actors.push(actor);
        ActorId(self.actors.len() - 1)
    }

    /// Immutable access to an actor's state.
    ///
    /// # Panics
    ///
    /// Panics if the id is not part of this world.
    #[must_use]
    pub fn actor(&self, id: ActorId) -> &A {
        &self.actors[id.0]
    }

    /// Mutable access to an actor's state (for test setup and post-run
    /// extraction; not for bypassing the message layer mid-run).
    pub fn actor_mut(&mut self, id: ActorId) -> &mut A {
        &mut self.actors[id.0]
    }

    /// All actors, in id order.
    #[must_use]
    pub fn actors(&self) -> &[A] {
        &self.actors
    }

    /// Number of actors.
    #[must_use]
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Injects a message from outside the simulation, delivered at the
    /// current time plus the default latency.
    pub fn send_external(&mut self, to: ActorId, msg: A::Msg) {
        let at = self.now + self.default_latency;
        self.push(at, Item::Message {
            from: ActorId(usize::MAX),
            to,
            msg,
        });
    }

    /// Injects a message delivered at an absolute virtual time.
    pub fn send_external_at(&mut self, to: ActorId, msg: A::Msg, at: SimTime) {
        self.push(at.max(self.now), Item::Message {
            from: ActorId(usize::MAX),
            to,
            msg,
        });
    }

    /// Runs until the queue drains (or the step limit is hit).
    pub fn run(&mut self) -> RunReport {
        self.run_until(SimTime::from_ticks(u64::MAX))
    }

    /// Runs until the queue drains or virtual time would exceed `deadline`.
    /// Items scheduled after the deadline stay queued. On return the clock
    /// stands at `deadline` (the elapsed window is fully spent, so repeated
    /// bounded runs advance virtual time deterministically), except for the
    /// unbounded sentinel used by [`World::run`].
    pub fn run_until(&mut self, deadline: SimTime) -> RunReport {
        let mut report = RunReport::default();
        let mut steps = 0u64;
        while let Some(next) = self.queue.peek() {
            if next.at > deadline {
                break;
            }
            if steps >= self.step_limit {
                report.hit_step_limit = true;
                break;
            }
            steps += 1;
            let scheduled = self.queue.pop().expect("peeked item exists");
            self.now = scheduled.at;
            let actor_id = match &scheduled.item {
                Item::Message { to, .. } => *to,
                Item::Timer { actor, .. } => *actor,
            };
            debug_assert!(actor_id.0 < self.actors.len(), "delivery to unknown actor");
            let mut effects = std::mem::take(&mut self.effects_scratch);
            {
                let mut ctx = Ctx {
                    now: self.now,
                    me: actor_id,
                    default_latency: self.default_latency,
                    effects: &mut effects,
                };
                match scheduled.item {
                    Item::Message { from, msg, to } => {
                        if self.blocked.contains(&(from, to)) {
                            report.dropped_messages += 1;
                        } else {
                            report.delivered_messages += 1;
                            self.actors[actor_id.0].on_message(from, msg, &mut ctx);
                        }
                    }
                    Item::Timer { tag, .. } => {
                        report.fired_timers += 1;
                        self.actors[actor_id.0].on_timer(tag, &mut ctx);
                    }
                }
            }
            for effect in effects.drain(..) {
                match effect {
                    Effect::Send { to, msg, delay } => {
                        let at = self.now + delay;
                        self.push(at, Item::Message {
                            from: actor_id,
                            to,
                            msg,
                        });
                    }
                    Effect::Timer { tag, delay } => {
                        let at = self.now + delay;
                        self.push(at, Item::Timer {
                            actor: actor_id,
                            tag,
                        });
                    }
                }
            }
            self.effects_scratch = effects;
        }
        // Spend the remainder of the window.
        if deadline < SimTime::from_ticks(u64::MAX) && !report.hit_step_limit && self.now < deadline {
            self.now = deadline;
        }
        report.end_time = self.now;
        report
    }

    /// Number of queued, undelivered items.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    fn push(&mut self, at: SimTime, item: Item<A::Msg>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, item });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        log: Vec<(u64, u32, usize)>, // (time, payload, from)
        bounce_to: Option<ActorId>,
    }

    impl Actor for Echo {
        type Msg = u32;
        fn on_message(&mut self, from: ActorId, msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.log.push((ctx.now().ticks(), msg, from.0));
            if let Some(peer) = self.bounce_to {
                if msg > 0 {
                    ctx.send(peer, msg - 1);
                }
            }
        }
        fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, u32>) {
            self.log.push((ctx.now().ticks(), 1000 + u64::from(tag as u32) as u32, usize::MAX - 1));
        }
    }

    fn echo() -> Echo {
        Echo {
            log: Vec::new(),
            bounce_to: None,
        }
    }

    #[test]
    fn ping_pong_until_drained() {
        let mut world = World::new();
        let a = world.add_actor(echo());
        let b = world.add_actor(echo());
        world.actor_mut(a).bounce_to = Some(b);
        world.actor_mut(b).bounce_to = Some(a);
        world.send_external(a, 5);
        let report = world.run();
        assert_eq!(report.delivered_messages, 6); // 5,4,3,2,1,0
        assert_eq!(world.actor(a).log.len(), 3);
        assert_eq!(world.actor(b).log.len(), 3);
        assert_eq!(world.pending(), 0);
        // Latency 1 per hop: timestamps strictly increase.
        assert_eq!(world.actor(a).log[0].0, 1);
        assert_eq!(world.actor(b).log[0].0, 2);
    }

    #[test]
    fn equal_time_messages_are_fifo() {
        let mut world: World<Echo> = World::with_latency(SimDuration::ZERO);
        let a = world.add_actor(echo());
        for i in 0..10 {
            world.send_external(a, i);
        }
        world.run();
        let payloads: Vec<u32> = world.actor(a).log.iter().map(|(_, p, _)| *p).collect();
        assert_eq!(payloads, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn timers_fire_at_the_right_time() {
        struct TimerActor {
            fired_at: Vec<(u64, u64)>,
        }
        impl Actor for TimerActor {
            type Msg = ();
            fn on_message(&mut self, _: ActorId, (): (), ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_ticks(10), 1);
                ctx.set_timer(SimDuration::from_ticks(5), 2);
            }
            fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, ()>) {
                self.fired_at.push((tag, ctx.now().ticks()));
            }
        }
        let mut world = World::new();
        let a = world.add_actor(TimerActor { fired_at: vec![] });
        world.send_external(a, ());
        world.run();
        assert_eq!(world.actor(a).fired_at, vec![(2, 6), (1, 11)]);
    }

    #[test]
    fn run_until_leaves_future_items_queued() {
        let mut world: World<Echo> = World::new();
        let a = world.add_actor(echo());
        world.send_external_at(a, 1, SimTime::from_ticks(5));
        world.send_external_at(a, 2, SimTime::from_ticks(50));
        let report = world.run_until(SimTime::from_ticks(10));
        assert_eq!(report.delivered_messages, 1);
        assert_eq!(world.pending(), 1);
        let report = world.run();
        assert_eq!(report.delivered_messages, 1);
        assert_eq!(world.now(), SimTime::from_ticks(50));
    }

    #[test]
    fn external_send_at_past_time_is_clamped() {
        let mut world: World<Echo> = World::new();
        let a = world.add_actor(echo());
        world.send_external_at(a, 1, SimTime::from_ticks(20));
        world.run();
        world.send_external_at(a, 2, SimTime::from_ticks(3)); // in the past
        world.run();
        let times: Vec<u64> = world.actor(a).log.iter().map(|(t, _, _)| *t).collect();
        assert_eq!(times, vec![20, 20]);
    }

    #[test]
    fn step_limit_stops_runaway() {
        struct Looper;
        impl Actor for Looper {
            type Msg = ();
            fn on_message(&mut self, _: ActorId, (): (), ctx: &mut Ctx<'_, ()>) {
                let me = ctx.me();
                ctx.send(me, ());
            }
        }
        let mut world = World::new();
        let a = world.add_actor(Looper);
        world.send_external(a, ());
        world.set_step_limit(100);
        let report = world.run();
        assert!(report.hit_step_limit);
        assert_eq!(report.delivered_messages, 100);
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once() -> Vec<(u64, u32, usize)> {
            let mut world = World::new();
            let a = world.add_actor(echo());
            let b = world.add_actor(echo());
            world.actor_mut(a).bounce_to = Some(b);
            world.actor_mut(b).bounce_to = Some(a);
            world.send_external(a, 7);
            world.send_external(b, 3);
            world.run();
            let mut log = world.actor(a).log.clone();
            log.extend(world.actor(b).log.iter().copied());
            log
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn bounded_runs_spend_their_whole_window() {
        let mut world: World<Echo> = World::new();
        let a = world.add_actor(echo());
        world.send_external(a, 1);
        world.run_until(SimTime::from_ticks(100));
        assert_eq!(world.now(), SimTime::from_ticks(100));
        // Repeated empty windows keep advancing the clock.
        world.run_until(SimTime::from_ticks(250));
        assert_eq!(world.now(), SimTime::from_ticks(250));
        // The unbounded run does not jump to infinity.
        world.send_external(a, 2);
        world.run();
        assert_eq!(world.now(), SimTime::from_ticks(251));
    }

    #[test]
    fn external_sender_id_is_sentinel() {
        let mut world: World<Echo> = World::new();
        let a = world.add_actor(echo());
        world.send_external(a, 9);
        world.run();
        assert_eq!(world.actor(a).log[0].2, usize::MAX);
    }
}
