//! Property tests for the discrete-event engine: determinism, ordering and
//! clock laws under randomized message plans.

use layercake_sim::{Actor, ActorId, Ctx, SimDuration, SimTime, World};
use proptest::prelude::*;

/// An actor that logs every delivery and can relay with a fixed plan:
/// on receiving `(hops_left, payload)`, forward to the next actor.
struct Relay {
    next: Option<ActorId>,
    log: Vec<(u64, u32)>, // (time, payload)
}

impl Actor for Relay {
    type Msg = (u8, u32);

    fn on_message(
        &mut self,
        _from: ActorId,
        (hops, payload): (u8, u32),
        ctx: &mut Ctx<'_, (u8, u32)>,
    ) {
        self.log.push((ctx.now().ticks(), payload));
        if hops > 0 {
            if let Some(next) = self.next {
                ctx.send(next, (hops - 1, payload));
            }
        }
    }
}

fn run_plan(
    latency: u64,
    injections: &[(usize, u8, u32, u64)],
    actors: usize,
) -> Vec<Vec<(u64, u32)>> {
    let mut world = World::with_latency(SimDuration::from_ticks(latency));
    let ids: Vec<ActorId> = (0..actors)
        .map(|_| {
            world.add_actor(Relay {
                next: None,
                log: Vec::new(),
            })
        })
        .collect();
    for (i, &id) in ids.iter().enumerate() {
        let next = ids[(i + 1) % ids.len()];
        world.actor_mut(id).next = Some(next);
    }
    for &(to, hops, payload, at) in injections {
        world.send_external_at(ids[to % actors], (hops, payload), SimTime::from_ticks(at));
    }
    world.run();
    ids.iter().map(|&id| world.actor(id).log.clone()).collect()
}

proptest! {
    /// Identical plans produce identical executions.
    #[test]
    fn deterministic_replay(
        latency in 1u64..4,
        injections in proptest::collection::vec((0usize..5, 0u8..6, any::<u32>(), 0u64..50), 1..20),
    ) {
        let a = run_plan(latency, &injections, 5);
        let b = run_plan(latency, &injections, 5);
        prop_assert_eq!(a, b);
    }

    /// Message count conservation: every injection with `h` hops produces
    /// exactly `h + 1` deliveries.
    #[test]
    fn hop_conservation(
        injections in proptest::collection::vec((0usize..4, 0u8..5, any::<u32>(), 0u64..30), 1..15),
    ) {
        let logs = run_plan(1, &injections, 4);
        let delivered: usize = logs.iter().map(Vec::len).sum();
        let expected: usize = injections.iter().map(|&(_, h, _, _)| h as usize + 1).sum();
        prop_assert_eq!(delivered, expected);
    }

    /// Per-actor timestamps never decrease (the engine is causal).
    #[test]
    fn per_actor_time_is_monotone(
        latency in 1u64..5,
        injections in proptest::collection::vec((0usize..3, 0u8..6, any::<u32>(), 0u64..40), 1..15),
    ) {
        for log in run_plan(latency, &injections, 3) {
            for w in log.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "time went backwards: {w:?}");
            }
        }
    }

    /// A relayed message arrives exactly `latency` ticks after each hop.
    #[test]
    fn latency_is_respected(latency in 1u64..10, hops in 1u8..5) {
        let logs = run_plan(latency, &[(0, hops, 7, 0)], 8);
        let mut times: Vec<u64> = logs.into_iter().flatten().map(|(t, _)| t).collect();
        times.sort_unstable();
        for w in times.windows(2) {
            prop_assert_eq!(w[1] - w[0], latency);
        }
    }
}
