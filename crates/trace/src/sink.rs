//! The shared trace collector: sampling decisions, hop recording, and
//! aggregate views (histograms, weakening summary, JSONL export).

use std::collections::BTreeMap;
use std::sync::Mutex;

use layercake_event::{TraceContext, TraceId};
use layercake_metrics::{Histogram, StageHistogram, StageWeakening};
use layercake_sim::SimTime;

use crate::hop::{EventTrace, HopRecord, HopVerdict};

/// Collects sampled event traces for one overlay run.
///
/// The sink is shared (behind `Arc`) by the publisher side — which decides
/// sampling and stamps [`TraceContext`]s — and by every instrumented node,
/// which appends [`HopRecord`]s. Internally a `Mutex` guards the state;
/// the simulator is single-threaded, so the lock is uncontended and exists
/// only to keep the sink `Sync` without `unsafe`.
///
/// Sampling is counter-based and deterministic: publish number `n` is
/// traced iff `n % sample_every == 0`. With the deterministic simulator
/// this makes whole trace logs reproducible byte-for-byte across runs with
/// identical seeds and fault plans.
#[derive(Debug)]
pub struct TraceSink {
    inner: Mutex<SinkState>,
}

#[derive(Debug)]
struct SinkState {
    sample_every: u64,
    published: u64,
    traces: Vec<EventTrace>,
}

impl TraceSink {
    /// Creates a sink sampling 1-in-`sample_every` published events
    /// (`1` = trace everything; `0` is treated as `1` — callers that want
    /// tracing *off* simply don't construct a sink).
    #[must_use]
    pub fn new(sample_every: u64) -> Self {
        Self {
            inner: Mutex::new(SinkState {
                sample_every: sample_every.max(1),
                published: 0,
                traces: Vec::new(),
            }),
        }
    }

    /// The configured sampling period.
    #[must_use]
    pub fn sample_every(&self) -> u64 {
        self.lock().sample_every
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SinkState> {
        self.inner.lock().expect("trace sink lock poisoned")
    }

    /// Counts a publish and, if it falls on the sampling grid, opens a new
    /// trace and returns the context to stamp onto the envelope.
    pub fn begin_trace(&self, class: &str, seq: u64, now: SimTime) -> Option<TraceContext> {
        let mut state = self.lock();
        let n = state.published;
        state.published += 1;
        if !n.is_multiple_of(state.sample_every) {
            return None;
        }
        let id = TraceId(state.traces.len() as u64);
        state.traces.push(EventTrace {
            id,
            class: class.to_owned(),
            seq,
            published_at: now,
            hops: Vec::new(),
        });
        Some(TraceContext::new(id, now.ticks()))
    }

    /// Appends a hop observation to the trace named by `ctx`. Hops for
    /// unknown trace ids (possible only if contexts outlive the sink they
    /// came from) are dropped.
    pub fn record_hop(&self, ctx: &TraceContext, hop: HopRecord) {
        let mut state = self.lock();
        if let Some(trace) = state.traces.get_mut(ctx.id.0 as usize) {
            trace.hops.push(hop);
        }
    }

    /// Number of events that were sampled into traces.
    #[must_use]
    pub fn traced_count(&self) -> u64 {
        self.lock().traces.len() as u64
    }

    /// Total publishes observed (sampled or not).
    #[must_use]
    pub fn published_count(&self) -> u64 {
        self.lock().published
    }

    /// A snapshot of one trace.
    #[must_use]
    pub fn trace(&self, id: TraceId) -> Option<EventTrace> {
        self.lock().traces.get(id.0 as usize).cloned()
    }

    /// A snapshot of all traces, in trace-id (= publish) order.
    #[must_use]
    pub fn traces(&self) -> Vec<EventTrace> {
        self.lock().traces.clone()
    }

    /// Per-stage histograms of incoming-hop latency, ordered by stage
    /// ascending. Every traced arrival contributes one sample, including
    /// duplicate copies created by link faults — they are real traffic.
    #[must_use]
    pub fn hop_histograms(&self) -> Vec<StageHistogram> {
        let state = self.lock();
        let mut by_stage: BTreeMap<usize, Histogram> = BTreeMap::new();
        for trace in &state.traces {
            for hop in &trace.hops {
                if hop.verdict.is_flow_event() {
                    continue; // throttle/shed records are not arrivals
                }
                by_stage
                    .entry(hop.stage)
                    .or_default()
                    .record(hop.hop_latency);
            }
        }
        by_stage
            .into_iter()
            .map(|(stage, hist)| StageHistogram { stage, hist })
            .collect()
    }

    /// End-to-end publish→deliver latency histogram: one sample per
    /// `Delivered` hop across all traces (an event delivered to several
    /// subscribers contributes one sample each).
    #[must_use]
    pub fn e2e_histogram(&self) -> Histogram {
        let state = self.lock();
        let mut hist = Histogram::new();
        for trace in &state.traces {
            for hop in &trace.hops {
                if hop.verdict == HopVerdict::Delivered {
                    hist.record(hop.arrival.since(trace.published_at).ticks());
                }
            }
        }
        hist
    }

    /// Per-stage weakening summary over all traces: arrivals, admissions,
    /// and false positives (see [`StageWeakening`] for the stage-0 vs
    /// stage-k semantics).
    #[must_use]
    pub fn weakening_summary(&self) -> Vec<StageWeakening> {
        let state = self.lock();
        let mut by_stage: BTreeMap<usize, StageWeakening> = BTreeMap::new();
        for trace in &state.traces {
            for hop in &trace.hops {
                if hop.verdict.is_flow_event() {
                    continue; // throttle/shed records are not arrivals
                }
                let w = by_stage.entry(hop.stage).or_insert_with(|| StageWeakening {
                    stage: hop.stage,
                    ..StageWeakening::default()
                });
                w.arrivals += 1;
                if hop.verdict.admitted() {
                    w.matched += 1;
                }
                let fp = if hop.stage == 0 {
                    hop.verdict.rejected_at_stage0()
                } else {
                    hop.verdict.admitted() && !trace.delivery_beneath(hop)
                };
                if fp {
                    w.false_positives += 1;
                }
            }
        }
        by_stage.into_values().collect()
    }

    /// Serializes every trace as one JSON object per line (JSONL), in
    /// trace-id order. Deterministic: same seeds + fault plans ⇒ identical
    /// bytes.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let state = self.lock();
        let mut out = String::new();
        for trace in &state.traces {
            out.push_str(&serde_json::to_string(trace).expect("trace serialization"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hop::EXTERNAL_SOURCE;

    fn record_simple_trace(sink: &TraceSink, seq: u64, deliver: bool) -> Option<TraceContext> {
        let ctx = sink.begin_trace("Stock", seq, SimTime::from_ticks(seq))?;
        sink.record_hop(
            &ctx,
            HopRecord {
                node: "root".to_owned(),
                node_id: 1,
                from_id: EXTERNAL_SOURCE,
                stage: 1,
                shard: 0,
                arrival: SimTime::from_ticks(seq + 1),
                hop_latency: 1,
                verdict: HopVerdict::Forwarded { dests: 1 },
            },
        );
        sink.record_hop(
            &ctx,
            HopRecord {
                node: "sub".to_owned(),
                node_id: 2,
                from_id: 1,
                stage: 0,
                shard: 0,
                arrival: SimTime::from_ticks(seq + 3),
                hop_latency: 2,
                verdict: if deliver {
                    HopVerdict::Delivered
                } else {
                    HopVerdict::RejectedByOriginal
                },
            },
        );
        Some(ctx)
    }

    #[test]
    fn sampling_one_in_n() {
        let sink = TraceSink::new(3);
        let mut sampled = 0;
        for i in 0..10 {
            if record_simple_trace(&sink, i, true).is_some() {
                sampled += 1;
            }
        }
        // Publishes 0, 3, 6, 9 fall on the grid.
        assert_eq!(sampled, 4);
        assert_eq!(sink.traced_count(), 4);
        assert_eq!(sink.published_count(), 10);
        assert_eq!(sink.sample_every(), 3);
    }

    #[test]
    fn zero_sampling_means_every_event() {
        let sink = TraceSink::new(0);
        assert_eq!(sink.sample_every(), 1);
    }

    #[test]
    fn histograms_aggregate_hops_and_deliveries() {
        let sink = TraceSink::new(1);
        for i in 0..5 {
            record_simple_trace(&sink, i, i % 2 == 0);
        }
        let stages = sink.hop_histograms();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].stage, 0);
        assert_eq!(stages[0].hist.count(), 5);
        assert_eq!(stages[0].hist.max(), 2);
        assert_eq!(stages[1].stage, 1);
        let e2e = sink.e2e_histogram();
        // Deliveries at i = 0, 2, 4; each e2e latency is 3 ticks.
        assert_eq!(e2e.count(), 3);
        assert_eq!(e2e.p50(), 3);
    }

    #[test]
    fn weakening_counts_false_positives_per_stage() {
        let sink = TraceSink::new(1);
        record_simple_trace(&sink, 0, true);
        record_simple_trace(&sink, 1, false);
        let w = sink.weakening_summary();
        assert_eq!(w.len(), 2);
        // Stage 0: two arrivals, one delivered, one rejected-by-original.
        assert_eq!(w[0].stage, 0);
        assert_eq!(w[0].arrivals, 2);
        assert_eq!(w[0].matched, 1);
        assert_eq!(w[0].false_positives, 1);
        // Stage 1: the rejected trace's forward had no delivery beneath.
        assert_eq!(w[1].stage, 1);
        assert_eq!(w[1].arrivals, 2);
        assert_eq!(w[1].matched, 2);
        assert_eq!(w[1].false_positives, 1);
        assert!((w[1].fp_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jsonl_is_one_line_per_trace_and_deterministic() {
        let make = || {
            let sink = TraceSink::new(2);
            for i in 0..6 {
                record_simple_trace(&sink, i, true);
            }
            sink.to_jsonl()
        };
        let a = make();
        let b = make();
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 3);
        assert!(a.lines().all(|l| l.starts_with('{')));
    }

    #[test]
    fn unknown_trace_ids_are_dropped() {
        let sink = TraceSink::new(1);
        let bogus = TraceContext::new(TraceId(99), 0);
        sink.record_hop(
            &bogus,
            HopRecord {
                node: "x".to_owned(),
                node_id: 0,
                from_id: 0,
                stage: 0,
                shard: 0,
                arrival: SimTime::ZERO,
                hop_latency: 0,
                verdict: HopVerdict::NoMatch,
            },
        );
        assert_eq!(sink.traced_count(), 0);
    }
}
