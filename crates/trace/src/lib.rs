//! Sampled per-event tracing for the multi-stage filtering overlay.
//!
//! The paper's architecture distributes filtering work across stages —
//! progressively *weakened* covering filters at stages k..1, the original
//! subscription only at stage 0 (Section 4) — so understanding a run means
//! being able to answer, for an individual event:
//!
//! * **where did it go?** — the tree of broker hops it traversed;
//! * **how long did each hop take, in virtual time?** — per-stage hop
//!   latency and end-to-end publish→deliver latency;
//! * **why did it (not) reach subscriber Y?** — which covering filter
//!   matched or rejected it at each stage, and whether a stage-k covering
//!   filter admitted traffic the stage-0 original filter later rejected
//!   (Proposition 1's false-positive cost, observed empirically).
//!
//! Tracing is *sampled*: the publisher side stamps a tiny `Copy`
//! [`TraceContext`] onto 1-in-N envelopes ([`TraceSink::begin_trace`]),
//! and instrumented nodes append [`HopRecord`]s to the shared
//! [`TraceSink`]. Unsampled envelopes carry `None` and the hot path does
//! no per-event allocation or locking. All latencies are integer ticks of
//! the deterministic simulator, so traces — and the JSONL export
//! ([`TraceSink::to_jsonl`]) — are byte-identical across runs with the
//! same seeds and fault plans.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hop;
mod sink;

pub use hop::{EventTrace, HopRecord, HopVerdict, EXTERNAL_SOURCE};
pub use layercake_event::{TraceContext, TraceId};
pub use sink::TraceSink;
