//! Per-hop trace records and per-event delivery provenance.

use layercake_event::TraceId;
use layercake_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Sentinel `from_id` for the external publisher injecting an event into
/// the overlay (there is no simulated actor on the sending side).
pub const EXTERNAL_SOURCE: u64 = u64::MAX;

/// What a node decided about a traced arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HopVerdict {
    /// A broker's covering-filter table matched: the event was forwarded
    /// to this many next hops (children and/or subscriber runtimes).
    Forwarded {
        /// Number of destinations the event was forwarded to.
        dests: u32,
    },
    /// No covering filter matched at a broker — traffic stops here.
    NoMatch,
    /// The subscriber runtime's original filter matched and the event was
    /// delivered to the application.
    Delivered,
    /// The original (stage-0) declarative filter rejected an event that
    /// some upstream covering filter had admitted — a weakening false
    /// positive.
    RejectedByOriginal,
    /// The declarative filter matched but the subscriber's opaque residual
    /// predicate (closure over the decoded event object) rejected it.
    RejectedByResidual,
    /// The original filter matched but the event had already been
    /// delivered (duplicate suppressed by exactly-once bookkeeping).
    Duplicate,
    /// Flow control queued this copy in a bounded egress queue to wait
    /// for downstream credit — delayed, not dropped.
    Throttled {
        /// Egress-queue depth at enqueue time (this event included).
        depth: u32,
    },
    /// Overload protection dropped this copy before it reached the
    /// downstream: the bounded egress queue was full, or the
    /// downstream's circuit breaker was open.
    Shed {
        /// Actor id of the downstream the copy was headed for.
        dest: u64,
        /// `true` when an open circuit breaker fast-failed the copy,
        /// `false` for a queue-overflow shed.
        breaker: bool,
    },
}

impl HopVerdict {
    /// `true` when the node's filters admitted the event (it was forwarded
    /// onward, delivered, or would have been delivered were it not a
    /// duplicate).
    #[must_use]
    pub fn admitted(&self) -> bool {
        matches!(
            self,
            HopVerdict::Forwarded { .. } | HopVerdict::Delivered | HopVerdict::Duplicate
        )
    }

    /// `true` for the stage-0 outcomes where the subscriber runtime
    /// rejected an event its host broker had forwarded.
    #[must_use]
    pub fn rejected_at_stage0(&self) -> bool {
        matches!(
            self,
            HopVerdict::RejectedByOriginal | HopVerdict::RejectedByResidual
        )
    }

    /// `true` for flow-control observations ([`HopVerdict::Throttled`],
    /// [`HopVerdict::Shed`]): these describe what happened to an *outgoing*
    /// copy at a node the event had already arrived at, so they are not
    /// arrivals and are excluded from hop-latency and weakening
    /// aggregation.
    #[must_use]
    pub fn is_flow_event(&self) -> bool {
        matches!(self, HopVerdict::Throttled { .. } | HopVerdict::Shed { .. })
    }

    /// Human-readable one-line description used by `explain()` reports.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            HopVerdict::Forwarded { dests } => {
                format!("covering filter matched -> forwarded to {dests} destination(s)")
            }
            HopVerdict::NoMatch => String::from("no covering filter matched -> traffic stops"),
            HopVerdict::Delivered => String::from("original subscription matched -> DELIVERED"),
            HopVerdict::RejectedByOriginal => {
                String::from("REJECTED by the original subscription (covering false positive)")
            }
            HopVerdict::RejectedByResidual => {
                String::from("rejected by the subscriber's residual predicate")
            }
            HopVerdict::Duplicate => String::from("duplicate of an already-delivered event"),
            HopVerdict::Throttled { depth } => {
                format!("throttled by backpressure -> queued for credit (egress depth {depth})")
            }
            HopVerdict::Shed {
                dest,
                breaker: false,
            } => {
                format!("SHED under overload toward actor#{dest} (egress queue full)")
            }
            HopVerdict::Shed {
                dest,
                breaker: true,
            } => {
                format!("SHED by an open circuit breaker toward actor#{dest}")
            }
        }
    }
}

/// One node's observation of a traced event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopRecord {
    /// Human-readable node label (`"N2.1"`, `"sub-0005"`).
    pub node: String,
    /// The node's actor id, linking hops into a forwarding tree.
    pub node_id: u64,
    /// Actor id of the hop that sent this copy ([`EXTERNAL_SOURCE`] for
    /// the publish edge into the root).
    pub from_id: u64,
    /// The node's stage (0 = subscriber runtime).
    pub stage: usize,
    /// Matcher-shard provenance: which replica of the node observed the
    /// event. Always 0 in the simulator (one replica per broker); the
    /// sharded wall-clock runtime records the shard thread that matched
    /// the event's class.
    pub shard: u32,
    /// Virtual time at which the event arrived at this node (wall-clock
    /// nanoseconds since runtime start under the real-thread runtime).
    pub arrival: SimTime,
    /// Ticks since the previous hop forwarded this copy (includes link
    /// latency, fault-injection jitter, and any retransmission delay).
    pub hop_latency: u64,
    /// The node's filtering decision.
    pub verdict: HopVerdict,
}

/// The full record of one sampled event: identity, publish time, and every
/// hop it made through the overlay (in global virtual-time order).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventTrace {
    /// The trace id carried by the envelope.
    pub id: TraceId,
    /// Event class name.
    pub class: String,
    /// Publisher-assigned sequence number.
    pub seq: u64,
    /// Virtual time of publication.
    pub published_at: SimTime,
    /// Hop records, appended in processing order. Because the simulator
    /// processes messages in global virtual-time order, a hop's upstream
    /// hop always precedes it in this list.
    pub hops: Vec<HopRecord>,
}

impl EventTrace {
    /// `true` if any subscriber delivered the event.
    #[must_use]
    pub fn delivered(&self) -> bool {
        self.hops.iter().any(|h| h.verdict == HopVerdict::Delivered)
    }

    /// End-to-end publish→deliver latency in ticks for the *first*
    /// delivery, if any.
    #[must_use]
    pub fn e2e_latency(&self) -> Option<u64> {
        self.hops
            .iter()
            .find(|h| h.verdict == HopVerdict::Delivered)
            .map(|h| h.arrival.since(self.published_at).ticks())
    }

    /// The first *arrival* hop recorded at a node label, if the event
    /// reached it. Flow-control observations (throttle/shed records for
    /// outgoing copies) at the same node are skipped; see
    /// [`EventTrace::flow_events_at`].
    #[must_use]
    pub fn hop_at(&self, label: &str) -> Option<&HopRecord> {
        self.hops
            .iter()
            .find(|h| h.node == label && !h.verdict.is_flow_event())
    }

    /// All flow-control observations (throttles and sheds of outgoing
    /// copies) recorded at a node label.
    #[must_use]
    pub fn flow_events_at(&self, label: &str) -> Vec<&HopRecord> {
        self.hops
            .iter()
            .filter(|h| h.node == label && h.verdict.is_flow_event())
            .collect()
    }

    /// `true` if overload protection dropped at least one copy of this
    /// event somewhere in the overlay.
    #[must_use]
    pub fn shed(&self) -> bool {
        self.hops
            .iter()
            .any(|h| matches!(h.verdict, HopVerdict::Shed { .. }))
    }

    /// `true` if any `Delivered` hop lies strictly downstream of `hop` in
    /// the forwarding tree (following `from_id -> node_id` edges).
    #[must_use]
    pub fn delivery_beneath(&self, hop: &HopRecord) -> bool {
        let mut reachable = vec![hop.node_id];
        // Fixpoint over the hop list; hop counts per trace are tiny.
        loop {
            let mut grew = false;
            for h in &self.hops {
                if reachable.contains(&h.from_id) && !reachable.contains(&h.node_id) {
                    if h.verdict == HopVerdict::Delivered {
                        return true;
                    }
                    reachable.push(h.node_id);
                    grew = true;
                }
            }
            if !grew {
                return false;
            }
        }
    }

    /// Broker hops (stage ≥ 1) whose covering filter admitted the event
    /// although no delivery ever happened downstream — pure weakening
    /// false-positive traffic (Proposition 1's cost).
    #[must_use]
    pub fn false_positive_hops(&self) -> Vec<&HopRecord> {
        self.hops
            .iter()
            .filter(|h| h.stage >= 1 && h.verdict.admitted() && !self.delivery_beneath(h))
            .collect()
    }

    /// Renders a "why did this event (not) reach subscriber Y" report.
    ///
    /// `path` is the node-label chain from the root broker down to the
    /// subscriber of interest (e.g. `["N3.1", "N2.1", "N1.2", "sub-0005"]`);
    /// the overlay facade knows the topology and builds it.
    #[must_use]
    pub fn explain(&self, path: &[String]) -> String {
        let mut out = format!(
            "{}: {} event seq={} published at {}\n",
            self.id, self.class, self.seq, self.published_at
        );
        if let Some(target) = path.last() {
            out.push_str(&format!("path to {}: {}\n", target, path.join(" -> ")));
        }
        let mut deepest: Option<&HopRecord> = None;
        let mut reached_target = false;
        for (i, label) in path.iter().enumerate() {
            match self.hop_at(label) {
                Some(hop) => {
                    out.push_str(&format!(
                        "  {} (+{}) {} [stage {}] {}\n",
                        hop.arrival,
                        hop.hop_latency,
                        hop.node,
                        hop.stage,
                        hop.verdict.describe()
                    ));
                    for flow in self.flow_events_at(label) {
                        out.push_str(&format!(
                            "  {} (+0) {} [stage {}] {}\n",
                            flow.arrival,
                            flow.node,
                            flow.stage,
                            flow.verdict.describe()
                        ));
                    }
                    reached_target = i + 1 == path.len();
                    deepest = Some(hop);
                }
                None => {
                    out.push_str(&format!("  {label}: event never arrived\n"));
                    break;
                }
            }
        }
        out.push_str(&self.path_verdict(path, deepest, reached_target));
        out
    }

    /// The closing "verdict:" paragraph of an [`EventTrace::explain`]
    /// report.
    fn path_verdict(
        &self,
        path: &[String],
        deepest: Option<&HopRecord>,
        reached_target: bool,
    ) -> String {
        let Some(hop) = deepest else {
            return String::from("verdict: the event never entered this path.\n");
        };
        if !reached_target {
            return match hop.verdict {
                HopVerdict::NoMatch => format!(
                    "verdict: correctly pre-filtered — no covering filter matched at {} \
                     (stage {}), so no traffic flowed below it.\n",
                    hop.node, hop.stage
                ),
                HopVerdict::Forwarded { .. }
                    if self
                        .flow_events_at(&hop.node)
                        .iter()
                        .any(|h| matches!(h.verdict, HopVerdict::Shed { .. })) =>
                {
                    format!(
                        "verdict: died under overload — {} (stage {}) matched and would \
                         have forwarded the event, but overload protection shed the copy \
                         before it left the broker.\n",
                        hop.node, hop.stage
                    )
                }
                HopVerdict::Forwarded { .. } => format!(
                    "verdict: pre-filtered toward this subscriber — {} (stage {}) forwarded \
                     the event elsewhere, but the covering filter routing toward the next \
                     node on this path did not match.\n",
                    hop.node, hop.stage
                ),
                _ => format!(
                    "verdict: the path ends at {} (stage {}): {}.\n",
                    hop.node,
                    hop.stage,
                    hop.verdict.describe()
                ),
            };
        }
        match hop.verdict {
            HopVerdict::Delivered => format!(
                "verdict: delivered end-to-end in {} ticks (publish -> deliver).\n",
                hop.arrival.since(self.published_at).ticks()
            ),
            HopVerdict::Duplicate => String::from(
                "verdict: duplicate — an earlier copy was already delivered \
                 (exactly-once suppression).\n",
            ),
            HopVerdict::RejectedByOriginal => {
                // The weakening stage responsible is the last broker on the
                // path that admitted the event: its covering filter is the
                // least-weakened one that still disagreed with stage 0.
                let culprit = path[..path.len().saturating_sub(1)]
                    .iter()
                    .rev()
                    .filter_map(|l| self.hop_at(l))
                    .find(|h| h.verdict.admitted());
                match culprit {
                    Some(c) => format!(
                        "verdict: false positive — the stage {} covering filter at {} \
                         admitted the event, but the original subscription at {} rejected \
                         it; the weakening applied at stage {} let it through.\n",
                        c.stage, c.node, hop.node, c.stage
                    ),
                    None => String::from(
                        "verdict: false positive — rejected by the original subscription.\n",
                    ),
                }
            }
            HopVerdict::RejectedByResidual => format!(
                "verdict: the declarative filters matched, but the opaque residual \
                 predicate at {} rejected the decoded event object (invisible to \
                 brokers by design).\n",
                hop.node
            ),
            _ => format!(
                "verdict: the path ends at {} (stage {}): {}.\n",
                hop.node,
                hop.stage,
                hop.verdict.describe()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(
        node: &str,
        node_id: u64,
        from_id: u64,
        stage: usize,
        arrival: u64,
        verdict: HopVerdict,
    ) -> HopRecord {
        HopRecord {
            node: node.to_owned(),
            node_id,
            from_id,
            stage,
            shard: 0,
            arrival: SimTime::from_ticks(arrival),
            hop_latency: 1,
            verdict,
        }
    }

    fn sample_trace() -> EventTrace {
        // root(10) -> mid(11) -> leaf(12) -> sub(13): delivered.
        //          \-> mid2(14): forwarded to leaf2(15) which rejects at
        //              stage 0's original filter -> mid2+leaf2 are FPs.
        EventTrace {
            id: TraceId(1),
            class: "Biblio".to_owned(),
            seq: 7,
            published_at: SimTime::from_ticks(3),
            hops: vec![
                hop(
                    "N3.1",
                    10,
                    EXTERNAL_SOURCE,
                    3,
                    4,
                    HopVerdict::Forwarded { dests: 2 },
                ),
                hop("N2.1", 11, 10, 2, 5, HopVerdict::Forwarded { dests: 1 }),
                hop("N2.2", 14, 10, 2, 5, HopVerdict::Forwarded { dests: 1 }),
                hop("N1.1", 12, 11, 1, 6, HopVerdict::Forwarded { dests: 1 }),
                hop("sub-a", 13, 12, 0, 7, HopVerdict::Delivered),
                hop("sub-b", 15, 14, 0, 6, HopVerdict::RejectedByOriginal),
            ],
        }
    }

    #[test]
    fn delivery_and_latency() {
        let t = sample_trace();
        assert!(t.delivered());
        assert_eq!(t.e2e_latency(), Some(4));
        assert!(t.hop_at("N2.1").is_some());
        assert!(t.hop_at("nope").is_none());
    }

    #[test]
    fn false_positives_are_subtrees_without_delivery() {
        let t = sample_trace();
        let fps: Vec<&str> = t
            .false_positive_hops()
            .iter()
            .map(|h| h.node.as_str())
            .collect();
        // N2.2 forwarded toward sub-b which rejected: a weakening FP.
        // N3.1/N2.1/N1.1 have a delivery beneath them, so they are not.
        assert_eq!(fps, vec!["N2.2"]);
    }

    #[test]
    fn explain_delivered_path() {
        let t = sample_trace();
        let path: Vec<String> = ["N3.1", "N2.1", "N1.1", "sub-a"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let report = t.explain(&path);
        assert!(report.contains("trace#1"));
        assert!(report.contains("delivered end-to-end in 4 ticks"));
        assert!(report.contains("[stage 3]"));
    }

    #[test]
    fn explain_attributes_false_positive_to_weakening_stage() {
        let t = sample_trace();
        let path: Vec<String> = ["N3.1", "N2.2", "sub-b"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let report = t.explain(&path);
        assert!(report.contains("false positive"));
        assert!(report.contains("the weakening applied at stage 2 let it through"));
        assert!(report.contains("sub-b"));
    }

    #[test]
    fn explain_never_arrived() {
        let t = sample_trace();
        let path: Vec<String> = ["N3.1", "N2.1", "N1.9", "sub-z"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let report = t.explain(&path);
        assert!(report.contains("N1.9: event never arrived"));
        assert!(report.contains("pre-filtered toward this subscriber"));
    }

    /// root forwards, but the copy toward N2.3 is shed by the bounded
    /// egress queue; the subscriber below N2.3 never sees the event.
    fn shed_trace() -> EventTrace {
        EventTrace {
            id: TraceId(2),
            class: "Biblio".to_owned(),
            seq: 9,
            published_at: SimTime::from_ticks(10),
            hops: vec![
                hop(
                    "N3.1",
                    10,
                    EXTERNAL_SOURCE,
                    3,
                    11,
                    HopVerdict::Forwarded { dests: 2 },
                ),
                hop(
                    "N3.1",
                    10,
                    EXTERNAL_SOURCE,
                    3,
                    11,
                    HopVerdict::Shed {
                        dest: 16,
                        breaker: false,
                    },
                ),
                hop("N2.1", 11, 10, 2, 12, HopVerdict::Forwarded { dests: 1 }),
            ],
        }
    }

    #[test]
    fn hop_at_skips_flow_events_and_flow_events_are_listed() {
        let t = shed_trace();
        let arrival = t.hop_at("N3.1").unwrap();
        assert_eq!(arrival.verdict, HopVerdict::Forwarded { dests: 2 });
        let flow = t.flow_events_at("N3.1");
        assert_eq!(flow.len(), 1);
        assert!(matches!(flow[0].verdict, HopVerdict::Shed { dest: 16, .. }));
        assert!(t.shed());
        assert!(!sample_trace().shed());
    }

    #[test]
    fn explain_attributes_death_to_overload_shed() {
        let t = shed_trace();
        let path: Vec<String> = ["N3.1", "N2.3", "sub-c"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let report = t.explain(&path);
        assert!(report.contains("SHED under overload toward actor#16"));
        assert!(report.contains("N2.3: event never arrived"));
        assert!(report.contains("died under overload"));
        assert!(report.contains("shed the copy"));
    }

    #[test]
    fn throttled_describes_depth_and_is_flow_event() {
        let v = HopVerdict::Throttled { depth: 12 };
        assert!(v.is_flow_event());
        assert!(!v.admitted());
        assert!(v.describe().contains("egress depth 12"));
        let b = HopVerdict::Shed {
            dest: 3,
            breaker: true,
        };
        assert!(b.describe().contains("circuit breaker"));
    }

    #[test]
    fn serde_round_trip() {
        let t = sample_trace();
        let json = serde_json::to_string(&t).unwrap();
        let back: EventTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
