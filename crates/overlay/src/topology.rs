//! Shared hierarchy construction for the simulator and the wall-clock
//! runtime.
//!
//! Both front ends must build *identical* broker hierarchies from an
//! [`OverlayConfig`] — same labels, same per-broker seeds, same
//! parent/child wiring, same id assignment — so that a protocol trace
//! from the runtime can be compared hop-for-hop against the
//! deterministic simulation. This module is the single source of that
//! construction; [`crate::OverlaySim`] consumes it by inserting each
//! [`TopologyNode`] into the discrete-event world in order, and
//! `layercake-rt` consumes it by spawning one thread per node.

use std::sync::Arc;

use layercake_event::TypeRegistry;
use layercake_filter::{standardize, Filter, FilterError, FilterId};
use layercake_sim::ActorId;
use layercake_trace::TraceSink;

use crate::broker::{Broker, BrokerSetup};
use crate::config::OverlayConfig;
use crate::error::OverlayError;
use crate::subscriber::{ResidualFilter, SubscriberNode, SubscriberSetup};

/// One broker in a constructed hierarchy, with its wiring made explicit
/// so transports can route without peeking into broker internals.
#[derive(Debug)]
pub struct TopologyNode {
    /// The node id this broker expects: brokers are numbered level by
    /// level from stage 1 upward, so level `l` occupies a contiguous id
    /// range and the root is the highest id. The simulator's
    /// `World::add_actor` reproduces exactly this numbering when nodes
    /// are inserted in order.
    pub id: ActorId,
    /// Filtering stage (level + 1; subscribers sit at stage 0).
    pub stage: usize,
    /// Parent broker, `None` for the root.
    pub parent: Option<ActorId>,
    /// Child brokers one level down (empty at the lowest level, whose
    /// children are subscribers joining later).
    pub children: Vec<ActorId>,
    /// The protocol state machine itself.
    pub broker: Broker,
}

/// Builds the broker hierarchy described by `cfg`.
///
/// Brokers are returned in id order (stage 1 first, root last) with
/// deterministic labels (`N<stage>.<i>`) and per-broker RNG seeds derived
/// from `cfg.seed`, exactly as the simulator has always built them.
///
/// # Errors
///
/// Returns the [`OverlayError`] produced by [`OverlayConfig::validate`].
pub fn build_brokers(
    cfg: &OverlayConfig,
    registry: &Arc<TypeRegistry>,
    trace: Option<&Arc<TraceSink>>,
) -> Result<Vec<TopologyNode>, OverlayError> {
    cfg.validate()?;

    // Brokers are created level by level from stage 1 upward, so node
    // ids are predictable: level l occupies offsets[l]..offsets[l+1].
    let mut offsets = Vec::with_capacity(cfg.levels.len() + 1);
    let mut acc = 0usize;
    for &n in &cfg.levels {
        offsets.push(acc);
        acc += n;
    }
    offsets.push(acc);

    let parent_of = |level: usize, i: usize| -> Option<ActorId> {
        if level + 1 >= cfg.levels.len() {
            None
        } else {
            let idx = i * cfg.levels[level + 1] / cfg.levels[level];
            Some(ActorId(offsets[level + 1] + idx))
        }
    };

    let mut nodes = Vec::with_capacity(acc);
    for (level, &count) in cfg.levels.iter().enumerate() {
        for i in 0..count {
            let stage = level + 1;
            let children: Vec<ActorId> = if level == 0 {
                Vec::new()
            } else {
                (0..cfg.levels[level - 1])
                    .filter(|&c| parent_of(level - 1, c) == Some(ActorId(offsets[level] + i)))
                    .map(|c| ActorId(offsets[level - 1] + c))
                    .collect()
            };
            let parent = parent_of(level, i);
            let broker = Broker::new(BrokerSetup {
                label: format!("N{stage}.{}", i + 1),
                stage,
                parent,
                children: children.clone(),
                registry: Arc::clone(registry),
                placement: cfg.placement,
                index: cfg.index,
                covering_collapse: cfg.covering_collapse,
                aggregation_enabled: cfg.aggregation_enabled,
                wildcard_stage_placement: cfg.wildcard_stage_placement,
                leases_enabled: cfg.leases_enabled,
                ttl: cfg.ttl,
                reliability_enabled: cfg.reliability_enabled,
                reliability_window: cfg.reliability_window,
                flow_control_enabled: cfg.flow_control_enabled,
                queue_capacity: cfg.queue_capacity,
                flow_tick: cfg.flow_tick,
                breaker_failure_threshold: cfg.breaker_failure_threshold,
                breaker_backoff: cfg.breaker_backoff,
                seed: cfg.seed ^ (offsets[level] + i) as u64,
                trace: trace.cloned(),
            });
            nodes.push(TopologyNode {
                id: ActorId(offsets[level] + i),
                stage,
                parent,
                children,
                broker,
            });
        }
    }
    Ok(nodes)
}

/// Standardizes a disjunctive subscription's branch filters and assigns
/// them consecutive [`FilterId`]s starting at `first_id`.
///
/// # Errors
///
/// * [`FilterError::MissingClass`] if `filters` is empty or a branch has
///   no class constraint.
/// * [`FilterError::UnknownClass`] if a branch's class is unregistered.
/// * Standardization errors for unknown attributes or kind mismatches.
pub fn standardize_branches(
    registry: &TypeRegistry,
    filters: Vec<Filter>,
    first_id: u64,
) -> Result<Vec<(FilterId, Filter)>, FilterError> {
    if filters.is_empty() {
        return Err(FilterError::MissingClass);
    }
    let mut branches = Vec::with_capacity(filters.len());
    for (i, filter) in filters.into_iter().enumerate() {
        let class_id = filter.class().ok_or(FilterError::MissingClass)?;
        let class = registry.class(class_id).ok_or(FilterError::UnknownClass)?;
        let standardized = standardize(&filter, class)?;
        branches.push((FilterId(first_id + i as u64), standardized));
    }
    Ok(branches)
}

/// Builds a subscriber runtime wired to `root`, configured consistently
/// with the brokers built from the same `cfg`.
// One parameter per SubscriberSetup knob that isn't derived from `cfg`;
// bundling them into a second struct would just mirror SubscriberSetup.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn build_subscriber(
    cfg: &OverlayConfig,
    registry: &Arc<TypeRegistry>,
    root: ActorId,
    label: String,
    branches: Vec<(FilterId, Filter)>,
    residual: Option<Box<dyn ResidualFilter>>,
    trace: Option<&Arc<TraceSink>>,
    durable: bool,
) -> SubscriberNode {
    SubscriberNode::new(SubscriberSetup {
        label,
        branches,
        residual,
        registry: Arc::clone(registry),
        root,
        leases_enabled: cfg.leases_enabled,
        ttl: cfg.ttl,
        reliability_window: cfg.reliability_window,
        flow_control_enabled: cfg.flow_control_enabled,
        queue_capacity: cfg.queue_capacity,
        trace: trace.cloned(),
        durable,
    })
}
