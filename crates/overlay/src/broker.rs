//! The broker protocol machine: one intermediate node of the hierarchy.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use layercake_event::{Advertisement, ClassId, Envelope, StageMap, TraceContext, TypeRegistry};
use layercake_filter::{
    weaken_to_stage, AggDelta, AggTable, DestId, Filter, FilterTable, IndexKind,
};
use layercake_metrics::{DurabilityStats, NodeRecord, OverloadStats, PipelineStage, StageProfiler};
use layercake_sim::{ActorId, SimDuration, SimTime};
use layercake_trace::{HopRecord, HopVerdict, TraceSink, EXTERNAL_SOURCE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::PlacementPolicy;
use crate::ctx::NodeCtx;
use crate::flow::{FlowRx, FlowTx, Offer, Queued, Tick};
use crate::msg::{OverlayMsg, SubscriptionReq};
use crate::reliability::{LinkRx, LinkTx, RxOutcome};
use crate::wal::{DurableLog, LogConfig, LogStorage};

/// Timer tag: lease expiry sweep (Section 4.3, "REMOVE INVALID FILTERS").
const TAG_SWEEP: u64 = 1;
/// Timer tag: renew own filters at the parent ("EXTEND THE VALIDITY").
const TAG_RENEW: u64 = 2;
/// Timer tag: flow-control maintenance (stall probes, breaker clock).
/// Armed on demand — only while some egress queue is non-empty or a
/// breaker is mid-recovery — so quiescent overlays still drain fully.
const TAG_FLOW: u64 = 4;

/// Bound on unacknowledged durable deliveries in flight per
/// `(consumer, class)` stream: the broker never sends more than this
/// far past the consumer's acknowledged offset. The log is the
/// overflow buffer — a slow consumer's backlog stays on disk and is
/// paged out by its own acknowledgements, so its inbox growth is
/// bounded instead of tracking the publisher's rate.
const DURABLE_WINDOW: u64 = 64;

pub(crate) fn dest_of(actor: ActorId) -> DestId {
    DestId(actor.0 as u64)
}

// Destination ids are minted exclusively from actor ids by `dest_of`, so
// the conversion back is lossless; `as` keeps the event hot path free of
// panic branches.
pub(crate) fn actor_of(dest: DestId) -> ActorId {
    ActorId(dest.0 as usize)
}

/// Maps an actor id onto the trace wire format, folding the simulator's
/// external-sender sentinel onto the trace crate's.
pub(crate) fn trace_actor(actor: ActorId) -> u64 {
    if actor.0 == usize::MAX {
        EXTERNAL_SOURCE
    } else {
        actor.0 as u64
    }
}

/// The broker's subscription store: one entry per subscription
/// ([`FilterTable`], the paper's Figure 6 table), or the aggregated cover
/// forest ([`AggTable`]) when `OverlayConfig::aggregation_enabled` is set.
/// The wrappers present one read surface to the protocol machine; the two
/// *write* paths stay distinct because aggregation reports table changes as
/// live-entry deltas instead of a created/removed bool.
#[derive(Debug)]
enum BrokerTable {
    /// Per-subscription entries (optionally collapsed by covering on
    /// insert — the `covering_collapse` knob, which discards the covered
    /// filter instead of keeping it as recoverable bookkeeping).
    Plain(Box<FilterTable>),
    /// The refcounted cover forest: covered subscriptions are bookkeeping
    /// attached to their covering root and only roots are live entries.
    Agg(Box<AggTable>),
}

impl BrokerTable {
    fn new(kind: IndexKind, aggregation: bool) -> Self {
        if aggregation {
            BrokerTable::Agg(Box::new(AggTable::new(kind)))
        } else {
            BrokerTable::Plain(Box::new(FilterTable::new(kind)))
        }
    }

    /// Live entries — the number of filters the match loop evaluates.
    fn filter_count(&self) -> usize {
        match self {
            BrokerTable::Plain(t) => t.filter_count(),
            BrokerTable::Agg(t) => t.live_entries(),
        }
    }

    /// `<filter, dest>` pairs held as covered (non-live) bookkeeping;
    /// zero for the per-subscription table by definition.
    fn covered_subs(&self) -> usize {
        match self {
            BrokerTable::Plain(_) => 0,
            BrokerTable::Agg(t) => t.covered_subs(),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            BrokerTable::Plain(t) => t.is_empty(),
            BrokerTable::Agg(t) => t.is_empty(),
        }
    }

    /// Whether the table stores any filter for `dest` (live or covered).
    fn has_dest(&self, dest: DestId) -> bool {
        match self {
            BrokerTable::Plain(t) => t.filters_for(dest).next().is_some(),
            BrokerTable::Agg(t) => t.has_dest(dest),
        }
    }

    /// The filters stored for `dest` — exactly the forms a removal must
    /// name (weakened-to-this-stage; original even when covered).
    fn filters_for(&self, dest: DestId) -> Box<dyn Iterator<Item = &Filter> + '_> {
        match self {
            BrokerTable::Plain(t) => Box::new(t.filters_for(dest)),
            BrokerTable::Agg(t) => Box::new(t.filters_for(dest)),
        }
    }

    /// Live `<filter, id-list>` entries. Id-lists are materialized because
    /// the aggregated table derives them from refcounts on read.
    fn entries(&self) -> Box<dyn Iterator<Item = (&Filter, Vec<DestId>)> + '_> {
        match self {
            BrokerTable::Plain(t) => Box::new(t.iter().map(|(f, d)| (f, d.to_vec()))),
            BrokerTable::Agg(t) => Box::new(t.iter()),
        }
    }

    /// Strongest live filter covering `f`, with its destinations.
    fn find_cover(&self, f: &Filter, registry: &TypeRegistry) -> Option<(&Filter, Vec<DestId>)> {
        match self {
            BrokerTable::Plain(t) => t.find_cover(f, registry).map(|(c, d)| (c, d.to_vec())),
            BrokerTable::Agg(t) => t.find_cover(f, registry),
        }
    }

    /// Evaluates an event against the live entries (Figure 6's match loop).
    fn matches(
        &mut self,
        class: ClassId,
        meta: &layercake_event::EventData,
        registry: &TypeRegistry,
        out: &mut Vec<DestId>,
    ) {
        match self {
            BrokerTable::Plain(t) => t.matches(class, meta, registry, out),
            BrokerTable::Agg(t) => t.matches(class, meta, registry, out),
        }
    }
}

/// A broker node at stage ≥ 1 of the hierarchy.
///
/// Brokers store weakened filters in a `<filter, id-list>` table
/// ([`FilterTable`]), place incoming subscriptions per Figure 5(b), forward
/// events per Figure 6, and maintain soft-state leases for the filters their
/// children registered.
#[derive(Debug)]
pub struct Broker {
    label: String,
    stage: usize,
    parent: Option<ActorId>,
    children: Vec<ActorId>,
    children_set: HashSet<ActorId>,
    registry: Arc<TypeRegistry>,
    stage_maps: HashMap<ClassId, StageMap>,
    table: BrokerTable,
    /// Aggregation mode only: refcounts over the parent-stage weakened
    /// forms of the table's *live* roots. Two roots can weaken to the same
    /// upstream filter, so announcements are sent on the 0→1 edge and
    /// withdrawn on the 1→0 edge — the aggregated analogue of the plain
    /// table's `parent_needs` set difference.
    up_refs: HashMap<Filter, u32>,
    index: IndexKind,
    placement: PlacementPolicy,
    covering_collapse: bool,
    wildcard_stage_placement: bool,
    leases_enabled: bool,
    ttl: SimDuration,
    leases: HashMap<DestId, SimTime>,
    /// Buffered events for detached durable subscribers.
    parked: HashMap<DestId, Vec<Envelope>>,
    timers_started: bool,
    reliability_enabled: bool,
    reliability_window: usize,
    /// Receiver state of reliable links, keyed by the upstream sender.
    rx: HashMap<ActorId, LinkRx>,
    /// Sender state of reliable links, keyed by the downstream receiver.
    tx: HashMap<ActorId, LinkTx>,
    rng: StdRng,
    received: u64,
    matched: u64,
    evaluations: u64,
    bytes_received: u64,
    retransmitted: u64,
    dup_suppressed: u64,
    nacks_sent: u64,
    scratch: Vec<DestId>,
    flow_enabled: bool,
    queue_capacity: usize,
    flow_tick: SimDuration,
    breaker_threshold: u32,
    breaker_backoff: SimDuration,
    /// Sender-side flow state (credit window, egress queue, breaker) per
    /// downstream receiving data from this broker.
    flow_tx: HashMap<ActorId, FlowTx>,
    /// Receiver-side flow state (consumed counter, grant batching) per
    /// upstream sending data to this broker.
    flow_rx: HashMap<ActorId, FlowRx>,
    flow_timer_armed: bool,
    /// Per-broker overload counters, aggregated by the facade.
    overload: OverloadStats,
    /// Virtual service time charged per data message; models this broker's
    /// processing capacity (see [`layercake_sim::Actor::service_cost`]).
    service_time: Option<SimDuration>,
    /// Shared trace collector; `None` when tracing is disabled for the run.
    trace: Option<Arc<TraceSink>>,
    /// The durable segmented event log; `Some` when durability is enabled
    /// for this broker. Unlike every other field, the log's *storage*
    /// survives `on_restart` — that is the whole point.
    wal: Option<DurableLog>,
    /// Highest durable offset sent contiguously per `(consumer, class)`
    /// stream. Volatile: a restart resets it to the persisted acks, and
    /// the streams restart from there via `DurableBase`.
    durable_sent: HashMap<(u64, u32), u64>,
    /// Each stream's acknowledged offset as of the previous lease sweep;
    /// an ack sitting still below the log tail for a whole sweep means
    /// deliveries (or acks) were lost and the stream is restarted.
    durable_sweep_acked: HashMap<(u64, u32), u64>,
    /// The log tail at the moment each stream was last (re)opened.
    /// Catch-up records at or below this mark are re-read history and
    /// count as replays; records above it are first-time deliveries the
    /// window merely deferred (see [`DurableLog::note_replayed`]).
    durable_replay_hwm: HashMap<(u64, u32), u64>,
}

/// Construction parameters for a [`Broker`] (set by the overlay builder).
#[derive(Debug, Clone)]
pub(crate) struct BrokerSetup {
    pub label: String,
    pub stage: usize,
    pub parent: Option<ActorId>,
    pub children: Vec<ActorId>,
    pub registry: Arc<TypeRegistry>,
    pub placement: PlacementPolicy,
    pub index: IndexKind,
    pub covering_collapse: bool,
    pub aggregation_enabled: bool,
    pub wildcard_stage_placement: bool,
    pub leases_enabled: bool,
    pub ttl: SimDuration,
    pub reliability_enabled: bool,
    pub reliability_window: usize,
    pub flow_control_enabled: bool,
    pub queue_capacity: usize,
    pub flow_tick: SimDuration,
    pub breaker_failure_threshold: u32,
    pub breaker_backoff: SimDuration,
    pub seed: u64,
    pub trace: Option<Arc<TraceSink>>,
}

impl Broker {
    pub(crate) fn new(setup: BrokerSetup) -> Self {
        Self {
            rng: StdRng::seed_from_u64(setup.seed),
            children_set: setup.children.iter().copied().collect(),
            label: setup.label,
            stage: setup.stage,
            parent: setup.parent,
            children: setup.children,
            registry: setup.registry,
            stage_maps: HashMap::new(),
            table: BrokerTable::new(setup.index, setup.aggregation_enabled),
            up_refs: HashMap::new(),
            index: setup.index,
            placement: setup.placement,
            covering_collapse: setup.covering_collapse,
            wildcard_stage_placement: setup.wildcard_stage_placement,
            leases_enabled: setup.leases_enabled,
            ttl: setup.ttl,
            leases: HashMap::new(),
            parked: HashMap::new(),
            timers_started: false,
            reliability_enabled: setup.reliability_enabled,
            reliability_window: setup.reliability_window,
            rx: HashMap::new(),
            tx: HashMap::new(),
            received: 0,
            matched: 0,
            evaluations: 0,
            bytes_received: 0,
            retransmitted: 0,
            dup_suppressed: 0,
            nacks_sent: 0,
            scratch: Vec::new(),
            flow_enabled: setup.flow_control_enabled,
            queue_capacity: setup.queue_capacity,
            flow_tick: setup.flow_tick,
            breaker_threshold: setup.breaker_failure_threshold,
            breaker_backoff: setup.breaker_backoff,
            flow_tx: HashMap::new(),
            flow_rx: HashMap::new(),
            flow_timer_armed: false,
            overload: OverloadStats::default(),
            service_time: None,
            trace: setup.trace,
            wal: None,
            durable_sent: HashMap::new(),
            durable_sweep_acked: HashMap::new(),
            durable_replay_hwm: HashMap::new(),
        }
    }

    /// Attaches a durable event log backed by `storage` (opened and
    /// recovered immediately). Called by the drivers after construction,
    /// because the storage flavor is theirs to choose: the simulator's
    /// deterministic in-memory model, or real files under the runtime.
    pub fn enable_durability(&mut self, storage: Box<dyn LogStorage>, cfg: LogConfig) {
        self.wal = Some(DurableLog::open(storage, cfg));
    }

    /// The durable log's activity counters, when durability is enabled.
    #[must_use]
    pub fn durability(&self) -> Option<&DurabilityStats> {
        self.wal.as_ref().map(DurableLog::stats)
    }

    /// Read access to the durable log, when durability is enabled.
    #[must_use]
    pub fn wal(&self) -> Option<&DurableLog> {
        self.wal.as_ref()
    }

    /// Forces the durable log's unsynced tail and offset table to disk
    /// (a final fsync batch). Drivers call this at shutdown and before
    /// reading results, so records below the `wal_flush_every` threshold
    /// are not silently volatile.
    pub fn flush_wal(&mut self) {
        if let Some(wal) = self.wal.as_mut() {
            wal.flush();
        }
    }

    /// Attaches stage telemetry to the durable log, so fsync batches
    /// record their wall-clock duration (see
    /// [`DurableLog::set_stage_profiler`]). Call after
    /// [`Broker::enable_durability`]; a no-op on volatile brokers.
    pub fn set_stage_profiler(&mut self, profiler: std::sync::Arc<StageProfiler>) {
        if let Some(wal) = self.wal.as_mut() {
            wal.set_stage_profiler(profiler);
        }
    }

    /// Applies a subscriber's final contiguous cursor as an out-of-band
    /// acknowledgement. Drivers call this at *graceful* shutdown, after
    /// the wires are down: batched acks still sitting at the subscriber
    /// (waiting on `ACK_EVERY` or the flush timer) would otherwise be
    /// abandoned and force a spurious replay on the next start. A no-op
    /// for unregistered consumers, and clamped to the log tail like any
    /// other ack. Call [`Broker::flush_wal`] afterwards to persist.
    pub fn apply_final_ack(&mut self, subscriber: ActorId, class: ClassId, upto: u64) {
        let dest = dest_of(subscriber);
        if let Some(wal) = self.wal.as_mut() {
            if wal.is_class_consumer(dest, class) {
                wal.ack(dest, class, upto);
            }
        }
    }

    /// The broker's stage (≥ 1).
    #[must_use]
    pub fn stage(&self) -> usize {
        self.stage
    }

    /// The broker's display label, e.g. `"N2.1"`.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of filters currently stored.
    #[must_use]
    pub fn filter_count(&self) -> usize {
        self.table.filter_count()
    }

    /// Whether this broker is the hierarchy root.
    #[must_use]
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    /// The broker's parent node, if any.
    #[must_use]
    pub fn parent(&self) -> Option<ActorId> {
        self.parent
    }

    /// Iterates over the broker's live `<filter, id-list>` entries (for
    /// introspection and debugging dumps). Id-lists are materialized
    /// because the aggregated table derives them from refcounts on read.
    pub fn table_entries(&self) -> impl Iterator<Item = (&Filter, Vec<DestId>)> {
        self.table.entries()
    }

    /// `<filter, dest>` pairs currently held as covered bookkeeping under
    /// an aggregation root — subscriptions the table tracks without
    /// spending a live entry on them. Always zero when
    /// `aggregation_enabled` is off.
    #[must_use]
    pub fn covered_subs(&self) -> usize {
        self.table.covered_subs()
    }

    /// The broker's counters as a metrics record.
    #[must_use]
    pub fn record(&self) -> NodeRecord {
        NodeRecord {
            node: self.label.clone(),
            stage: self.stage,
            filters: self.table.filter_count(),
            received: self.received,
            matched: self.matched,
            evaluations: self.evaluations,
            bytes_received: self.bytes_received,
        }
    }

    /// Events retransmitted in response to downstream NACKs.
    #[must_use]
    pub fn retransmitted(&self) -> u64 {
        self.retransmitted
    }

    /// Incoming events suppressed as duplicates (by link sequence or by
    /// `(class, seq)` identity).
    #[must_use]
    pub fn dup_suppressed(&self) -> u64 {
        self.dup_suppressed
    }

    /// Gap-detection NACKs this broker sent upstream.
    #[must_use]
    pub fn nacks_sent(&self) -> u64 {
        self.nacks_sent
    }

    /// Overload-protection counters accumulated at this broker (sheds,
    /// credit stalls, breaker transitions, egress-queue depths).
    #[must_use]
    pub fn overload(&self) -> &OverloadStats {
        &self.overload
    }

    /// Sets the virtual service time this broker charges per data message
    /// (`None` = infinitely fast). The engine serializes arrivals behind
    /// the broker's busy clock, so offered load beyond `1/service_time`
    /// builds a backlog — the overload the flow layer defends against.
    pub fn set_service_time(&mut self, d: Option<SimDuration>) {
        self.service_time = d;
    }

    /// The engine-facing service cost of one message: data pays the
    /// configured service time, control is free so grants and leases
    /// never queue behind a saturated data plane.
    #[must_use]
    pub fn service_cost(&self, msg: &OverlayMsg) -> Option<SimDuration> {
        if msg.is_data() {
            self.service_time
        } else {
            None
        }
    }

    pub(crate) fn handle(&mut self, from: ActorId, msg: OverlayMsg, ctx: &mut dyn NodeCtx) {
        self.maybe_start_timers(ctx);
        match msg {
            OverlayMsg::Advertise(adv) => {
                self.stage_maps.insert(adv.class, adv.stage_map.clone());
                for child in &self.children {
                    ctx.send(*child, OverlayMsg::Advertise(adv.clone()));
                }
            }
            OverlayMsg::Subscribe(req) => self.place_subscription(req, ctx),
            OverlayMsg::ReqInsert { filter, child } => self.insert_child_filter(filter, child, ctx),
            OverlayMsg::Publish(env) => {
                self.bytes_received += env.wire_size() as u64;
                self.note_data_arrival(from, ctx);
                self.forward_event(from, &env, ctx);
            }
            OverlayMsg::Sequenced { link_seq, env } => {
                self.bytes_received += env.wire_size() as u64;
                self.note_data_arrival(from, ctx);
                let outcome = self.rx.entry(from).or_default().on_event(
                    link_seq,
                    env,
                    self.reliability_window,
                );
                self.apply_rx(from, outcome, ctx);
            }
            OverlayMsg::Nack { from_seq, to_seq } => {
                // `from` is the downstream receiver of the link we send on.
                if let Some(link) = self.tx.get_mut(&from) {
                    let (resend, advance) = link.handle_nack(from_seq, to_seq);
                    if self.flow_enabled {
                        // Retransmissions respect the credit window but
                        // jump the egress queue: push them to the front in
                        // reverse so the lowest sequence leads the repair.
                        for (link_seq, env) in resend.into_iter().rev() {
                            self.retransmitted += 1;
                            let queued = self.flow_link(from).push_retransmit(link_seq, env);
                            if !queued {
                                self.overload.breaker_shed += 1;
                                self.overload.add_stage_sheds(self.stage, 1);
                            }
                        }
                        self.drain_flow(from, ctx);
                        self.ensure_flow_timer(ctx);
                    } else {
                        for (link_seq, env) in resend {
                            self.retransmitted += 1;
                            ctx.send(from, OverlayMsg::Sequenced { link_seq, env });
                        }
                    }
                    if let Some(to) = advance {
                        ctx.send(from, OverlayMsg::Advance { to });
                    }
                }
            }
            OverlayMsg::Credit => {
                // An upstream sender stalled on zero credit (or a breaker
                // probing our liveness): answer with the consumed total
                // immediately, bypassing every queue.
                if self.flow_enabled {
                    let consumed_total = self
                        .flow_rx
                        .entry(from)
                        .or_insert_with(|| FlowRx::new(self.queue_capacity))
                        .grant_now();
                    self.overload.grants_sent += 1;
                    ctx.send(from, OverlayMsg::CreditGrant { consumed_total });
                }
            }
            OverlayMsg::CreditGrant { consumed_total } => {
                // Stray grants (e.g. after a Rejoin reset the link) are
                // ignored rather than asserted on: the next epoch starts
                // clean.
                if let Some(link) = self.flow_tx.get_mut(&from) {
                    self.overload.grants_received += 1;
                    if link.on_grant(consumed_total).closed_breaker {
                        self.overload.breaker_closed += 1;
                    }
                    self.drain_flow(from, ctx);
                }
            }
            OverlayMsg::Advance { to } => {
                let outcome = self
                    .rx
                    .entry(from)
                    .or_default()
                    .on_advance(to, self.reliability_window);
                self.apply_rx(from, outcome, ctx);
            }
            OverlayMsg::Renew => {
                let dest = dest_of(from);
                self.leases.insert(dest, ctx.now() + self.ttl * 3);
                let known = self.table.has_dest(dest);
                if self.children_set.contains(&from) {
                    // A child broker only renews while it holds filters; if
                    // we store none for it, our table lost them (crash, or a
                    // dropped req-Insert) — ask the child to re-register.
                    if !known {
                        ctx.send(from, OverlayMsg::Reannounce);
                    }
                } else if known {
                    ctx.send(from, OverlayMsg::RenewAck);
                }
                // An unknown subscriber gets no ack: silence tells it to
                // re-subscribe from the root.
            }
            OverlayMsg::Unsubscribe { filter, subscriber } => {
                let dest = dest_of(subscriber);
                let weakened = self.weaken(&filter, self.stage);
                self.remove_with_upstream(&weakened, dest, ctx);
                if self.covering_collapse {
                    // The subscription may have been folded into a stored
                    // covering filter; sweep those too. (Mutually exclusive
                    // with aggregation — the forest tracks covered pairs
                    // itself, so `remove` above already found them.)
                    if let BrokerTable::Plain(table) = &mut self.table {
                        let registry = Arc::clone(&self.registry);
                        while table.remove_covering(&weakened, dest, &registry) {}
                    }
                }
                if !self.table.has_dest(dest) {
                    self.leases.remove(&dest);
                    self.parked.remove(&dest);
                    // An explicit unsubscription also ends the durable
                    // contract: drop the consumer's offsets so its
                    // segments become compactable.
                    if let Some(wal) = self.wal.as_mut() {
                        wal.drop_consumer(dest);
                    }
                    self.durable_sent.retain(|&(d, _), _| d != dest.0);
                    self.durable_sweep_acked.retain(|&(d, _), _| d != dest.0);
                    self.durable_replay_hwm.retain(|&(d, _), _| d != dest.0);
                }
            }
            OverlayMsg::ReqRemove { filter, child } => {
                self.remove_with_upstream(&filter, dest_of(child), ctx);
            }
            OverlayMsg::Detach { subscriber } => {
                self.parked.entry(dest_of(subscriber)).or_default();
                // A detaching durable consumer's history lives in the
                // log, not the parked buffer — make the tail durable now
                // so a crash during the absence loses nothing flushed.
                if self
                    .wal
                    .as_ref()
                    .is_some_and(|w| w.is_consumer(dest_of(subscriber)))
                {
                    self.flush_wal();
                }
            }
            OverlayMsg::Attach { subscriber } => {
                let dest = dest_of(subscriber);
                let buffered = self.parked.remove(&dest);
                if self.wal.as_ref().is_some_and(|w| w.is_consumer(dest)) {
                    // Durable: the log is authoritative; the parked buffer
                    // stayed empty while detached (forwarding skipped it).
                    self.replay_to(subscriber, ctx);
                } else if let Some(buffered) = buffered {
                    for env in buffered {
                        self.send_event(subscriber, env, ctx);
                    }
                }
            }
            OverlayMsg::AckUpto { class, upto } => {
                let dest = dest_of(from);
                if let Some(wal) = self.wal.as_mut() {
                    wal.ack(dest, class, upto);
                }
                // The ack freed in-flight window room: page the next
                // stretch of this consumer's backlog out of the log.
                self.durable_catch_up(dest, class, ctx);
            }
            OverlayMsg::Rejoin => {
                // A restarted neighbor: its link sequence and credit state
                // are gone, so reset ours to match before helping it
                // rebuild (a fresh credit epoch starts at full window). A
                // rejoin that supersedes a tripped breaker *is* the
                // recovery — count it as a close.
                self.rx.remove(&from);
                self.tx.remove(&from);
                if let Some(tx) = self.flow_tx.remove(&from) {
                    if tx.is_broken() {
                        self.overload.breaker_closed += 1;
                    }
                }
                self.flow_rx.remove(&from);
                if self.children_set.contains(&from) {
                    // A restarted child lost its stage maps; re-flood our
                    // advertisements to it (deterministic class order).
                    let mut classes: Vec<ClassId> = self.stage_maps.keys().copied().collect();
                    classes.sort_unstable_by_key(|c| c.0);
                    for class in classes {
                        let map = self.stage_maps[&class].clone();
                        ctx.send(from, OverlayMsg::Advertise(Advertisement::new(class, map)));
                    }
                } else if Some(from) == self.parent {
                    // A restarted parent lost our filters; re-register them.
                    self.reannounce_to_parent(ctx);
                }
            }
            OverlayMsg::Reannounce => {
                debug_assert_eq!(Some(from), self.parent, "re-announce comes from the parent");
                self.reannounce_to_parent(ctx);
            }
            OverlayMsg::JoinAt { .. }
            | OverlayMsg::AcceptedAt { .. }
            | OverlayMsg::Deliver(_)
            | OverlayMsg::Durable { .. }
            | OverlayMsg::DurableBase { .. }
            | OverlayMsg::RenewAck => {
                debug_assert!(
                    false,
                    "subscriber-bound message delivered to broker {}",
                    self.label
                );
            }
        }
    }

    /// Handles a crash-restart: every piece of soft state is gone. Ask the
    /// parent for the advertisement flood and tell both parent and children
    /// to reset their link state toward us; children lease renewals and
    /// re-announcements then rebuild the routing table (Section 4.3's
    /// soft-state recovery argument).
    pub(crate) fn on_restart(&mut self, ctx: &mut dyn NodeCtx) {
        // The durable log is the one thing a crash does NOT wipe: it
        // re-opens from storage, losing only the unsynced tail, with the
        // persisted consumer offsets intact. Durable subscribers notice
        // the crash through unacknowledged renewals, re-subscribe, and
        // replay from those offsets.
        if let Some(wal) = self.wal.as_mut() {
            wal.crash_restart();
        }
        self.durable_sent.clear();
        self.durable_sweep_acked.clear();
        self.durable_replay_hwm.clear();
        self.table = BrokerTable::new(self.index, matches!(self.table, BrokerTable::Agg(_)));
        self.up_refs.clear();
        self.stage_maps.clear();
        self.leases.clear();
        self.parked.clear();
        self.rx.clear();
        self.tx.clear();
        self.flow_tx.clear();
        self.flow_rx.clear();
        self.flow_timer_armed = false;
        if self.leases_enabled {
            self.timers_started = true;
            ctx.set_timer(self.ttl, TAG_SWEEP);
            ctx.set_timer(self.ttl, TAG_RENEW);
        } else {
            self.timers_started = false;
        }
        if let Some(parent) = self.parent {
            ctx.send(parent, OverlayMsg::Rejoin);
        }
        for child in &self.children {
            ctx.send(*child, OverlayMsg::Rejoin);
        }
    }

    /// Re-sends every weakened filter the parent should hold for this node
    /// (in a deterministic order, so fault-injection RNG streams line up
    /// across identically-seeded runs).
    fn reannounce_to_parent(&mut self, ctx: &mut dyn NodeCtx) {
        let Some(parent) = self.parent else {
            return;
        };
        let mut needs: Vec<Filter> = self.parent_needs().into_iter().collect();
        needs.sort_by_cached_key(|f| format!("{f:?}"));
        for filter in needs {
            ctx.send(
                parent,
                OverlayMsg::ReqInsert {
                    filter,
                    child: ctx.me(),
                },
            );
        }
    }

    /// Applies the receiver-side outcome of one reliable-link arrival:
    /// forward the released events, NACK any exposed gap.
    fn apply_rx(&mut self, from: ActorId, outcome: RxOutcome, ctx: &mut dyn NodeCtx) {
        self.dup_suppressed += outcome.duplicates_suppressed;
        if let Some((from_seq, to_seq)) = outcome.nack {
            self.nacks_sent += 1;
            ctx.send(from, OverlayMsg::Nack { from_seq, to_seq });
        }
        for env in outcome.released {
            self.forward_event(from, &env, ctx);
        }
    }

    /// Sends one event to a downstream node. With flow control enabled the
    /// event passes through the link's credit window and bounded egress
    /// queue — and may be shed there; otherwise it transmits directly.
    fn send_event(&mut self, to: ActorId, env: Envelope, ctx: &mut dyn NodeCtx) {
        if !self.flow_enabled {
            self.transmit(to, env, ctx);
            return;
        }
        let tc = env.trace();
        match self.flow_link(to).offer(env) {
            Offer::Send(env) => self.transmit(to, env, ctx),
            Offer::Queued { depth } => {
                self.overload.credit_stalls += 1;
                self.overload.egress_depth.record(depth as u64);
                self.overload.peak_egress_depth = self.overload.peak_egress_depth.max(depth as u64);
                self.record_flow_hop(
                    tc,
                    ctx,
                    HopVerdict::Throttled {
                        depth: depth.min(u32::MAX as usize) as u32,
                    },
                );
            }
            Offer::ShedQueueFull(dropped) => {
                self.overload.data_shed += 1;
                self.overload.add_stage_sheds(self.stage, 1);
                self.record_flow_hop(
                    dropped.trace(),
                    ctx,
                    HopVerdict::Shed {
                        dest: to.0 as u64,
                        breaker: false,
                    },
                );
            }
            Offer::ShedBreakerOpen(dropped) => {
                self.overload.breaker_shed += 1;
                self.overload.add_stage_sheds(self.stage, 1);
                self.record_flow_hop(
                    dropped.trace(),
                    ctx,
                    HopVerdict::Shed {
                        dest: to.0 as u64,
                        breaker: true,
                    },
                );
            }
        }
        self.drain_flow(to, ctx);
        self.ensure_flow_timer(ctx);
    }

    /// Puts one event on the wire, under reliable sequencing when enabled
    /// (the plain `Publish`/`Deliver` forms otherwise). Fresh events are
    /// stamped here — after any queueing — so link sequence order always
    /// equals send order.
    fn transmit(&mut self, to: ActorId, env: Envelope, ctx: &mut dyn NodeCtx) {
        if self.reliability_enabled {
            let link = self.tx.entry(to).or_default();
            let link_seq = link.stamp(env.clone(), self.reliability_window);
            ctx.send(to, OverlayMsg::Sequenced { link_seq, env });
        } else if self.children_set.contains(&to) {
            ctx.send(to, OverlayMsg::Publish(env));
        } else {
            ctx.send(to, OverlayMsg::Deliver(env));
        }
    }

    /// The sender-side flow state toward `to`, created on first use.
    fn flow_link(&mut self, to: ActorId) -> &mut FlowTx {
        self.flow_tx.entry(to).or_insert_with(|| {
            FlowTx::new(
                self.queue_capacity,
                self.breaker_threshold,
                self.breaker_backoff,
            )
        })
    }

    /// Transmits whatever the credit window allows from `to`'s egress
    /// queue, repairs (retransmissions) first.
    fn drain_flow(&mut self, to: ActorId, ctx: &mut dyn NodeCtx) {
        loop {
            let Some(entry) = self.flow_tx.get_mut(&to).and_then(FlowTx::pop_ready) else {
                return;
            };
            match entry {
                Queued::Fresh(env) => self.transmit(to, env, ctx),
                Queued::Retransmit { link_seq, env } => {
                    ctx.send(to, OverlayMsg::Sequenced { link_seq, env });
                }
            }
        }
    }

    /// Counts one consumed data message from an upstream sender and emits
    /// a batched credit grant when due. External publishers (the facade)
    /// are not flow-controlled — they *are* the offered load.
    fn note_data_arrival(&mut self, from: ActorId, ctx: &mut dyn NodeCtx) {
        if !self.flow_enabled || Some(from) != self.parent {
            return;
        }
        let grant = self
            .flow_rx
            .entry(from)
            .or_insert_with(|| FlowRx::new(self.queue_capacity))
            .on_data();
        if let Some(consumed_total) = grant {
            self.overload.grants_sent += 1;
            ctx.send(from, OverlayMsg::CreditGrant { consumed_total });
        }
    }

    /// Arms the flow-maintenance timer iff some link still needs it.
    fn ensure_flow_timer(&mut self, ctx: &mut dyn NodeCtx) {
        if self.flow_timer_armed || !self.flow_tx.values().any(FlowTx::needs_tick) {
            return;
        }
        self.flow_timer_armed = true;
        ctx.set_timer(self.flow_tick, TAG_FLOW);
    }

    /// Records a flow event (throttle or shed) on a sampled trace. Flow
    /// events describe what happened to one *outgoing copy*; the trace
    /// aggregation layer keeps them out of the arrival statistics.
    fn record_flow_hop(&self, tc: Option<TraceContext>, ctx: &dyn NodeCtx, verdict: HopVerdict) {
        let (Some(tc), Some(sink)) = (tc, self.trace.as_ref()) else {
            return;
        };
        let now = ctx.trace_now();
        sink.record_hop(
            &tc,
            HopRecord {
                node: self.label.clone(),
                node_id: trace_actor(ctx.me()),
                from_id: trace_actor(ctx.me()),
                stage: self.stage,
                shard: ctx.shard(),
                arrival: SimTime::from_ticks(now),
                hop_latency: 0,
                verdict,
            },
        );
    }

    pub(crate) fn timer(&mut self, tag: u64, ctx: &mut dyn NodeCtx) {
        match tag {
            TAG_SWEEP => {
                let now = ctx.now();
                let expired: Vec<DestId> = self
                    .leases
                    .iter()
                    .filter(|(_, &expiry)| expiry <= now)
                    .map(|(&d, _)| d)
                    .collect();
                for dest in expired {
                    self.leases.remove(&dest);
                    self.parked.remove(&dest);
                    // Lease expiry ends the durable contract too: the
                    // consumer's offsets go, which is what lets the log
                    // compact segments nobody else still needs.
                    if let Some(wal) = self.wal.as_mut() {
                        wal.drop_consumer(dest);
                    }
                    self.durable_sent.retain(|&(d, _), _| d != dest.0);
                    self.durable_sweep_acked.retain(|&(d, _), _| d != dest.0);
                    self.durable_replay_hwm.retain(|&(d, _), _| d != dest.0);
                    // Remove filter by filter so that weakened forms the
                    // node no longer needs are withdrawn from the parent
                    // (the per-filter granularity of the paper's renewals).
                    let filters: Vec<Filter> = self.table.filters_for(dest).cloned().collect();
                    for f in filters {
                        self.remove_with_upstream(&f, dest, ctx);
                    }
                }
                self.durable_anti_entropy(ctx);
                ctx.set_timer(self.ttl, TAG_SWEEP);
            }
            TAG_RENEW => {
                if let Some(parent) = self.parent {
                    if !self.table.is_empty() {
                        ctx.send(parent, OverlayMsg::Renew);
                    }
                }
                ctx.set_timer(self.ttl, TAG_RENEW);
            }
            TAG_FLOW => self.on_flow_tick(ctx),
            _ => debug_assert!(false, "unknown broker timer tag {tag}"),
        }
    }

    /// One flow-maintenance tick: probe stalled links, advance breaker
    /// clocks, shed what an opening breaker flushed, and re-arm the timer
    /// while any link still needs it.
    fn on_flow_tick(&mut self, ctx: &mut dyn NodeCtx) {
        self.flow_timer_armed = false;
        let now = ctx.now();
        // HashMap iteration order is randomly seeded per process; sends
        // must happen in a deterministic order for reproducible runs.
        let mut downs: Vec<ActorId> = self.flow_tx.keys().copied().collect();
        downs.sort_unstable();
        for down in downs {
            let Some(link) = self.flow_tx.get_mut(&down) else {
                continue;
            };
            match link.on_tick(now) {
                Tick::Idle => {}
                Tick::Probe => {
                    self.overload.probes_sent += 1;
                    ctx.send(down, OverlayMsg::Credit);
                }
                Tick::Opened { flushed } => {
                    self.overload.breaker_opened += 1;
                    for entry in flushed {
                        self.overload.breaker_shed += 1;
                        self.overload.add_stage_sheds(self.stage, 1);
                        let env = match &entry {
                            Queued::Fresh(env) | Queued::Retransmit { env, .. } => env,
                        };
                        self.record_flow_hop(
                            env.trace(),
                            ctx,
                            HopVerdict::Shed {
                                dest: down.0 as u64,
                                breaker: true,
                            },
                        );
                    }
                }
                Tick::HalfOpenProbe => {
                    self.overload.breaker_half_opened += 1;
                    self.overload.probes_sent += 1;
                    ctx.send(down, OverlayMsg::Credit);
                }
                Tick::Resync => {
                    // Leaked credit written off: the parked events can go.
                    self.drain_flow(down, ctx);
                }
            }
        }
        self.ensure_flow_timer(ctx);
    }

    fn maybe_start_timers(&mut self, ctx: &mut dyn NodeCtx) {
        if self.leases_enabled && !self.timers_started {
            self.timers_started = true;
            ctx.set_timer(self.ttl, TAG_SWEEP);
            ctx.set_timer(self.ttl, TAG_RENEW);
        }
    }

    /// Figure 5(b): place a subscription request at this node or redirect
    /// the subscriber to a child.
    fn place_subscription(&mut self, req: SubscriptionReq, ctx: &mut dyn NodeCtx) {
        if self.stage == 1 {
            self.insert_subscriber(req, ctx);
            return;
        }
        // 1. Wildcard handling (Section 4.4/4.5): anchor subscriptions with
        //    unspecified attributes at the stage just above the topmost
        //    stage still using their most general wildcarded attribute.
        //    This check precedes the similarity search — otherwise a
        //    covering filter at the anchor node would redirect the
        //    subscription down to a stage-1 node, exactly the overload
        //    Section 4.4 warns about.
        if self.wildcard_stage_placement {
            if let Some(top) = self.wildcard_top_stage(&req.filter) {
                if self.stage == top + 1 || (self.is_root() && self.stage <= top + 1) {
                    self.insert_subscriber(req, ctx);
                    return;
                }
            }
        }
        // 2. Similarity search: redirect towards the strongest covering
        //    filter already stored here (Section 4.2).
        if self.placement == PlacementPolicy::Similarity {
            let target =
                self.table
                    .find_cover(&req.filter, &self.registry)
                    .and_then(|(_, dests)| {
                        dests
                            .iter()
                            .map(|d| actor_of(*d))
                            .find(|a| self.children_set.contains(a))
                    });
            if let Some(node) = target {
                ctx.send(req.subscriber, OverlayMsg::JoinAt { req, node });
                return;
            }
        }
        // 3. Fall back to a random child. A broker with no children (a
        //    degenerate topology, or one mid-reconfiguration) hosts the
        //    subscription itself instead of panicking on the empty range.
        let Some(&node) = self
            .children
            .get(self.rng.gen_range(0..self.children.len().max(1)))
        else {
            self.insert_subscriber(req, ctx);
            return;
        };
        ctx.send(req.subscriber, OverlayMsg::JoinAt { req, node });
    }

    /// For a wildcard subscription, the topmost stage `j` at which its most
    /// general wildcarded attribute is still used (HANDLE-WILDCARD-SUBS).
    fn wildcard_top_stage(&self, filter: &Filter) -> Option<usize> {
        let class_id = filter.class()?;
        let class = self.registry.class(class_id)?;
        let g = self.stage_maps.get(&class_id)?;
        let attr_mg = filter
            .wildcard_constraints()
            .filter_map(|c| class.attr_index(c.name()))
            .min()?;
        g.top_stage_using(attr_mg)
    }

    /// Per-subscription mode: inserts a `<filter, dest>` pair, optionally
    /// collapsing into a stored covering filter (paper Example 5's "keep
    /// only g1"). Returns whether a new entry was created.
    fn table_insert(&mut self, filter: Filter, dest: DestId) -> bool {
        let BrokerTable::Plain(table) = &mut self.table else {
            debug_assert!(false, "table_insert is the per-subscription path");
            return false;
        };
        if self.covering_collapse {
            if let Some((cover, _)) = table.find_cover(&filter, &self.registry) {
                let cover = cover.clone();
                table.insert(cover, dest);
                return false;
            }
        }
        table.insert(filter, dest)
    }

    /// Stores a `<filter, dest>` pair (already weakened to this stage) and
    /// sends the parent whatever announcements the insertion requires. `up`
    /// is the parent-stage form the per-subscription path announces when a
    /// new entry appears; the aggregated path ignores it and derives
    /// announcements from the forest's live-entry delta instead, so a
    /// covered insert stays entirely local to this broker.
    fn insert_with_upstream(
        &mut self,
        filter: Filter,
        up: Filter,
        dest: DestId,
        ctx: &mut dyn NodeCtx,
    ) {
        if matches!(self.table, BrokerTable::Agg(_)) {
            let registry = Arc::clone(&self.registry);
            let BrokerTable::Agg(table) = &mut self.table else {
                unreachable!()
            };
            let delta = table.insert(filter, dest, &registry);
            self.apply_agg_delta(delta, ctx);
            return;
        }
        let created = self.table_insert(filter, dest);
        if created {
            if let Some(parent) = self.parent {
                ctx.send(
                    parent,
                    OverlayMsg::ReqInsert {
                        filter: up,
                        child: ctx.me(),
                    },
                );
            }
        }
    }

    /// Applies a live-entry delta from the aggregated table to the
    /// refcounted upstream view: newly-live roots are announced to the
    /// parent, roots that lost their live entry are withdrawn. Additions
    /// are processed *before* removals — when one operation promotes one
    /// root and demotes another that weakens to the same upstream form,
    /// the refcount dips through the insert, never through a coverage gap.
    fn apply_agg_delta(&mut self, delta: AggDelta, ctx: &mut dyn NodeCtx) {
        let Some(parent) = self.parent else {
            return;
        };
        for f in delta.added {
            let up = self.weaken(&f, self.stage + 1).normalized();
            let count = self.up_refs.entry(up.clone()).or_insert(0);
            *count += 1;
            if *count == 1 {
                ctx.send(
                    parent,
                    OverlayMsg::ReqInsert {
                        filter: up,
                        child: ctx.me(),
                    },
                );
            }
        }
        for f in delta.removed {
            let up = self.weaken(&f, self.stage + 1).normalized();
            match self.up_refs.get_mut(&up) {
                Some(count) if *count > 1 => *count -= 1,
                Some(_) => {
                    self.up_refs.remove(&up);
                    ctx.send(
                        parent,
                        OverlayMsg::ReqRemove {
                            filter: up,
                            child: ctx.me(),
                        },
                    );
                }
                None => debug_assert!(false, "withdrawn upstream filter was never announced"),
            }
        }
    }

    /// INSERT-SUBSCRIBER: store the subscription (weakened to this stage)
    /// for the subscriber, acknowledge, and propagate a further weakened
    /// filter to the parent.
    fn insert_subscriber(&mut self, req: SubscriptionReq, ctx: &mut dyn NodeCtx) {
        let weakened = self.weaken(&req.filter, self.stage);
        let dest = dest_of(req.subscriber);
        // Propagate upward *before* acknowledging: the ack is what
        // releases a blocked `add_subscriber` caller, so the weakened
        // filter must already be enqueued at the parent when the caller
        // wakes — otherwise an immediate publish can overtake the
        // req-Insert into the parent's inbox and miss this subscription.
        let up = self.weaken(&req.filter, self.stage + 1);
        self.insert_with_upstream(weakened, up, dest, ctx);
        self.leases.insert(dest, ctx.now() + self.ttl * 3);
        ctx.send(
            req.subscriber,
            OverlayMsg::AcceptedAt {
                id: req.id,
                node: ctx.me(),
            },
        );
        // A durable subscription registers a per-class consumer offset in
        // the log and replays the gap past it. A first-time registration
        // starts at the tail (empty replay); a re-subscription — after a
        // lost renewal, or after this broker crashed and restarted with
        // nothing but its log — finds its persisted offset and replays
        // the unacknowledged suffix. Durability needs a class to key the
        // offsets; class-less (pure wildcard) subscriptions fall back to
        // the volatile path.
        if req.durable {
            if let (Some(wal), Some(class)) = (self.wal.as_mut(), req.filter.class()) {
                let acked = wal.register_consumer(dest, class);
                let tail = wal.tail_off(class);
                // Open the stream: the base seeds the subscriber's
                // contiguity cursor, then the first window of the
                // unacknowledged suffix goes out (acks pull the rest).
                // Everything logged before this moment is history; if the
                // registration resumes below the tail, the catch-up
                // records up to it are replays.
                ctx.send(
                    req.subscriber,
                    OverlayMsg::DurableBase { class, base: acked },
                );
                self.durable_sent.insert((dest.0, class.0), acked);
                self.durable_replay_hwm.insert((dest.0, class.0), tail);
                self.durable_catch_up(dest, class, ctx);
            }
        }
    }

    /// "Upon Receiving req-Insert": store a child's weakened filter and
    /// propagate upward unless it collapsed into an existing entry.
    fn insert_child_filter(&mut self, filter: Filter, child: ActorId, ctx: &mut dyn NodeCtx) {
        let dest = dest_of(child);
        let up = self.weaken(&filter, self.stage + 1);
        self.insert_with_upstream(filter, up, dest, ctx);
        self.leases.insert(dest, ctx.now() + self.ttl * 3);
    }

    /// Figure 6: evaluate the event against every stored filter and forward
    /// to the associated children (or deliver to directly-attached
    /// subscribers). Bandwidth is accounted at the arrival site, so parked
    /// and duplicate-suppressed events still count their bytes.
    fn forward_event(&mut self, from: ActorId, env: &Envelope, ctx: &mut dyn NodeCtx) {
        self.received += 1;
        self.evaluations += self.table.filter_count() as u64;
        let mut dests = std::mem::take(&mut self.scratch);
        self.table
            .matches(env.class(), env.meta(), &self.registry, &mut dests);
        if !dests.is_empty() {
            self.matched += 1;
        }
        // Sampled tracing: unsampled envelopes carry no context, so this
        // costs one `Option` check on the hot path.
        if let Some(tc) = env.trace() {
            if let Some(sink) = &self.trace {
                let now = ctx.trace_now();
                sink.record_hop(
                    &tc,
                    HopRecord {
                        node: self.label.clone(),
                        node_id: trace_actor(ctx.me()),
                        from_id: trace_actor(from),
                        stage: self.stage,
                        shard: ctx.shard(),
                        arrival: SimTime::from_ticks(now),
                        hop_latency: now.saturating_sub(tc.last_hop_at),
                        verdict: if dests.is_empty() {
                            HopVerdict::NoMatch
                        } else {
                            HopVerdict::Forwarded {
                                dests: dests.len() as u32,
                            }
                        },
                    },
                );
            }
        }
        // Durable path: if any durable consumer is registered for this
        // class, append the event to the log ONCE, then hand the stamped
        // offset to every attached durable consumer of the class that is
        // both caught up (the stream stays contiguous — a deliberate skip
        // must not look like loss) and inside its in-flight window (the
        // log is the buffer for slow consumers; their acks page the
        // backlog out via `durable_catch_up`). Durable deliveries bypass
        // the flow-control egress queues and the retransmission ring —
        // loss is repaired by offset replay instead of NACKs. Detached
        // durable consumers get nothing now (and nothing parked): the log
        // holds their history until they acknowledge it. Note the
        // granularity: durable consumers receive the class's whole
        // appended stream and finish with their own perfect filtering,
        // exactly like any stage-0 subscriber.
        let class = env.class();
        if self
            .wal
            .as_ref()
            .is_some_and(|w| w.has_class_consumer(class))
        {
            let wal = self.wal.as_mut().expect("checked above");
            let append_timer = ctx.stage_sampled().then(std::time::Instant::now);
            let off = wal.append(env);
            if let Some(t0) = append_timer {
                ctx.record_stage(
                    PipelineStage::WalAppend,
                    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                );
            }
            let consumers = wal.consumers_of_class(class);
            for dest in consumers {
                if self.parked.contains_key(&dest) {
                    continue;
                }
                let key = (dest.0, class.0);
                let wal = self.wal.as_ref().expect("checked above");
                let acked = wal.acked_upto(dest, class);
                let sent = self
                    .durable_sent
                    .get(&key)
                    .copied()
                    .unwrap_or(acked)
                    .max(acked);
                if off != sent + 1 || off - acked > DURABLE_WINDOW {
                    continue;
                }
                self.durable_sent.insert(key, off);
                let mut fwd = env.clone();
                fwd.touch_trace(ctx.trace_now());
                ctx.send(actor_of(dest), OverlayMsg::Durable { off, env: fwd });
            }
        }
        for dest in &dests {
            // Durable consumers of this class were served from the log
            // above; sending the volatile copy too would only burn the
            // dedup window.
            if self
                .wal
                .as_ref()
                .is_some_and(|w| w.is_class_consumer(*dest, class))
            {
                continue;
            }
            let mut fwd = env.clone();
            fwd.touch_trace(ctx.trace_now());
            if let Some(buffer) = self.parked.get_mut(dest) {
                buffer.push(fwd);
                continue;
            }
            self.send_event(actor_of(*dest), fwd, ctx);
        }
        dests.clear();
        self.scratch = dests;
    }

    /// Re-opens every durable stream the broker's recovered log holds
    /// consumer offsets for — the restart-reattach seam drivers use
    /// after rebuilding this broker's volatile state over an existing
    /// log directory (e.g. the runtime supervisor replacing a crashed
    /// matcher shard in place). Each consumer's streams restart with a
    /// `DurableBase` at the persisted acknowledged offset, so subscriber
    /// contiguity cursors rebase before any fresh deliveries flow; the
    /// re-sent unacknowledged suffix is replay the `(class, seq)` dedup
    /// absorbs. Consumers are visited in deterministic id order. A no-op
    /// on volatile brokers.
    pub fn reopen_durable_streams(&mut self, ctx: &mut dyn NodeCtx) {
        let mut dests = match self.wal.as_ref() {
            Some(wal) => wal.consumer_dests(),
            None => return,
        };
        dests.sort_unstable_by_key(|d| d.0);
        for dest in dests {
            self.replay_to(actor_of(dest), ctx);
        }
    }

    /// Restarts every durable stream a consumer holds offsets for (used
    /// on re-attach, and on a subscriber-requested gap repair): each
    /// class's stream re-opens with a `DurableBase` at the acknowledged
    /// offset and the first in-flight window of its unacknowledged
    /// suffix; acknowledgements page out the rest.
    fn replay_to(&mut self, subscriber: ActorId, ctx: &mut dyn NodeCtx) {
        let dest = dest_of(subscriber);
        let classes = match self.wal.as_ref() {
            Some(wal) => wal.consumer_classes(dest),
            None => return,
        };
        for class in classes {
            let wal = self.wal.as_ref().expect("durability enabled");
            let acked = wal.acked_upto(dest, class);
            let tail = wal.tail_off(class);
            ctx.send(subscriber, OverlayMsg::DurableBase { class, base: acked });
            self.durable_sent.insert((dest.0, class.0), acked);
            // Everything re-sent from here up to the current tail was
            // (or could have been) sent before: it is replay, not
            // deferred first delivery.
            self.durable_replay_hwm.insert((dest.0, class.0), tail);
            self.durable_catch_up(dest, class, ctx);
        }
    }

    /// Sends the next stretch of one durable stream out of the log: from
    /// the highest offset already in flight, up to the window bound.
    /// Called when a stream (re)starts and whenever an acknowledgement
    /// frees window room, so a consumer drains its backlog at its own
    /// acknowledged pace with the log as the buffer.
    fn durable_catch_up(&mut self, dest: DestId, class: ClassId, ctx: &mut dyn NodeCtx) {
        if self.parked.contains_key(&dest) {
            return;
        }
        let key = (dest.0, class.0);
        let Some(wal) = self.wal.as_mut() else {
            return;
        };
        if !wal.is_class_consumer(dest, class) {
            return;
        }
        let acked = wal.acked_upto(dest, class);
        let sent = self
            .durable_sent
            .get(&key)
            .copied()
            .unwrap_or(acked)
            .max(acked);
        let room = DURABLE_WINDOW.saturating_sub(sent - acked);
        if room == 0 || sent >= wal.tail_off(class) {
            return;
        }
        let events = wal.replay_window(class, sent, room as usize);
        // Only records the stream had already passed when it was last
        // (re)opened count as replays; the rest is backlog the window
        // deferred, now going out for the first time.
        let hwm = self.durable_replay_hwm.get(&key).copied().unwrap_or(0);
        let replayed = events.iter().filter(|(off, _)| *off <= hwm).count() as u64;
        wal.note_replayed(replayed);
        for (off, env) in events {
            self.durable_sent.insert(key, off);
            let mut fwd = env;
            fwd.touch_trace(ctx.trace_now());
            ctx.send(actor_of(dest), OverlayMsg::Durable { off, env: fwd });
        }
    }

    /// Lease-cadence anti-entropy for durable streams: an attached
    /// consumer whose acknowledged offset sat still below the log tail
    /// for a whole sweep interval has lost deliveries or acks on the
    /// unreliable durable path (e.g. the *last* event of a burst was
    /// dropped, which no later arrival can expose as a gap). Restart the
    /// stream from the acknowledged offset; the subscriber's cursor and
    /// `(class, seq)` dedup absorb anything re-sent by a false positive.
    fn durable_anti_entropy(&mut self, ctx: &mut dyn NodeCtx) {
        let Some(wal) = self.wal.as_ref() else {
            return;
        };
        let mut snapshot: HashMap<(u64, u32), u64> = HashMap::new();
        let mut stalled: Vec<(DestId, ClassId, u64)> = Vec::new();
        for dest in wal.consumer_dests() {
            for class in wal.consumer_classes(dest) {
                let acked = wal.acked_upto(dest, class);
                snapshot.insert((dest.0, class.0), acked);
                if self.parked.contains_key(&dest) {
                    continue;
                }
                if acked < wal.tail_off(class)
                    && self.durable_sweep_acked.get(&(dest.0, class.0)) == Some(&acked)
                {
                    stalled.push((dest, class, acked));
                }
            }
        }
        self.durable_sweep_acked = snapshot;
        for (dest, class, acked) in stalled {
            let tail = self.wal.as_ref().map_or(0, |wal| wal.tail_off(class));
            ctx.send(
                actor_of(dest),
                OverlayMsg::DurableBase { class, base: acked },
            );
            self.durable_sent.insert((dest.0, class.0), acked);
            // A restarted stream re-covers everything up to the tail it
            // stalled under; those re-sends are replays.
            self.durable_replay_hwm.insert((dest.0, class.0), tail);
            self.durable_catch_up(dest, class, ctx);
        }
    }

    /// Removes a `<filter, dest>` pair and tells the parent about any
    /// weakened filter this node no longer needs because of it.
    fn remove_with_upstream(
        &mut self,
        filter: &Filter,
        dest: DestId,
        ctx: &mut dyn NodeCtx,
    ) -> bool {
        if matches!(self.table, BrokerTable::Agg(_)) {
            let registry = Arc::clone(&self.registry);
            let BrokerTable::Agg(table) = &mut self.table else {
                unreachable!()
            };
            let delta = table.remove(filter, dest, &registry);
            let removed = delta.changed;
            self.apply_agg_delta(delta, ctx);
            return removed;
        }
        let before = self.parent_needs();
        let BrokerTable::Plain(table) = &mut self.table else {
            unreachable!()
        };
        let removed = table.remove(filter, dest);
        if removed {
            if let Some(parent) = self.parent {
                let after = self.parent_needs();
                for gone in before.difference(&after) {
                    ctx.send(
                        parent,
                        OverlayMsg::ReqRemove {
                            filter: gone.clone(),
                            child: ctx.me(),
                        },
                    );
                }
            }
        }
        removed
    }

    /// The set of parent-stage weakened filters this node's table requires
    /// (normalized for set comparison). In aggregation mode this is the
    /// refcounted upstream view — one form per announced live root.
    fn parent_needs(&self) -> std::collections::HashSet<Filter> {
        if self.parent.is_none() {
            return std::collections::HashSet::new();
        }
        match &self.table {
            BrokerTable::Plain(table) => table
                .iter()
                .map(|(f, _)| self.weaken(f, self.stage + 1).normalized())
                .collect(),
            BrokerTable::Agg(_) => self.up_refs.keys().cloned().collect(),
        }
    }

    /// Weakens a filter to the format of `stage`, using the class's
    /// advertised stage map. Without an advertisement the filter passes
    /// through unweakened (still sound: any filter covers itself).
    fn weaken(&self, filter: &Filter, stage: usize) -> Filter {
        let Some(class_id) = filter.class() else {
            return filter.clone();
        };
        let (Some(class), Some(g)) = (
            self.registry.class(class_id),
            self.stage_maps.get(&class_id),
        ) else {
            return filter.clone();
        };
        weaken_to_stage(filter, class, g, stage)
    }
}
