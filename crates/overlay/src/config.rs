//! Overlay construction parameters.

use layercake_filter::IndexKind;
use layercake_sim::SimDuration;

/// How a broker picks a child for a subscription it cannot place by
/// covering-filter search (Figure 5(b), step 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Paper's scheme (Section 4.2): search for the strongest covering
    /// filter stage by stage, grouping similar subscriptions on the same
    /// path; fall back to a random child.
    #[default]
    Similarity,
    /// Baseline modeling locality-driven attachment: always descend to a
    /// random child, never group by similarity.
    Random,
}

/// Configuration for [`crate::OverlaySim`].
#[derive(Debug, Clone, PartialEq)]
pub struct OverlayConfig {
    /// Broker counts per stage, from stage 1 upward; the last entry must
    /// be 1 (the root). The paper's Section 5 hierarchy is
    /// `[100, 10, 1]`: 100 stage-1 nodes, 10 stage-2 nodes, 1 stage-3 root.
    /// Subscribers form stage 0.
    pub levels: Vec<usize>,
    /// Subscription placement policy.
    pub placement: PlacementPolicy,
    /// Matching strategy of broker filter tables.
    pub index: IndexKind,
    /// Covering-collapse insertion (paper Example 5: on the common path,
    /// "we can now ignore filter f1 … and keep only filter g1"): when a
    /// stored filter already covers an incoming one, the new subscription
    /// joins the stored filter's id-list instead of adding an entry.
    /// Smaller tables, coarser pre-filtering; end-to-end delivery stays
    /// exact thanks to subscriber-side perfect filtering.
    pub covering_collapse: bool,
    /// Whether stage-aware wildcard placement (Section 4.4/4.5) is enabled.
    /// When disabled, wildcard subscriptions descend to stage-1 nodes like
    /// any other — the naive attachment the paper warns about.
    pub wildcard_stage_placement: bool,
    /// Subscription time-to-live. Filters not renewed within
    /// 3 × TTL are removed (Section 4.3).
    pub ttl: SimDuration,
    /// Whether the lease machinery runs (renewal timers and expiry sweeps).
    /// Large batch evaluations disable it to keep timer traffic out of the
    /// message counts.
    pub leases_enabled: bool,
    /// Whether event forwarding runs under per-link reliable sequencing
    /// (gap detection, NACK-driven retransmission, duplicate suppression).
    /// Required for exactly-once delivery over faulty links; fault-free
    /// batch evaluations leave it off to keep message counts comparable
    /// with the paper's.
    pub reliability_enabled: bool,
    /// Bound, in events, of each link's retransmission ring and `(class,
    /// seq)` dedup window. Sequence numbers evicted from the ring can no
    /// longer be retransmitted (the sender concedes them instead).
    pub reliability_window: usize,
    /// Seed for the brokers' random child selection.
    pub seed: u64,
    /// Per-event trace sampling period: every `N`-th published event
    /// carries a trace context and has its hops recorded (`1` = trace
    /// everything). `0` — the default — disables tracing entirely: no
    /// sink is created and published envelopes carry no context, so the
    /// forwarding hot path does no per-event tracing work at all.
    pub trace_sample_every: u64,
}

impl Default for OverlayConfig {
    /// The paper's Section 5 topology with similarity placement, counting
    /// indexes, stage-aware wildcard handling, and leases off.
    fn default() -> Self {
        Self {
            levels: vec![100, 10, 1],
            placement: PlacementPolicy::Similarity,
            index: IndexKind::Counting,
            covering_collapse: false,
            wildcard_stage_placement: true,
            ttl: SimDuration::from_ticks(100_000),
            leases_enabled: false,
            reliability_enabled: false,
            reliability_window: 256,
            seed: 0xCAFE,
            trace_sample_every: 0,
        }
    }
}

impl OverlayConfig {
    /// Number of broker stages (stage numbers 1..=stages).
    #[must_use]
    pub fn stages(&self) -> usize {
        self.levels.len()
    }

    /// Validates the topology: non-empty, exactly one root, and each level
    /// must not be smaller than the one above it (a node needs at least one
    /// parent slot).
    ///
    /// # Errors
    ///
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.levels.is_empty() {
            return Err("overlay needs at least one broker level".to_owned());
        }
        if *self.levels.last().unwrap() != 1 {
            return Err("the top level must contain exactly the root node".to_owned());
        }
        if self.levels.contains(&0) {
            return Err("broker levels must be non-empty".to_owned());
        }
        for w in self.levels.windows(2) {
            if w[0] < w[1] {
                return Err(format!(
                    "level sizes must not grow upward (found {} below {})",
                    w[0], w[1]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_topology() {
        let cfg = OverlayConfig::default();
        assert_eq!(cfg.levels, vec![100, 10, 1]);
        assert_eq!(cfg.stages(), 3);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.placement, PlacementPolicy::Similarity);
    }

    #[test]
    fn validation_rejects_bad_topologies() {
        let with_levels = |levels: Vec<usize>| OverlayConfig {
            levels,
            ..OverlayConfig::default()
        };
        assert!(with_levels(vec![]).validate().is_err());
        assert!(with_levels(vec![10, 2]).validate().is_err());
        assert!(with_levels(vec![2, 10, 1]).validate().is_err());
        assert!(with_levels(vec![10, 0, 1]).validate().is_err());
        assert!(with_levels(vec![1]).validate().is_ok());
    }
}
