//! Overlay construction parameters.

use layercake_filter::IndexKind;
use layercake_sim::SimDuration;

use crate::error::OverlayError;

/// How a broker picks a child for a subscription it cannot place by
/// covering-filter search (Figure 5(b), step 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Paper's scheme (Section 4.2): search for the strongest covering
    /// filter stage by stage, grouping similar subscriptions on the same
    /// path; fall back to a random child.
    #[default]
    Similarity,
    /// Baseline modeling locality-driven attachment: always descend to a
    /// random child, never group by similarity.
    Random,
}

/// Configuration for [`crate::OverlaySim`].
#[derive(Debug, Clone, PartialEq)]
pub struct OverlayConfig {
    /// Broker counts per stage, from stage 1 upward; the last entry must
    /// be 1 (the root). The paper's Section 5 hierarchy is
    /// `[100, 10, 1]`: 100 stage-1 nodes, 10 stage-2 nodes, 1 stage-3 root.
    /// Subscribers form stage 0.
    pub levels: Vec<usize>,
    /// Subscription placement policy.
    pub placement: PlacementPolicy,
    /// Matching strategy of broker filter tables.
    pub index: IndexKind,
    /// Covering-collapse insertion (paper Example 5: on the common path,
    /// "we can now ignore filter f1 … and keep only filter g1"): when a
    /// stored filter already covers an incoming one, the new subscription
    /// joins the stored filter's id-list instead of adding an entry.
    /// Smaller tables, coarser pre-filtering; end-to-end delivery stays
    /// exact thanks to subscriber-side perfect filtering.
    pub covering_collapse: bool,
    /// Subscription aggregation (`layercake_filter::AggTable`): broker
    /// tables keep a refcounted cover forest where filters subsumed by an
    /// existing cover become bookkeeping children of one shared live entry,
    /// maintained incrementally under churn and lease expiry. Match cost
    /// and upstream announcements scale with the number of cover *roots*
    /// instead of subscriptions; end-to-end delivery stays exact thanks to
    /// subscriber-side perfect filtering. Mutually exclusive with
    /// `covering_collapse`, which is the coarser entry-merging strategy
    /// this subsumes.
    pub aggregation_enabled: bool,
    /// Whether stage-aware wildcard placement (Section 4.4/4.5) is enabled.
    /// When disabled, wildcard subscriptions descend to stage-1 nodes like
    /// any other — the naive attachment the paper warns about.
    pub wildcard_stage_placement: bool,
    /// Subscription time-to-live. Filters not renewed within
    /// 3 × TTL are removed (Section 4.3).
    pub ttl: SimDuration,
    /// Whether the lease machinery runs (renewal timers and expiry sweeps).
    /// Large batch evaluations disable it to keep timer traffic out of the
    /// message counts.
    pub leases_enabled: bool,
    /// Whether event forwarding runs under per-link reliable sequencing
    /// (gap detection, NACK-driven retransmission, duplicate suppression).
    /// Required for exactly-once delivery over faulty links; fault-free
    /// batch evaluations leave it off to keep message counts comparable
    /// with the paper's.
    pub reliability_enabled: bool,
    /// Bound, in events, of each link's retransmission ring and `(class,
    /// seq)` dedup window. Sequence numbers evicted from the ring can no
    /// longer be retransmitted (the sender concedes them instead).
    pub reliability_window: usize,
    /// Whether the overload-protection layer runs: bounded per-link egress
    /// queues, credit-based hop-by-hop backpressure, priority load
    /// shedding (data only — control-plane traffic always bypasses the
    /// queues), and per-downstream circuit breakers.
    pub flow_control_enabled: bool,
    /// Bound, in events, of each directed link's egress queue — and the
    /// link's credit window: a sender never has more than this many
    /// unconsumed data messages outstanding toward one downstream.
    pub queue_capacity: usize,
    /// Period of the flow-maintenance timer: a sender stalled on zero
    /// credit probes its downstream once per tick, and breaker state
    /// advances on the same clock.
    pub flow_tick: SimDuration,
    /// Consecutive unanswered credit probes before the circuit breaker for
    /// a downstream trips open. `0` disables the breaker entirely.
    pub breaker_failure_threshold: u32,
    /// Initial backoff of an open breaker before the half-open probe; it
    /// doubles on every failed recovery attempt (capped at 64×).
    pub breaker_backoff: SimDuration,
    /// Whether brokers keep a durable segmented event log: events matched
    /// for *durable* subscriptions are appended to a per-broker
    /// write-ahead log (CRC-framed records, batched fsync, segment
    /// rotation) and replayed to resuming subscribers from their last
    /// acknowledged per-class offset — including across a broker crash,
    /// where the in-memory retransmission ring and parked buffers lose
    /// all history.
    pub durability_enabled: bool,
    /// Size bound, in bytes, at which a durable-log segment is sealed and
    /// a new one started. Smaller segments compact sooner but rotate (and
    /// fsync) more often.
    pub wal_segment_bytes: usize,
    /// fsync batching interval of the durable log, in records: the log
    /// syncs after every `wal_flush_every` appends. `1` makes every
    /// append durable immediately; larger values amortize the fsync at
    /// the price of a longer unsynced tail lost on a crash (replay plus
    /// `(class, seq)` dedup keeps delivery exact either way).
    pub wal_flush_every: usize,
    /// Seed for the brokers' random child selection.
    pub seed: u64,
    /// Per-event trace sampling period: every `N`-th published event
    /// carries a trace context and has its hops recorded (`1` = trace
    /// everything). `0` — the default — disables tracing entirely: no
    /// sink is created and published envelopes carry no context, so the
    /// forwarding hot path does no per-event tracing work at all.
    pub trace_sample_every: u64,
}

impl Default for OverlayConfig {
    /// The paper's Section 5 topology with similarity placement, compiled
    /// counting indexes, stage-aware wildcard handling, and leases off.
    fn default() -> Self {
        Self {
            levels: vec![100, 10, 1],
            placement: PlacementPolicy::Similarity,
            index: IndexKind::Compiled,
            covering_collapse: false,
            aggregation_enabled: false,
            wildcard_stage_placement: true,
            ttl: SimDuration::from_ticks(100_000),
            leases_enabled: false,
            reliability_enabled: false,
            reliability_window: 256,
            flow_control_enabled: false,
            queue_capacity: 64,
            flow_tick: SimDuration::from_ticks(32),
            breaker_failure_threshold: 4,
            breaker_backoff: SimDuration::from_ticks(128),
            durability_enabled: false,
            wal_segment_bytes: 64 * 1024,
            wal_flush_every: 8,
            seed: 0xCAFE,
            trace_sample_every: 0,
        }
    }
}

impl OverlayConfig {
    /// Number of broker stages (stage numbers 1..=stages).
    #[must_use]
    pub fn stages(&self) -> usize {
        self.levels.len()
    }

    /// Validates the topology (non-empty, exactly one root, level sizes
    /// non-growing upward) and the consistency of the overload-protection
    /// knobs: flow control needs a non-zero queue and maintenance tick, an
    /// armed breaker needs a positive backoff, and under reliable links
    /// the egress queue must hold a full retransmission window (NACK
    /// bursts are never shed, so a smaller queue could grow unboundedly).
    ///
    /// # Errors
    ///
    /// Returns the first [`OverlayError`] found; its `Display` form names
    /// the knob to change.
    pub fn validate(&self) -> Result<(), OverlayError> {
        if self.levels.is_empty() {
            return Err(OverlayError::EmptyTopology);
        }
        let top = *self.levels.last().unwrap();
        if top != 1 {
            return Err(OverlayError::MultipleRoots { top_level: top });
        }
        if let Some(stage) = self.levels.iter().position(|&n| n == 0) {
            return Err(OverlayError::EmptyLevel { stage: stage + 1 });
        }
        for w in self.levels.windows(2) {
            if w[0] < w[1] {
                return Err(OverlayError::GrowingLevels {
                    below: w[0],
                    above: w[1],
                });
            }
        }
        if self.aggregation_enabled && self.covering_collapse {
            return Err(OverlayError::AggregationWithCollapse);
        }
        if self.flow_control_enabled {
            if self.queue_capacity == 0 {
                return Err(OverlayError::ZeroQueueCapacity);
            }
            if self.flow_tick.ticks() == 0 {
                return Err(OverlayError::ZeroFlowTick);
            }
            if self.breaker_failure_threshold > 0 && self.breaker_backoff.ticks() == 0 {
                return Err(OverlayError::ZeroBreakerBackoff);
            }
            if self.reliability_enabled && self.reliability_window > self.queue_capacity {
                return Err(OverlayError::WindowExceedsQueue {
                    window: self.reliability_window,
                    capacity: self.queue_capacity,
                });
            }
        }
        if self.durability_enabled {
            if self.wal_segment_bytes == 0 {
                return Err(OverlayError::ZeroSegmentBytes);
            }
            if self.wal_flush_every == 0 {
                return Err(OverlayError::ZeroFlushEvery);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_topology() {
        let cfg = OverlayConfig::default();
        assert_eq!(cfg.levels, vec![100, 10, 1]);
        assert_eq!(cfg.stages(), 3);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.placement, PlacementPolicy::Similarity);
    }

    #[test]
    fn validation_rejects_bad_topologies() {
        let with_levels = |levels: Vec<usize>| OverlayConfig {
            levels,
            ..OverlayConfig::default()
        };
        assert!(with_levels(vec![]).validate().is_err());
        assert!(with_levels(vec![10, 2]).validate().is_err());
        assert!(with_levels(vec![2, 10, 1]).validate().is_err());
        assert!(with_levels(vec![10, 0, 1]).validate().is_err());
        assert!(with_levels(vec![1]).validate().is_ok());
    }

    #[test]
    fn validation_reports_typed_topology_errors() {
        use crate::error::OverlayError;
        let bad = OverlayConfig {
            levels: vec![10, 3],
            ..OverlayConfig::default()
        };
        assert_eq!(
            bad.validate(),
            Err(OverlayError::MultipleRoots { top_level: 3 })
        );
        let growing = OverlayConfig {
            levels: vec![2, 10, 1],
            ..OverlayConfig::default()
        };
        assert_eq!(
            growing.validate(),
            Err(OverlayError::GrowingLevels {
                below: 2,
                above: 10
            })
        );
    }

    #[test]
    fn validation_rejects_aggregation_with_collapse() {
        use crate::error::OverlayError;
        let both = OverlayConfig {
            aggregation_enabled: true,
            covering_collapse: true,
            ..OverlayConfig::default()
        };
        assert_eq!(both.validate(), Err(OverlayError::AggregationWithCollapse));
        // Either strategy alone is fine.
        let agg_only = OverlayConfig {
            aggregation_enabled: true,
            ..OverlayConfig::default()
        };
        assert!(agg_only.validate().is_ok());
        let collapse_only = OverlayConfig {
            covering_collapse: true,
            ..OverlayConfig::default()
        };
        assert!(collapse_only.validate().is_ok());
    }

    #[test]
    fn validation_rejects_inconsistent_flow_knobs() {
        use crate::error::OverlayError;
        let base = OverlayConfig {
            flow_control_enabled: true,
            ..OverlayConfig::default()
        };
        assert!(base.validate().is_ok());

        let zero_queue = OverlayConfig {
            queue_capacity: 0,
            ..base.clone()
        };
        assert_eq!(zero_queue.validate(), Err(OverlayError::ZeroQueueCapacity));

        let zero_tick = OverlayConfig {
            flow_tick: SimDuration::ZERO,
            ..base.clone()
        };
        assert_eq!(zero_tick.validate(), Err(OverlayError::ZeroFlowTick));

        let zero_backoff = OverlayConfig {
            breaker_backoff: SimDuration::ZERO,
            ..base.clone()
        };
        assert_eq!(
            zero_backoff.validate(),
            Err(OverlayError::ZeroBreakerBackoff)
        );
        // Threshold 0 disables the breaker; a zero backoff is then fine.
        let breaker_off = OverlayConfig {
            breaker_failure_threshold: 0,
            breaker_backoff: SimDuration::ZERO,
            ..base.clone()
        };
        assert!(breaker_off.validate().is_ok());

        let narrow_queue = OverlayConfig {
            reliability_enabled: true,
            reliability_window: 256,
            queue_capacity: 64,
            ..base.clone()
        };
        assert_eq!(
            narrow_queue.validate(),
            Err(OverlayError::WindowExceedsQueue {
                window: 256,
                capacity: 64,
            })
        );
        // The same knobs are fine with flow control off…
        let fc_off = OverlayConfig {
            flow_control_enabled: false,
            ..narrow_queue.clone()
        };
        assert!(fc_off.validate().is_ok());
        // …or with a queue wide enough for the window.
        let wide_queue = OverlayConfig {
            queue_capacity: 256,
            ..narrow_queue
        };
        assert!(wide_queue.validate().is_ok());
    }

    #[test]
    fn validation_rejects_inconsistent_durability_knobs() {
        use crate::error::OverlayError;
        let base = OverlayConfig {
            durability_enabled: true,
            ..OverlayConfig::default()
        };
        assert!(base.validate().is_ok());

        let zero_segment = OverlayConfig {
            wal_segment_bytes: 0,
            ..base.clone()
        };
        assert_eq!(zero_segment.validate(), Err(OverlayError::ZeroSegmentBytes));

        let zero_flush = OverlayConfig {
            wal_flush_every: 0,
            ..base.clone()
        };
        assert_eq!(zero_flush.validate(), Err(OverlayError::ZeroFlushEvery));

        // The same zero knobs are ignored while durability is off.
        let durability_off = OverlayConfig {
            durability_enabled: false,
            wal_segment_bytes: 0,
            wal_flush_every: 0,
            ..OverlayConfig::default()
        };
        assert!(durability_off.validate().is_ok());
    }
}
