//! The heterogeneous actor wrapper dispatching to brokers or subscribers.

use layercake_sim::{Actor, ActorId, Ctx, SimDuration};

use crate::broker::Broker;
use crate::ctx::{Node, NodeCtx};
use crate::msg::OverlayMsg;
use crate::subscriber::SubscriberNode;

/// An overlay node: either an intermediate broker or a subscriber runtime.
///
/// Wrapping both roles in one enum keeps the simulation world statically
/// dispatched and lets the facade inspect node state after a run without
/// downcasting.
// Both roles are sizeable and actor vectors are small relative to event
// traffic, so boxing a variant buys nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum NodeActor {
    /// An intermediate broker (stage ≥ 1).
    Broker(Broker),
    /// A subscriber runtime (stage 0).
    Subscriber(SubscriberNode),
}

impl NodeActor {
    /// The broker inside, if this node is one.
    #[must_use]
    pub fn as_broker(&self) -> Option<&Broker> {
        match self {
            NodeActor::Broker(b) => Some(b),
            NodeActor::Subscriber(_) => None,
        }
    }

    /// The subscriber inside, if this node is one.
    #[must_use]
    pub fn as_subscriber(&self) -> Option<&SubscriberNode> {
        match self {
            NodeActor::Subscriber(s) => Some(s),
            NodeActor::Broker(_) => None,
        }
    }

    /// Mutable subscriber access (used by the facade for soft-state
    /// unsubscription).
    pub fn as_subscriber_mut(&mut self) -> Option<&mut SubscriberNode> {
        match self {
            NodeActor::Subscriber(s) => Some(s),
            NodeActor::Broker(_) => None,
        }
    }
}

impl Node for Broker {
    fn on_message(&mut self, from: ActorId, msg: OverlayMsg, ctx: &mut dyn NodeCtx) {
        self.handle(from, msg, ctx);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut dyn NodeCtx) {
        self.timer(tag, ctx);
    }

    fn on_restart(&mut self, ctx: &mut dyn NodeCtx) {
        Broker::on_restart(self, ctx);
    }

    fn service_cost(&self, msg: &OverlayMsg) -> Option<SimDuration> {
        Broker::service_cost(self, msg)
    }
}

impl Node for SubscriberNode {
    fn on_message(&mut self, from: ActorId, msg: OverlayMsg, ctx: &mut dyn NodeCtx) {
        self.handle(from, msg, ctx);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut dyn NodeCtx) {
        self.timer(tag, ctx);
    }

    // Subscribers are leaf runtimes: their subscription state survives
    // in-process; lease silence handles lost hosts. Filtering at the leaf
    // is modeled as free: the paper's bottleneck is broker matching.
}

impl Node for NodeActor {
    fn on_message(&mut self, from: ActorId, msg: OverlayMsg, ctx: &mut dyn NodeCtx) {
        match self {
            NodeActor::Broker(b) => b.handle(from, msg, ctx),
            NodeActor::Subscriber(s) => s.handle(from, msg, ctx),
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut dyn NodeCtx) {
        match self {
            NodeActor::Broker(b) => b.timer(tag, ctx),
            NodeActor::Subscriber(s) => s.timer(tag, ctx),
        }
    }

    fn on_restart(&mut self, ctx: &mut dyn NodeCtx) {
        match self {
            NodeActor::Broker(b) => Broker::on_restart(b, ctx),
            NodeActor::Subscriber(_) => {}
        }
    }

    fn service_cost(&self, msg: &OverlayMsg) -> Option<SimDuration> {
        match self {
            NodeActor::Broker(b) => Broker::service_cost(b, msg),
            NodeActor::Subscriber(_) => None,
        }
    }
}

impl Actor for NodeActor {
    type Msg = OverlayMsg;

    fn on_message(&mut self, from: ActorId, msg: OverlayMsg, ctx: &mut Ctx<'_, OverlayMsg>) {
        Node::on_message(self, from, msg, ctx);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, OverlayMsg>) {
        Node::on_timer(self, tag, ctx);
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, OverlayMsg>) {
        Node::on_restart(self, ctx);
    }

    fn service_cost(&self, msg: &OverlayMsg) -> Option<SimDuration> {
        Node::service_cost(self, msg)
    }
}
