//! The overlay's wire protocol (Figures 5 and 6).

use layercake_event::{Advertisement, Envelope};
use layercake_filter::{Filter, FilterId};
use layercake_sim::ActorId;

/// A subscription request as it travels down the hierarchy looking for its
/// insertion point (Figure 5(a): `Subscription(f_sub)`).
#[derive(Debug, Clone)]
pub struct SubscriptionReq {
    /// Unique id of this subscription.
    pub id: FilterId,
    /// The standardized subscription filter.
    pub filter: Filter,
    /// The subscribing node.
    pub subscriber: ActorId,
}

/// Messages exchanged between overlay nodes.
#[derive(Debug, Clone)]
pub enum OverlayMsg {
    /// Event-class advertisement carrying the attribute–stage association
    /// `G_c`; flooded down from the root (Section 4.1).
    Advertise(Advertisement),
    /// A subscription request (sent to the root first, then re-sent to the
    /// node named by each `JoinAt` redirect).
    Subscribe(SubscriptionReq),
    /// Redirect: the subscriber should re-send its request to `node`
    /// (Figure 5(b): `join-At(id_node)`).
    JoinAt {
        /// The original request, echoed back.
        req: SubscriptionReq,
        /// The node to try next.
        node: ActorId,
    },
    /// The subscription was inserted at `node` (Figure 5(b):
    /// `accepted-At(node_i)`).
    AcceptedAt {
        /// The subscription that was accepted.
        id: FilterId,
        /// The node now hosting it.
        node: ActorId,
    },
    /// A child asks its parent to store a weakened filter for it
    /// (Figure 5(b): `req-Insert(f_c, id_c)`).
    ReqInsert {
        /// The weakened filter (already at the receiving node's stage).
        filter: Filter,
        /// The requesting child node.
        child: ActorId,
    },
    /// An event traveling down the broker hierarchy.
    Publish(Envelope),
    /// An event delivered to a subscriber runtime for final, perfect
    /// filtering.
    Deliver(Envelope),
    /// Lease renewal: the sender refreshes the validity of all filters it
    /// has registered at the receiver (Section 4.3).
    Renew,
    /// Explicit unsubscription (Section 4.3: the soft-state scheme "can be
    /// combined with explicit unsubscription for efficiency"): the hosting
    /// node removes the subscriber's filter immediately.
    Unsubscribe {
        /// The standardized original subscription filter.
        filter: Filter,
        /// The unsubscribing node.
        subscriber: ActorId,
    },
    /// A child no longer needs a weakened filter stored at its parent
    /// (the upstream propagation of explicit unsubscription).
    ReqRemove {
        /// The weakened filter (in the receiving node's stage format).
        filter: Filter,
        /// The requesting child node.
        child: ActorId,
    },
    /// Durable subscription going offline (Section 2.1: nodes store events
    /// "for temporarily disconnected subscribers with durable
    /// subscriptions"): the hosting node starts buffering the subscriber's
    /// matching events.
    Detach {
        /// The disconnecting subscriber.
        subscriber: ActorId,
    },
    /// The durable subscriber is back: the hosting node flushes the
    /// buffered events in publication order.
    Attach {
        /// The reconnecting subscriber.
        subscriber: ActorId,
    },
    /// An event under per-link reliable sequencing (used instead of
    /// `Publish`/`Deliver` when the overlay runs with
    /// [`crate::OverlayConfig::reliability_enabled`]).
    Sequenced {
        /// The sender's sequence number for this `(sender, receiver)` link.
        link_seq: u64,
        /// The event itself.
        env: Envelope,
    },
    /// The receiver of a reliable link detected a gap: it asks the sender
    /// to retransmit link sequence numbers in `from_seq..to_seq`.
    Nack {
        /// First missing link sequence number.
        from_seq: u64,
        /// One past the last missing link sequence number.
        to_seq: u64,
    },
    /// The sender of a reliable link concedes that everything below `to`
    /// was evicted from its retransmission buffer; the receiver should
    /// skip ahead rather than stall on the unrecoverable gap.
    Advance {
        /// The new lower bound for the receiver's expected link sequence.
        to: u64,
    },
    /// Positive acknowledgement of a [`OverlayMsg::Renew`]: the hosting
    /// node confirms it still holds filters for the renewing subscriber.
    /// A renewal that goes unacknowledged tells the subscriber its host
    /// lost state (crash) and it must re-subscribe.
    RenewAck,
    /// A restarted broker announces itself to its parent; the parent
    /// re-sends its advertisements so the child can rebuild its stage maps.
    Rejoin,
    /// A broker asks a child to re-register the weakened filters the child
    /// needs stored here (sent by a restarted broker rebuilding its table,
    /// and to children whose renewals reference unknown filters).
    Reannounce,
    /// Credit probe: a sender stalled on zero flow-control credit asks its
    /// downstream for an immediate [`OverlayMsg::CreditGrant`]. Also the
    /// liveness probe of a half-open circuit breaker.
    Credit,
    /// Credit grant: the receiver reports how many data messages it has
    /// consumed from this link **in total**. Grants are absolute (not
    /// deltas), so duplicated, reordered or lost grants never corrupt the
    /// sender's credit window — the sender simply keeps the maximum.
    CreditGrant {
        /// Cumulative count of data messages the receiver has consumed on
        /// this directed link.
        consumed_total: u64,
    },
}

impl OverlayMsg {
    /// Whether this message carries event payload (the *data plane*).
    /// Data messages are subject to flow control: they consume link
    /// credit, wait in bounded egress queues, and may be shed under
    /// overload. Everything else is *control plane* — placement,
    /// leases, reliability NACKs, credit itself — and always bypasses
    /// the queues, so the overlay can heal while saturated.
    #[must_use]
    pub fn is_data(&self) -> bool {
        matches!(
            self,
            OverlayMsg::Publish(_) | OverlayMsg::Deliver(_) | OverlayMsg::Sequenced { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use layercake_event::{ClassId, EventData, EventSeq, StageMap};

    #[test]
    fn messages_are_cloneable_and_debuggable() {
        let req = SubscriptionReq {
            id: FilterId(1),
            filter: Filter::any(),
            subscriber: ActorId(3),
        };
        let msgs = vec![
            OverlayMsg::Advertise(Advertisement::new(
                ClassId(0),
                StageMap::from_prefixes(&[1]).unwrap(),
            )),
            OverlayMsg::Subscribe(req.clone()),
            OverlayMsg::JoinAt {
                req,
                node: ActorId(4),
            },
            OverlayMsg::AcceptedAt {
                id: FilterId(1),
                node: ActorId(4),
            },
            OverlayMsg::ReqInsert {
                filter: Filter::any(),
                child: ActorId(2),
            },
            OverlayMsg::Publish(Envelope::from_meta(
                ClassId(0),
                "X",
                EventSeq(0),
                EventData::new(),
            )),
            OverlayMsg::Renew,
            OverlayMsg::Credit,
            OverlayMsg::CreditGrant { consumed_total: 7 },
        ];
        for m in &msgs {
            let copy = m.clone();
            assert!(!format!("{copy:?}").is_empty());
        }
    }

    #[test]
    fn only_event_payloads_are_data_plane() {
        let env = Envelope::from_meta(ClassId(0), "X", EventSeq(0), EventData::new());
        assert!(OverlayMsg::Publish(env.clone()).is_data());
        assert!(OverlayMsg::Deliver(env.clone()).is_data());
        assert!(OverlayMsg::Sequenced {
            link_seq: 0,
            env: env.clone(),
        }
        .is_data());
        for control in [
            OverlayMsg::Renew,
            OverlayMsg::RenewAck,
            OverlayMsg::Rejoin,
            OverlayMsg::Reannounce,
            OverlayMsg::Credit,
            OverlayMsg::CreditGrant { consumed_total: 0 },
            OverlayMsg::Nack {
                from_seq: 0,
                to_seq: 1,
            },
            OverlayMsg::Advance { to: 1 },
        ] {
            assert!(!control.is_data(), "{control:?} must be control plane");
        }
    }
}
