//! The overlay's wire protocol (Figures 5 and 6).
//!
//! Besides the in-memory message enum, this module defines its *wire
//! encoding*: a hand-written serde mapping onto tagged JSON objects
//! (`{"t": "<variant>", ...fields}`), used by the wall-clock runtime to
//! put every hop through a real serialize → frame → deframe →
//! deserialize cycle. Node addresses ([`ActorId`]) travel as plain
//! integers — the id space is runtime-local, exactly as in the
//! simulator — and all payload types (filters, advertisements,
//! envelopes) reuse their existing wire formats, so the envelope bytes a
//! broker forwards are the same bytes the simulator's trace tooling
//! knows.

use layercake_event::{Advertisement, ClassId, Envelope};
use layercake_filter::{Filter, FilterId};
use layercake_sim::ActorId;
use serde::{DeError, Deserialize, Serialize, Value};

/// A subscription request as it travels down the hierarchy looking for its
/// insertion point (Figure 5(a): `Subscription(f_sub)`).
#[derive(Debug, Clone, PartialEq)]
pub struct SubscriptionReq {
    /// Unique id of this subscription.
    pub id: FilterId,
    /// The standardized subscription filter.
    pub filter: Filter,
    /// The subscribing node.
    pub subscriber: ActorId,
    /// Durable subscription: the hosting broker logs every matching
    /// event to its durable log and replays the unacknowledged suffix
    /// when the subscriber re-attaches or re-subscribes — even across a
    /// broker crash (Section 2.1's durable subscriptions, backed by the
    /// write-ahead log instead of the in-memory `parked` buffer).
    pub durable: bool,
}

/// Messages exchanged between overlay nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum OverlayMsg {
    /// Event-class advertisement carrying the attribute–stage association
    /// `G_c`; flooded down from the root (Section 4.1).
    Advertise(Advertisement),
    /// A subscription request (sent to the root first, then re-sent to the
    /// node named by each `JoinAt` redirect).
    Subscribe(SubscriptionReq),
    /// Redirect: the subscriber should re-send its request to `node`
    /// (Figure 5(b): `join-At(id_node)`).
    JoinAt {
        /// The original request, echoed back.
        req: SubscriptionReq,
        /// The node to try next.
        node: ActorId,
    },
    /// The subscription was inserted at `node` (Figure 5(b):
    /// `accepted-At(node_i)`).
    AcceptedAt {
        /// The subscription that was accepted.
        id: FilterId,
        /// The node now hosting it.
        node: ActorId,
    },
    /// A child asks its parent to store a weakened filter for it
    /// (Figure 5(b): `req-Insert(f_c, id_c)`).
    ReqInsert {
        /// The weakened filter (already at the receiving node's stage).
        filter: Filter,
        /// The requesting child node.
        child: ActorId,
    },
    /// An event traveling down the broker hierarchy.
    Publish(Envelope),
    /// An event delivered to a subscriber runtime for final, perfect
    /// filtering.
    Deliver(Envelope),
    /// Lease renewal: the sender refreshes the validity of all filters it
    /// has registered at the receiver (Section 4.3).
    Renew,
    /// Explicit unsubscription (Section 4.3: the soft-state scheme "can be
    /// combined with explicit unsubscription for efficiency"): the hosting
    /// node removes the subscriber's filter immediately.
    Unsubscribe {
        /// The standardized original subscription filter.
        filter: Filter,
        /// The unsubscribing node.
        subscriber: ActorId,
    },
    /// A child no longer needs a weakened filter stored at its parent
    /// (the upstream propagation of explicit unsubscription).
    ReqRemove {
        /// The weakened filter (in the receiving node's stage format).
        filter: Filter,
        /// The requesting child node.
        child: ActorId,
    },
    /// Durable subscription going offline (Section 2.1: nodes store events
    /// "for temporarily disconnected subscribers with durable
    /// subscriptions"): the hosting node starts buffering the subscriber's
    /// matching events.
    Detach {
        /// The disconnecting subscriber.
        subscriber: ActorId,
    },
    /// The durable subscriber is back: the hosting node flushes the
    /// buffered events in publication order.
    Attach {
        /// The reconnecting subscriber.
        subscriber: ActorId,
    },
    /// An event under per-link reliable sequencing (used instead of
    /// `Publish`/`Deliver` when the overlay runs with
    /// [`crate::OverlayConfig::reliability_enabled`]).
    Sequenced {
        /// The sender's sequence number for this `(sender, receiver)` link.
        link_seq: u64,
        /// The event itself.
        env: Envelope,
    },
    /// The receiver of a reliable link detected a gap: it asks the sender
    /// to retransmit link sequence numbers in `from_seq..to_seq`.
    Nack {
        /// First missing link sequence number.
        from_seq: u64,
        /// One past the last missing link sequence number.
        to_seq: u64,
    },
    /// The sender of a reliable link concedes that everything below `to`
    /// was evicted from its retransmission buffer; the receiver should
    /// skip ahead rather than stall on the unrecoverable gap.
    Advance {
        /// The new lower bound for the receiver's expected link sequence.
        to: u64,
    },
    /// Positive acknowledgement of a [`OverlayMsg::Renew`]: the hosting
    /// node confirms it still holds filters for the renewing subscriber.
    /// A renewal that goes unacknowledged tells the subscriber its host
    /// lost state (crash) and it must re-subscribe.
    RenewAck,
    /// A restarted broker announces itself to its parent; the parent
    /// re-sends its advertisements so the child can rebuild its stage maps.
    Rejoin,
    /// A broker asks a child to re-register the weakened filters the child
    /// needs stored here (sent by a restarted broker rebuilding its table,
    /// and to children whose renewals reference unknown filters).
    Reannounce,
    /// Credit probe: a sender stalled on zero flow-control credit asks its
    /// downstream for an immediate [`OverlayMsg::CreditGrant`]. Also the
    /// liveness probe of a half-open circuit breaker.
    Credit,
    /// Credit grant: the receiver reports how many data messages it has
    /// consumed from this link **in total**. Grants are absolute (not
    /// deltas), so duplicated, reordered or lost grants never corrupt the
    /// sender's credit window — the sender simply keeps the maximum.
    CreditGrant {
        /// Cumulative count of data messages the receiver has consumed on
        /// this directed link.
        consumed_total: u64,
    },
    /// An event delivered from a broker's durable log to a durable
    /// subscriber, stamped with its per-class log offset. Durable
    /// deliveries bypass the flow-control egress queues and the
    /// retransmission ring: the log itself is the buffer, and loss is
    /// repaired by offset replay rather than NACKs.
    Durable {
        /// The event's per-class durable log offset (1-based, monotone).
        off: u64,
        /// The event itself.
        env: Envelope,
    },
    /// A durable subscriber acknowledges everything of `class` up to and
    /// including log offset `upto`; the hosting broker persists the
    /// offset and may compact segments all consumers have passed.
    /// Subscribers only ever acknowledge their highest *contiguous*
    /// received offset — a gap in the durable stream is repaired by
    /// replay, never acked over, so compaction can't outrun delivery.
    AckUpto {
        /// The event class being acknowledged.
        class: ClassId,
        /// Highest contiguous durable offset received for that class.
        upto: u64,
    },
    /// Opens (or re-opens) the durable stream of one class toward a
    /// subscriber: the [`OverlayMsg::Durable`] deliveries that follow
    /// start at `base + 1` and are contiguous. Sent by the hosting broker
    /// on durable registration, on re-attach, and whenever it restarts a
    /// stalled stream from the consumer's acknowledged offset. The
    /// subscriber resets its contiguity cursor to `base` — which is what
    /// lets it detect a genuine hole (and request replay) instead of
    /// guessing where the stream begins.
    DurableBase {
        /// The event class whose stream is (re)starting.
        class: ClassId,
        /// The offset the stream resumes after (the consumer's
        /// acknowledged offset as persisted at the broker).
        base: u64,
    },
}

impl OverlayMsg {
    /// Whether this message carries event payload (the *data plane*).
    /// Data messages are subject to flow control: they consume link
    /// credit, wait in bounded egress queues, and may be shed under
    /// overload. Everything else is *control plane* — placement,
    /// leases, reliability NACKs, credit itself — and always bypasses
    /// the queues, so the overlay can heal while saturated.
    #[must_use]
    pub fn is_data(&self) -> bool {
        matches!(
            self,
            OverlayMsg::Publish(_)
                | OverlayMsg::Deliver(_)
                | OverlayMsg::Sequenced { .. }
                | OverlayMsg::Durable { .. }
        )
    }
}

// ---------------------------------------------------------------------------
// Wire encoding
// ---------------------------------------------------------------------------
//
// Every message becomes an object tagged with its variant name under "t",
// with the variant's fields flattened alongside. Node addresses are plain
// integers: `ActorId(usize::MAX)` (the external-sender sentinel) survives
// the trip through `u64`.

fn actor_value(a: ActorId) -> Value {
    (a.0 as u64).serialize_value()
}

fn actor_field(v: &Value, name: &str) -> Result<ActorId, DeError> {
    let raw: u64 = serde::__field(v, name)?;
    Ok(ActorId(raw as usize))
}

impl Serialize for SubscriptionReq {
    fn serialize_value(&self) -> Value {
        let mut obj = Value::object();
        obj.insert_field("id", self.id.serialize_value());
        obj.insert_field("filter", self.filter.serialize_value());
        obj.insert_field("subscriber", actor_value(self.subscriber));
        obj.insert_field("durable", self.durable.serialize_value());
        obj
    }
}

impl Deserialize for SubscriptionReq {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(SubscriptionReq {
            id: serde::__field(v, "id")?,
            filter: serde::__field(v, "filter")?,
            subscriber: actor_field(v, "subscriber")?,
            durable: serde::__field(v, "durable")?,
        })
    }
}

impl Serialize for OverlayMsg {
    fn serialize_value(&self) -> Value {
        let mut obj = Value::object();
        let tag = match self {
            OverlayMsg::Advertise(ad) => {
                obj.insert_field("ad", ad.serialize_value());
                "Advertise"
            }
            OverlayMsg::Subscribe(req) => {
                obj.insert_field("req", req.serialize_value());
                "Subscribe"
            }
            OverlayMsg::JoinAt { req, node } => {
                obj.insert_field("req", req.serialize_value());
                obj.insert_field("node", actor_value(*node));
                "JoinAt"
            }
            OverlayMsg::AcceptedAt { id, node } => {
                obj.insert_field("id", id.serialize_value());
                obj.insert_field("node", actor_value(*node));
                "AcceptedAt"
            }
            OverlayMsg::ReqInsert { filter, child } => {
                obj.insert_field("filter", filter.serialize_value());
                obj.insert_field("child", actor_value(*child));
                "ReqInsert"
            }
            OverlayMsg::Publish(env) => {
                obj.insert_field("env", env.serialize_value());
                "Publish"
            }
            OverlayMsg::Deliver(env) => {
                obj.insert_field("env", env.serialize_value());
                "Deliver"
            }
            OverlayMsg::Renew => "Renew",
            OverlayMsg::Unsubscribe { filter, subscriber } => {
                obj.insert_field("filter", filter.serialize_value());
                obj.insert_field("subscriber", actor_value(*subscriber));
                "Unsubscribe"
            }
            OverlayMsg::ReqRemove { filter, child } => {
                obj.insert_field("filter", filter.serialize_value());
                obj.insert_field("child", actor_value(*child));
                "ReqRemove"
            }
            OverlayMsg::Detach { subscriber } => {
                obj.insert_field("subscriber", actor_value(*subscriber));
                "Detach"
            }
            OverlayMsg::Attach { subscriber } => {
                obj.insert_field("subscriber", actor_value(*subscriber));
                "Attach"
            }
            OverlayMsg::Sequenced { link_seq, env } => {
                obj.insert_field("link_seq", link_seq.serialize_value());
                obj.insert_field("env", env.serialize_value());
                "Sequenced"
            }
            OverlayMsg::Nack { from_seq, to_seq } => {
                obj.insert_field("from_seq", from_seq.serialize_value());
                obj.insert_field("to_seq", to_seq.serialize_value());
                "Nack"
            }
            OverlayMsg::Advance { to } => {
                obj.insert_field("to", to.serialize_value());
                "Advance"
            }
            OverlayMsg::RenewAck => "RenewAck",
            OverlayMsg::Rejoin => "Rejoin",
            OverlayMsg::Reannounce => "Reannounce",
            OverlayMsg::Credit => "Credit",
            OverlayMsg::CreditGrant { consumed_total } => {
                obj.insert_field("consumed_total", consumed_total.serialize_value());
                "CreditGrant"
            }
            OverlayMsg::Durable { off, env } => {
                obj.insert_field("off", off.serialize_value());
                obj.insert_field("env", env.serialize_value());
                "Durable"
            }
            OverlayMsg::AckUpto { class, upto } => {
                obj.insert_field("class", u64::from(class.0).serialize_value());
                obj.insert_field("upto", upto.serialize_value());
                "AckUpto"
            }
            OverlayMsg::DurableBase { class, base } => {
                obj.insert_field("class", u64::from(class.0).serialize_value());
                obj.insert_field("base", base.serialize_value());
                "DurableBase"
            }
        };
        obj.insert_field("t", Value::Str(tag.to_owned()));
        obj
    }
}

impl Deserialize for OverlayMsg {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let tag: String = serde::__field(v, "t")?;
        Ok(match tag.as_str() {
            "Advertise" => OverlayMsg::Advertise(serde::__field(v, "ad")?),
            "Subscribe" => OverlayMsg::Subscribe(serde::__field(v, "req")?),
            "JoinAt" => OverlayMsg::JoinAt {
                req: serde::__field(v, "req")?,
                node: actor_field(v, "node")?,
            },
            "AcceptedAt" => OverlayMsg::AcceptedAt {
                id: serde::__field(v, "id")?,
                node: actor_field(v, "node")?,
            },
            "ReqInsert" => OverlayMsg::ReqInsert {
                filter: serde::__field(v, "filter")?,
                child: actor_field(v, "child")?,
            },
            "Publish" => OverlayMsg::Publish(serde::__field(v, "env")?),
            "Deliver" => OverlayMsg::Deliver(serde::__field(v, "env")?),
            "Renew" => OverlayMsg::Renew,
            "Unsubscribe" => OverlayMsg::Unsubscribe {
                filter: serde::__field(v, "filter")?,
                subscriber: actor_field(v, "subscriber")?,
            },
            "ReqRemove" => OverlayMsg::ReqRemove {
                filter: serde::__field(v, "filter")?,
                child: actor_field(v, "child")?,
            },
            "Detach" => OverlayMsg::Detach {
                subscriber: actor_field(v, "subscriber")?,
            },
            "Attach" => OverlayMsg::Attach {
                subscriber: actor_field(v, "subscriber")?,
            },
            "Sequenced" => OverlayMsg::Sequenced {
                link_seq: serde::__field(v, "link_seq")?,
                env: serde::__field(v, "env")?,
            },
            "Nack" => OverlayMsg::Nack {
                from_seq: serde::__field(v, "from_seq")?,
                to_seq: serde::__field(v, "to_seq")?,
            },
            "Advance" => OverlayMsg::Advance {
                to: serde::__field(v, "to")?,
            },
            "RenewAck" => OverlayMsg::RenewAck,
            "Rejoin" => OverlayMsg::Rejoin,
            "Reannounce" => OverlayMsg::Reannounce,
            "Credit" => OverlayMsg::Credit,
            "CreditGrant" => OverlayMsg::CreditGrant {
                consumed_total: serde::__field(v, "consumed_total")?,
            },
            "Durable" => OverlayMsg::Durable {
                off: serde::__field(v, "off")?,
                env: serde::__field(v, "env")?,
            },
            "AckUpto" => {
                let class: u64 = serde::__field(v, "class")?;
                OverlayMsg::AckUpto {
                    class: ClassId(class as u32),
                    upto: serde::__field(v, "upto")?,
                }
            }
            "DurableBase" => {
                let class: u64 = serde::__field(v, "class")?;
                OverlayMsg::DurableBase {
                    class: ClassId(class as u32),
                    base: serde::__field(v, "base")?,
                }
            }
            other => return Err(DeError::msg(format!("unknown OverlayMsg tag {other:?}"))),
        })
    }
}

// ---------------------------------------------------------------------------
// Binary wire encoding
// ---------------------------------------------------------------------------
//
// The compact form: a single tag byte per variant, varints for every
// integer, attribute/class names through the per-connection dictionary.
// `ActorId` travels as a varint `u64`, so the external-sender sentinel
// `ActorId(usize::MAX)` survives the trip exactly as it does in JSON.

use layercake_event::{write_varint, BinCodec, CodecError, DecodeDict, EncodeDict, WireReader};

fn write_actor(out: &mut Vec<u8>, a: ActorId) {
    write_varint(out, a.0 as u64);
}

fn read_actor(r: &mut WireReader<'_>) -> Result<ActorId, CodecError> {
    let raw = r.varint()?;
    usize::try_from(raw)
        .map(ActorId)
        .map_err(|_| CodecError::Invalid("actor id exceeds usize"))
}

impl BinCodec for SubscriptionReq {
    fn encode_bin(&self, out: &mut Vec<u8>, dict: &mut EncodeDict) {
        self.id.encode_bin(out, dict);
        self.filter.encode_bin(out, dict);
        write_actor(out, self.subscriber);
        out.push(u8::from(self.durable));
    }

    fn decode_bin(r: &mut WireReader<'_>, dict: &DecodeDict) -> Result<Self, CodecError> {
        let id = FilterId::decode_bin(r, dict)?;
        let filter = Filter::decode_bin(r, dict)?;
        let subscriber = read_actor(r)?;
        let durable = match r.u8()? {
            0 => false,
            1 => true,
            t => return Err(CodecError::Tag(t)),
        };
        Ok(SubscriptionReq {
            id,
            filter,
            subscriber,
            durable,
        })
    }
}

// Variant tag bytes. Stable wire constants: append, never renumber.
const T_ADVERTISE: u8 = 0;
const T_SUBSCRIBE: u8 = 1;
const T_JOIN_AT: u8 = 2;
const T_ACCEPTED_AT: u8 = 3;
const T_REQ_INSERT: u8 = 4;
const T_PUBLISH: u8 = 5;
const T_DELIVER: u8 = 6;
const T_RENEW: u8 = 7;
const T_UNSUBSCRIBE: u8 = 8;
const T_REQ_REMOVE: u8 = 9;
const T_DETACH: u8 = 10;
const T_ATTACH: u8 = 11;
const T_SEQUENCED: u8 = 12;
const T_NACK: u8 = 13;
const T_ADVANCE: u8 = 14;
const T_RENEW_ACK: u8 = 15;
const T_REJOIN: u8 = 16;
const T_REANNOUNCE: u8 = 17;
const T_CREDIT: u8 = 18;
const T_CREDIT_GRANT: u8 = 19;
const T_DURABLE: u8 = 20;
const T_ACK_UPTO: u8 = 21;
const T_DURABLE_BASE: u8 = 22;

impl BinCodec for OverlayMsg {
    fn encode_bin(&self, out: &mut Vec<u8>, dict: &mut EncodeDict) {
        match self {
            OverlayMsg::Advertise(ad) => {
                out.push(T_ADVERTISE);
                ad.encode_bin(out, dict);
            }
            OverlayMsg::Subscribe(req) => {
                out.push(T_SUBSCRIBE);
                req.encode_bin(out, dict);
            }
            OverlayMsg::JoinAt { req, node } => {
                out.push(T_JOIN_AT);
                req.encode_bin(out, dict);
                write_actor(out, *node);
            }
            OverlayMsg::AcceptedAt { id, node } => {
                out.push(T_ACCEPTED_AT);
                id.encode_bin(out, dict);
                write_actor(out, *node);
            }
            OverlayMsg::ReqInsert { filter, child } => {
                out.push(T_REQ_INSERT);
                filter.encode_bin(out, dict);
                write_actor(out, *child);
            }
            OverlayMsg::Publish(env) => {
                out.push(T_PUBLISH);
                env.encode_bin(out, dict);
            }
            OverlayMsg::Deliver(env) => {
                out.push(T_DELIVER);
                env.encode_bin(out, dict);
            }
            OverlayMsg::Renew => out.push(T_RENEW),
            OverlayMsg::Unsubscribe { filter, subscriber } => {
                out.push(T_UNSUBSCRIBE);
                filter.encode_bin(out, dict);
                write_actor(out, *subscriber);
            }
            OverlayMsg::ReqRemove { filter, child } => {
                out.push(T_REQ_REMOVE);
                filter.encode_bin(out, dict);
                write_actor(out, *child);
            }
            OverlayMsg::Detach { subscriber } => {
                out.push(T_DETACH);
                write_actor(out, *subscriber);
            }
            OverlayMsg::Attach { subscriber } => {
                out.push(T_ATTACH);
                write_actor(out, *subscriber);
            }
            OverlayMsg::Sequenced { link_seq, env } => {
                out.push(T_SEQUENCED);
                write_varint(out, *link_seq);
                env.encode_bin(out, dict);
            }
            OverlayMsg::Nack { from_seq, to_seq } => {
                out.push(T_NACK);
                write_varint(out, *from_seq);
                write_varint(out, *to_seq);
            }
            OverlayMsg::Advance { to } => {
                out.push(T_ADVANCE);
                write_varint(out, *to);
            }
            OverlayMsg::RenewAck => out.push(T_RENEW_ACK),
            OverlayMsg::Rejoin => out.push(T_REJOIN),
            OverlayMsg::Reannounce => out.push(T_REANNOUNCE),
            OverlayMsg::Credit => out.push(T_CREDIT),
            OverlayMsg::CreditGrant { consumed_total } => {
                out.push(T_CREDIT_GRANT);
                write_varint(out, *consumed_total);
            }
            OverlayMsg::Durable { off, env } => {
                out.push(T_DURABLE);
                write_varint(out, *off);
                env.encode_bin(out, dict);
            }
            OverlayMsg::AckUpto { class, upto } => {
                out.push(T_ACK_UPTO);
                class.encode_bin(out, dict);
                write_varint(out, *upto);
            }
            OverlayMsg::DurableBase { class, base } => {
                out.push(T_DURABLE_BASE);
                class.encode_bin(out, dict);
                write_varint(out, *base);
            }
        }
    }

    fn decode_bin(r: &mut WireReader<'_>, dict: &DecodeDict) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            T_ADVERTISE => OverlayMsg::Advertise(Advertisement::decode_bin(r, dict)?),
            T_SUBSCRIBE => OverlayMsg::Subscribe(SubscriptionReq::decode_bin(r, dict)?),
            T_JOIN_AT => OverlayMsg::JoinAt {
                req: SubscriptionReq::decode_bin(r, dict)?,
                node: read_actor(r)?,
            },
            T_ACCEPTED_AT => OverlayMsg::AcceptedAt {
                id: FilterId::decode_bin(r, dict)?,
                node: read_actor(r)?,
            },
            T_REQ_INSERT => OverlayMsg::ReqInsert {
                filter: Filter::decode_bin(r, dict)?,
                child: read_actor(r)?,
            },
            T_PUBLISH => OverlayMsg::Publish(Envelope::decode_bin(r, dict)?),
            T_DELIVER => OverlayMsg::Deliver(Envelope::decode_bin(r, dict)?),
            T_RENEW => OverlayMsg::Renew,
            T_UNSUBSCRIBE => OverlayMsg::Unsubscribe {
                filter: Filter::decode_bin(r, dict)?,
                subscriber: read_actor(r)?,
            },
            T_REQ_REMOVE => OverlayMsg::ReqRemove {
                filter: Filter::decode_bin(r, dict)?,
                child: read_actor(r)?,
            },
            T_DETACH => OverlayMsg::Detach {
                subscriber: read_actor(r)?,
            },
            T_ATTACH => OverlayMsg::Attach {
                subscriber: read_actor(r)?,
            },
            T_SEQUENCED => OverlayMsg::Sequenced {
                link_seq: r.varint()?,
                env: Envelope::decode_bin(r, dict)?,
            },
            T_NACK => OverlayMsg::Nack {
                from_seq: r.varint()?,
                to_seq: r.varint()?,
            },
            T_ADVANCE => OverlayMsg::Advance { to: r.varint()? },
            T_RENEW_ACK => OverlayMsg::RenewAck,
            T_REJOIN => OverlayMsg::Rejoin,
            T_REANNOUNCE => OverlayMsg::Reannounce,
            T_CREDIT => OverlayMsg::Credit,
            T_CREDIT_GRANT => OverlayMsg::CreditGrant {
                consumed_total: r.varint()?,
            },
            T_DURABLE => OverlayMsg::Durable {
                off: r.varint()?,
                env: Envelope::decode_bin(r, dict)?,
            },
            T_ACK_UPTO => OverlayMsg::AckUpto {
                class: ClassId::decode_bin(r, dict)?,
                upto: r.varint()?,
            },
            T_DURABLE_BASE => OverlayMsg::DurableBase {
                class: ClassId::decode_bin(r, dict)?,
                base: r.varint()?,
            },
            t => return Err(CodecError::Tag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use layercake_event::{ClassId, EventData, EventSeq, StageMap};

    #[test]
    fn messages_are_cloneable_and_debuggable() {
        let req = SubscriptionReq {
            id: FilterId(1),
            filter: Filter::any(),
            subscriber: ActorId(3),
            durable: false,
        };
        let msgs = vec![
            OverlayMsg::Advertise(Advertisement::new(
                ClassId(0),
                StageMap::from_prefixes(&[1]).unwrap(),
            )),
            OverlayMsg::Subscribe(req.clone()),
            OverlayMsg::JoinAt {
                req,
                node: ActorId(4),
            },
            OverlayMsg::AcceptedAt {
                id: FilterId(1),
                node: ActorId(4),
            },
            OverlayMsg::ReqInsert {
                filter: Filter::any(),
                child: ActorId(2),
            },
            OverlayMsg::Publish(Envelope::from_meta(
                ClassId(0),
                "X",
                EventSeq(0),
                EventData::new(),
            )),
            OverlayMsg::Renew,
            OverlayMsg::Credit,
            OverlayMsg::CreditGrant { consumed_total: 7 },
        ];
        for m in &msgs {
            let copy = m.clone();
            assert!(!format!("{copy:?}").is_empty());
        }
    }

    #[test]
    fn only_event_payloads_are_data_plane() {
        let env = Envelope::from_meta(ClassId(0), "X", EventSeq(0), EventData::new());
        assert!(OverlayMsg::Publish(env.clone()).is_data());
        assert!(OverlayMsg::Deliver(env.clone()).is_data());
        assert!(OverlayMsg::Sequenced {
            link_seq: 0,
            env: env.clone(),
        }
        .is_data());
        assert!(OverlayMsg::Durable {
            off: 1,
            env: env.clone(),
        }
        .is_data());
        for control in [
            OverlayMsg::Renew,
            OverlayMsg::RenewAck,
            OverlayMsg::Rejoin,
            OverlayMsg::Reannounce,
            OverlayMsg::Credit,
            OverlayMsg::CreditGrant { consumed_total: 0 },
            OverlayMsg::Nack {
                from_seq: 0,
                to_seq: 1,
            },
            OverlayMsg::Advance { to: 1 },
            OverlayMsg::AckUpto {
                class: ClassId(0),
                upto: 3,
            },
            OverlayMsg::DurableBase {
                class: ClassId(0),
                base: 3,
            },
        ] {
            assert!(!control.is_data(), "{control:?} must be control plane");
        }
    }

    /// One instance of every variant, with non-trivial payloads where the
    /// variant carries any.
    fn one_of_each() -> Vec<OverlayMsg> {
        let mut meta = EventData::new();
        meta.insert("symbol", "Foo");
        meta.insert("price", 9.5_f64);
        let mut env = Envelope::from_meta(ClassId(3), "Stock", EventSeq(41), meta);
        env.set_trace(Some(layercake_event::TraceContext::new(
            layercake_event::TraceId(77),
            123_456,
        )));
        let req = SubscriptionReq {
            id: FilterId(9),
            filter: Filter::any(),
            subscriber: ActorId(usize::MAX),
            durable: true,
        };
        vec![
            OverlayMsg::Advertise(Advertisement::new(
                ClassId(3),
                StageMap::from_prefixes(&[2, 1]).unwrap(),
            )),
            OverlayMsg::Subscribe(req.clone()),
            OverlayMsg::JoinAt {
                req,
                node: ActorId(4),
            },
            OverlayMsg::AcceptedAt {
                id: FilterId(9),
                node: ActorId(0),
            },
            OverlayMsg::ReqInsert {
                filter: Filter::any(),
                child: ActorId(2),
            },
            OverlayMsg::Publish(env.clone()),
            OverlayMsg::Deliver(env.clone()),
            OverlayMsg::Renew,
            OverlayMsg::Unsubscribe {
                filter: Filter::any(),
                subscriber: ActorId(5),
            },
            OverlayMsg::ReqRemove {
                filter: Filter::any(),
                child: ActorId(6),
            },
            OverlayMsg::Detach {
                subscriber: ActorId(7),
            },
            OverlayMsg::Attach {
                subscriber: ActorId(7),
            },
            OverlayMsg::Sequenced {
                link_seq: 19,
                env: env.clone(),
            },
            OverlayMsg::Nack {
                from_seq: 3,
                to_seq: 8,
            },
            OverlayMsg::Advance { to: 11 },
            OverlayMsg::RenewAck,
            OverlayMsg::Rejoin,
            OverlayMsg::Reannounce,
            OverlayMsg::Credit,
            OverlayMsg::CreditGrant {
                consumed_total: u64::MAX,
            },
            OverlayMsg::Durable { off: 23, env },
            OverlayMsg::AckUpto {
                class: ClassId(3),
                upto: 23,
            },
            OverlayMsg::DurableBase {
                class: ClassId(3),
                base: 17,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for msg in one_of_each() {
            let bytes = serde_json::to_vec(&msg).unwrap();
            let back: OverlayMsg = serde_json::from_slice(&bytes).unwrap();
            assert_eq!(msg, back, "value round trip failed");
            // Byte identity: re-serializing the decoded message yields the
            // exact bytes that were sent (the encoding is canonical).
            let again = serde_json::to_vec(&back).unwrap();
            assert_eq!(bytes, again, "re-encode of {msg:?} not byte-identical");
        }
    }

    #[test]
    fn external_sender_sentinel_survives_the_wire() {
        let msg = OverlayMsg::Detach {
            subscriber: ActorId(usize::MAX),
        };
        let bytes = serde_json::to_vec(&msg).unwrap();
        let back: OverlayMsg = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(msg, back);
    }

    #[test]
    fn every_variant_round_trips_through_binary_shared_dict() {
        use layercake_event::DictMode;
        let mut enc = EncodeDict::new(DictMode::Shared);
        let dec = DecodeDict::new(DictMode::Shared);
        for msg in one_of_each() {
            let mut buf = Vec::new();
            msg.encode_bin(&mut buf, &mut enc);
            let mut r = WireReader::new(&buf);
            let back = OverlayMsg::decode_bin(&mut r, &dec).unwrap();
            assert_eq!(msg, back, "binary round trip failed");
            r.expect_end().unwrap();
            assert!(!enc.has_pending(), "shared dict never announces");
        }
    }

    #[test]
    fn every_variant_round_trips_through_negotiated_dict() {
        use layercake_event::DictMode;
        let mut enc = EncodeDict::new(DictMode::Negotiated);
        let mut dec = DecodeDict::new(DictMode::Negotiated);
        for msg in one_of_each() {
            let mut buf = Vec::new();
            msg.encode_bin(&mut buf, &mut enc);
            let pending = enc.take_pending();
            if !pending.is_empty() {
                let mut update = Vec::new();
                layercake_event::encode_dict_update(
                    &pending.iter().map(|(w, n)| (*w, *n)).collect::<Vec<_>>(),
                    &mut update,
                );
                dec.apply_update(&update[1..]).unwrap();
            }
            let mut r = WireReader::new(&buf);
            let back = OverlayMsg::decode_bin(&mut r, &dec).unwrap();
            assert_eq!(msg, back, "negotiated round trip failed");
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn binary_is_smaller_than_json_for_every_variant() {
        use layercake_event::DictMode;
        let mut enc = EncodeDict::new(DictMode::Shared);
        for msg in one_of_each() {
            let json = serde_json::to_vec(&msg).unwrap();
            let mut bin = Vec::new();
            msg.encode_bin(&mut bin, &mut enc);
            assert!(
                bin.len() < json.len(),
                "{msg:?}: binary {} bytes >= json {} bytes",
                bin.len(),
                json.len()
            );
        }
    }

    #[test]
    fn binary_external_sentinel_survives_the_wire() {
        use layercake_event::DictMode;
        let msg = OverlayMsg::Detach {
            subscriber: ActorId(usize::MAX),
        };
        let mut enc = EncodeDict::new(DictMode::Shared);
        let dec = DecodeDict::new(DictMode::Shared);
        let mut buf = Vec::new();
        msg.encode_bin(&mut buf, &mut enc);
        let mut r = WireReader::new(&buf);
        assert_eq!(OverlayMsg::decode_bin(&mut r, &dec).unwrap(), msg);
    }

    #[test]
    fn binary_unknown_variant_tag_is_rejected() {
        let dec = DecodeDict::new(layercake_event::DictMode::Shared);
        let mut r = WireReader::new(&[200]);
        assert_eq!(
            OverlayMsg::decode_bin(&mut r, &dec),
            Err(CodecError::Tag(200))
        );
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut obj = Value::object();
        obj.insert_field("t", Value::Str("Bogus".to_owned()));
        let err = OverlayMsg::deserialize_value(&obj).unwrap_err();
        assert!(format!("{err}").contains("Bogus"));
    }

    #[test]
    fn missing_fields_are_rejected() {
        // A tag whose required payload field is absent must not decode.
        let mut obj = Value::object();
        obj.insert_field("t", Value::Str("Publish".to_owned()));
        assert!(OverlayMsg::deserialize_value(&obj).is_err());
    }
}
