//! Per-link reliable event transfer: sequencing, gap detection (NACK),
//! bounded retransmission buffers, and `(class, seq)` deduplication.
//!
//! The paper's overlay assumes reliable links; this module supplies that
//! reliability on top of the fault-injecting simulation substrate
//! ([`layercake_sim::FaultPlan`]). Every event forwarded on a link
//! `(sender, receiver)` carries a per-link sequence number. The receiver
//! releases events in sequence order, NACKs gaps back to the sender, and
//! suppresses duplicates both by link sequence and — as a second line of
//! defense — by the event's `(class, seq)` identity. The sender keeps a
//! bounded ring of recently sent events and retransmits on NACK; sequence
//! numbers evicted from the ring are conceded with an [`advance`] hint so
//! the receiver never stalls on an unrecoverable gap.
//!
//! [`advance`]: LinkTx::handle_nack

use std::collections::{BTreeMap, HashSet, VecDeque};

use layercake_event::{ClassId, Envelope, EventSeq};

/// Receiver side of one reliable link.
#[derive(Debug, Default)]
pub(crate) struct LinkRx {
    next_expected: u64,
    /// Out-of-order arrivals parked until the gap before them fills.
    pending: BTreeMap<u64, Envelope>,
    /// Recently released `(class, seq)` identities, FIFO-bounded.
    recent: VecDeque<(ClassId, EventSeq)>,
    recent_set: HashSet<(ClassId, EventSeq)>,
}

/// What the receiver should do after one sequenced arrival.
#[derive(Debug, Default)]
pub(crate) struct RxOutcome {
    /// Events now deliverable, in link-sequence order.
    pub released: Vec<Envelope>,
    /// `Some((from_seq, to_seq))`: the arrival exposed a gap — NACK the
    /// half-open range back to the sender.
    pub nack: Option<(u64, u64)>,
    /// Arrivals suppressed as duplicates (by link seq or `(class, seq)`).
    pub duplicates_suppressed: u64,
}

impl LinkRx {
    /// Processes one sequenced arrival.
    pub fn on_event(&mut self, link_seq: u64, env: Envelope, window: usize) -> RxOutcome {
        let mut out = RxOutcome::default();
        if link_seq < self.next_expected || self.pending.contains_key(&link_seq) {
            out.duplicates_suppressed += 1;
            return out;
        }
        if link_seq > self.next_expected {
            out.nack = Some((self.next_expected, link_seq));
            self.pending.insert(link_seq, env);
            return out;
        }
        self.release(env, window, &mut out);
        // The gap just closed; drain any parked successors.
        while let Some(env) = self.pending.remove(&self.next_expected) {
            self.release(env, window, &mut out);
        }
        out
    }

    /// Sender conceded everything below `to` is unrecoverable: skip ahead.
    pub fn on_advance(&mut self, to: u64, window: usize) -> RxOutcome {
        let mut out = RxOutcome::default();
        if to <= self.next_expected {
            return out;
        }
        self.next_expected = to;
        self.pending.retain(|&s, _| s >= to);
        while let Some(env) = self.pending.remove(&self.next_expected) {
            self.release(env, window, &mut out);
        }
        out
    }

    fn release(&mut self, env: Envelope, window: usize, out: &mut RxOutcome) {
        self.next_expected += 1;
        let key = (env.class(), env.seq());
        if !self.recent_set.insert(key) {
            out.duplicates_suppressed += 1;
            return;
        }
        self.recent.push_back(key);
        if self.recent.len() > window {
            if let Some(old) = self.recent.pop_front() {
                self.recent_set.remove(&old);
            }
        }
        out.released.push(env);
    }
}

/// Sender side of one reliable link.
#[derive(Debug, Default)]
pub(crate) struct LinkTx {
    next_seq: u64,
    /// Ring of `(link_seq, envelope)` still available for retransmission.
    buffer: VecDeque<(u64, Envelope)>,
}

impl LinkTx {
    /// Assigns the next link sequence number to `env` and remembers it for
    /// retransmission, evicting the oldest entry past `window`.
    pub fn stamp(&mut self, env: Envelope, window: usize) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.buffer.push_back((seq, env));
        if self.buffer.len() > window {
            self.buffer.pop_front();
        }
        seq
    }

    /// Serves a NACK for `[from_seq, to_seq)`. Returns the retransmittable
    /// `(link_seq, envelope)` pairs, plus `Some(advance_to)` when the low
    /// end of the range was already evicted from the buffer.
    pub fn handle_nack(
        &mut self,
        from_seq: u64,
        to_seq: u64,
    ) -> (Vec<(u64, Envelope)>, Option<u64>) {
        let resend: Vec<(u64, Envelope)> = self
            .buffer
            .iter()
            .filter(|(s, _)| (from_seq..to_seq).contains(s))
            .cloned()
            .collect();
        let oldest = self.buffer.front().map_or(self.next_seq, |(s, _)| *s);
        let advance = (from_seq < oldest).then_some(oldest.min(to_seq));
        (resend, advance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use layercake_event::EventData;

    fn env(seq: u64) -> Envelope {
        Envelope::from_meta(ClassId(0), "C", EventSeq(seq), EventData::new())
    }

    #[test]
    fn in_order_stream_releases_everything() {
        let mut rx = LinkRx::default();
        for i in 0..5 {
            let out = rx.on_event(i, env(i), 16);
            assert_eq!(out.released.len(), 1);
            assert!(out.nack.is_none());
        }
    }

    #[test]
    fn gap_nacks_and_heals_on_retransmission() {
        let mut rx = LinkRx::default();
        rx.on_event(0, env(0), 16);
        // 1 and 2 lost; 3 arrives.
        let out = rx.on_event(3, env(3), 16);
        assert!(out.released.is_empty());
        assert_eq!(out.nack, Some((1, 3)));
        // Retransmissions close the gap and flush the parked event.
        let out = rx.on_event(1, env(1), 16);
        assert_eq!(out.released.len(), 1);
        let out = rx.on_event(2, env(2), 16);
        assert_eq!(
            out.released.iter().map(Envelope::seq).collect::<Vec<_>>(),
            vec![EventSeq(2), EventSeq(3)]
        );
    }

    #[test]
    fn duplicates_are_suppressed_by_link_seq() {
        let mut rx = LinkRx::default();
        rx.on_event(0, env(0), 16);
        let out = rx.on_event(0, env(0), 16);
        assert!(out.released.is_empty());
        assert_eq!(out.duplicates_suppressed, 1);
        // A parked out-of-order duplicate is also suppressed.
        rx.on_event(2, env(2), 16);
        let out = rx.on_event(2, env(2), 16);
        assert_eq!(out.duplicates_suppressed, 1);
    }

    #[test]
    fn class_seq_dedup_catches_resequenced_duplicates() {
        // The same event sent twice under different link seqs (sender-side
        // duplication) is caught by the (class, seq) identity check.
        let mut rx = LinkRx::default();
        assert_eq!(rx.on_event(0, env(7), 16).released.len(), 1);
        let out = rx.on_event(1, env(7), 16);
        assert!(out.released.is_empty());
        assert_eq!(out.duplicates_suppressed, 1);
    }

    #[test]
    fn tx_retransmits_from_buffer_and_concedes_evicted() {
        let mut tx = LinkTx::default();
        for i in 0..10 {
            assert_eq!(tx.stamp(env(i), 4), i);
        }
        // Window 4 keeps seqs 6..=9.
        let (resend, advance) = tx.handle_nack(7, 9);
        assert_eq!(
            resend.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![7, 8]
        );
        assert_eq!(advance, None);
        let (resend, advance) = tx.handle_nack(2, 8);
        assert_eq!(
            resend.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![6, 7]
        );
        assert_eq!(advance, Some(6));
    }

    #[test]
    fn advance_unblocks_a_stalled_receiver() {
        let mut rx = LinkRx::default();
        rx.on_event(0, env(0), 16);
        rx.on_event(5, env(5), 16); // parked; 1..=4 lost forever
        let out = rx.on_advance(5, 16);
        assert_eq!(out.released.len(), 1);
        assert_eq!(out.released[0].seq(), EventSeq(5));
        // Idempotent for stale hints.
        let out = rx.on_advance(3, 16);
        assert!(out.released.is_empty());
    }
}
