//! Hop-by-hop flow control for the data plane: credit windows, bounded
//! egress queues, priority load shedding, and per-downstream circuit
//! breakers.
//!
//! Each directed link `(sender, receiver)` carrying event traffic gets a
//! [`FlowTx`] on the sender and a [`FlowRx`] on the receiver. The credit
//! protocol is *absolute*: the receiver reports the cumulative count of
//! data messages it has consumed ([`OverlayMsg::CreditGrant`]), and the
//! sender's window is `capacity − (sent − consumed)`. Absolute grants are
//! idempotent under the simulator's fault plans — a duplicated or
//! reordered grant merges via `max`, and a lost grant is subsumed by the
//! next one — where delta grants would double- or under-credit.
//!
//! Message loss on an unreliable link leaks credit (a dropped data message
//! is never consumed). Two paths heal the leak by *rebasing* the window —
//! writing off whatever is unaccounted in flight. A silent downstream
//! trips the circuit breaker, and the grant that closes it rebases. An
//! *answering* downstream that reports no consumption progress across a
//! full stall cycle proves it is alive and idle, so the missing credit
//! belongs to the wire, not to its backlog: the sender rebases in place
//! ([`Tick::Resync`]) instead of stalling forever. Fault-free links never
//! leak, and the transient worst case is bounded by one window.
//!
//! Shedding is priority-aware and happens only here, on the sender side:
//! fresh data events are dropped when the bounded queue is full or the
//! breaker is open; retransmissions (already holding a link sequence) are
//! queued at the *front* and never shed by overflow; control-plane
//! messages never enter the queue at all.
//!
//! [`OverlayMsg::CreditGrant`]: crate::msg::OverlayMsg::CreditGrant

use std::collections::VecDeque;

use layercake_event::Envelope;
use layercake_sim::{SimDuration, SimTime};

/// Backoff doubling stops at 64× the configured initial backoff.
const MAX_BACKOFF_FACTOR: u64 = 64;

/// One entry of a sender's bounded egress queue.
#[derive(Debug)]
pub(crate) enum Queued {
    /// A fresh event. Its link sequence (under reliable links) is stamped
    /// only at dequeue, so link order always equals send order even when
    /// retransmissions jump the queue.
    Fresh(Envelope),
    /// A retransmission, already carrying its original link sequence.
    Retransmit {
        /// The link sequence the event was first sent under.
        link_seq: u64,
        /// The event itself.
        env: Envelope,
    },
}

/// What became of a fresh data event offered to a link.
#[derive(Debug)]
pub(crate) enum Offer {
    /// Credit available and nothing queued ahead: transmit immediately.
    Send(Envelope),
    /// Parked in the egress queue (at `depth`, 1-based) awaiting credit.
    Queued {
        /// Queue depth after the push.
        depth: usize,
    },
    /// Shed: the bounded queue is full. The envelope is handed back so
    /// the caller can record provenance before dropping it.
    ShedQueueFull(Envelope),
    /// Shed: the downstream's circuit breaker is open (or probing
    /// half-open). The envelope is handed back for provenance.
    ShedBreakerOpen(Envelope),
}

/// What the per-link maintenance tick decided.
#[derive(Debug)]
pub(crate) enum Tick {
    /// Nothing to do.
    Idle,
    /// Stalled on zero credit: send a [`Credit`] probe downstream.
    ///
    /// [`Credit`]: crate::msg::OverlayMsg::Credit
    Probe,
    /// The breaker tripped; everything queued was flushed for shedding.
    Opened {
        /// The flushed queue entries (fresh and retransmit alike).
        flushed: Vec<Queued>,
    },
    /// The open period elapsed: the breaker is half-open, send one probe.
    HalfOpenProbe,
    /// Leaked credit was written off (the downstream answered probes but
    /// reported zero progress for a full stall cycle): the queue has
    /// credit again and should be drained.
    Resync,
}

/// The effect of one credit grant on the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct GrantEffect {
    /// The grant recovered an open/half-open breaker (window rebased).
    pub closed_breaker: bool,
}

/// Circuit-breaker state for one downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    /// Forwarding normally; `failures` consecutive stalled ticks so far.
    Closed { failures: u32 },
    /// Tripped: no data flows until `until`, then one half-open probe.
    Open {
        until: SimTime,
        backoff: SimDuration,
    },
    /// Probing: one `Credit` was sent; a grant closes, silence reopens
    /// with doubled backoff.
    HalfOpen { backoff: SimDuration },
}

/// Sender side of one flow-controlled link.
#[derive(Debug)]
pub(crate) struct FlowTx {
    capacity: usize,
    threshold: u32,
    base_backoff: SimDuration,
    /// Data messages put on the wire since the last rebase epoch began.
    sent_total: u64,
    /// Highest cumulative consumed count any grant has reported.
    seen_consumed: u64,
    /// Rebase offset: `in_flight = sent_total − base − seen_consumed`.
    base: u64,
    queue: VecDeque<Queued>,
    breaker: Breaker,
    /// A grant arrived since the last maintenance tick (liveness proof).
    granted_since_tick: bool,
    /// `seen_consumed` at the previous stalled tick; an unchanged value
    /// on a granted tick exposes leaked (wire-lost) credit.
    stall_mark: Option<u64>,
}

impl FlowTx {
    pub fn new(capacity: usize, threshold: u32, base_backoff: SimDuration) -> Self {
        Self {
            capacity,
            threshold,
            base_backoff,
            sent_total: 0,
            seen_consumed: 0,
            base: 0,
            queue: VecDeque::new(),
            breaker: Breaker::Closed { failures: 0 },
            granted_since_tick: false,
            stall_mark: None,
        }
    }

    /// Data messages on the wire not yet reported consumed.
    fn in_flight(&self) -> u64 {
        self.sent_total
            .saturating_sub(self.base.saturating_add(self.seen_consumed))
    }

    /// Remaining credit: how many more data messages may be sent now.
    pub fn credit(&self) -> u64 {
        (self.capacity as u64).saturating_sub(self.in_flight())
    }

    /// Current egress-queue depth.
    #[cfg(test)]
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Whether the breaker currently blocks data (open or half-open).
    pub fn is_broken(&self) -> bool {
        !matches!(self.breaker, Breaker::Closed { .. })
    }

    /// Whether the breaker sits fully open (backing off).
    #[cfg(test)]
    pub fn is_open(&self) -> bool {
        matches!(self.breaker, Breaker::Open { .. })
    }

    /// Whether this link still needs maintenance ticks: something is
    /// queued, or the breaker is mid-recovery.
    pub fn needs_tick(&self) -> bool {
        !self.queue.is_empty() || self.is_broken()
    }

    /// Offers one fresh data event to the link.
    pub fn offer(&mut self, env: Envelope) -> Offer {
        if self.is_broken() {
            return Offer::ShedBreakerOpen(env);
        }
        if self.queue.is_empty() && self.credit() > 0 {
            self.sent_total += 1;
            return Offer::Send(env);
        }
        if self.queue.len() >= self.capacity {
            return Offer::ShedQueueFull(env);
        }
        self.queue.push_back(Queued::Fresh(env));
        Offer::Queued {
            depth: self.queue.len(),
        }
    }

    /// Queues a retransmission at the *front* (gap repair goes first).
    /// Retransmissions are never shed by overflow — the queue may
    /// transiently exceed `capacity` by up to one reliability window,
    /// which [`OverlayConfig::validate`] bounds by `queue_capacity`.
    /// Returns `false` (dropped) when the breaker is open: the NACK will
    /// recur after recovery.
    ///
    /// [`OverlayConfig::validate`]: crate::OverlayConfig::validate
    pub fn push_retransmit(&mut self, link_seq: u64, env: Envelope) -> bool {
        if self.is_broken() {
            return false;
        }
        self.queue.push_front(Queued::Retransmit { link_seq, env });
        true
    }

    /// Pops the next queue entry the current credit allows sending, and
    /// charges it to the window.
    pub fn pop_ready(&mut self) -> Option<Queued> {
        if self.is_broken() || self.credit() == 0 {
            return None;
        }
        let entry = self.queue.pop_front()?;
        self.sent_total += 1;
        Some(entry)
    }

    /// Merges one absolute credit grant.
    pub fn on_grant(&mut self, consumed_total: u64) -> GrantEffect {
        self.granted_since_tick = true;
        self.seen_consumed = self.seen_consumed.max(consumed_total);
        let closed_breaker = self.is_broken();
        if closed_breaker {
            // The downstream answered: close the breaker and re-sync the
            // window, healing any credit leaked by lost data messages.
            self.rebase();
        }
        self.breaker = Breaker::Closed { failures: 0 };
        GrantEffect { closed_breaker }
    }

    /// Restarts the credit epoch: whatever is unaccounted in flight is
    /// written off, so the full window is available again.
    fn rebase(&mut self) {
        self.base = self.sent_total.saturating_sub(self.seen_consumed);
        self.stall_mark = None;
    }

    /// One maintenance tick: stall probing and breaker bookkeeping.
    pub fn on_tick(&mut self, now: SimTime) -> Tick {
        let granted = std::mem::take(&mut self.granted_since_tick);
        match self.breaker {
            Breaker::Open { until, backoff } => {
                if now >= until {
                    self.breaker = Breaker::HalfOpen { backoff };
                    Tick::HalfOpenProbe
                } else {
                    Tick::Idle
                }
            }
            Breaker::HalfOpen { backoff } => {
                // A grant would have closed us before this tick; silence
                // means the downstream is still gone.
                let next = SimDuration::from_ticks(
                    (backoff.ticks().saturating_mul(2))
                        .min(self.base_backoff.ticks().saturating_mul(MAX_BACKOFF_FACTOR)),
                );
                self.breaker = Breaker::Open {
                    until: now + next,
                    backoff: next,
                };
                Tick::Opened {
                    flushed: self.queue.drain(..).collect(),
                }
            }
            Breaker::Closed { failures } => {
                if self.queue.is_empty() || self.credit() > 0 {
                    self.breaker = Breaker::Closed { failures: 0 };
                    self.stall_mark = None;
                    return Tick::Idle;
                }
                if granted {
                    // Alive: never count a failure. But an answering
                    // downstream whose consumption total has not moved
                    // for a whole stall cycle is *idle* — the credit this
                    // window is waiting for was lost on the wire and will
                    // never be granted. Write it off and move on.
                    self.breaker = Breaker::Closed { failures: 0 };
                    if self.stall_mark == Some(self.seen_consumed) {
                        self.rebase();
                        return Tick::Resync;
                    }
                    self.stall_mark = Some(self.seen_consumed);
                    return Tick::Probe;
                }
                self.stall_mark = Some(self.seen_consumed);
                let failures = failures + 1;
                if self.threshold > 0 && failures >= self.threshold {
                    self.breaker = Breaker::Open {
                        until: now + self.base_backoff,
                        backoff: self.base_backoff,
                    };
                    Tick::Opened {
                        flushed: self.queue.drain(..).collect(),
                    }
                } else {
                    self.breaker = Breaker::Closed { failures };
                    Tick::Probe
                }
            }
        }
    }
}

/// Receiver side of one flow-controlled link: counts consumed data
/// messages and batches grants.
#[derive(Debug)]
pub(crate) struct FlowRx {
    consumed_total: u64,
    since_grant: u64,
    batch: u64,
}

impl FlowRx {
    /// Grants fire every `capacity / 4` consumed messages (min 1), so the
    /// sender's window refills four times per capacity-worth of traffic.
    pub fn new(capacity: usize) -> Self {
        Self {
            consumed_total: 0,
            since_grant: 0,
            batch: ((capacity / 4) as u64).max(1),
        }
    }

    /// Counts one consumed data message; returns `Some(consumed_total)`
    /// when a batched grant is due.
    pub fn on_data(&mut self) -> Option<u64> {
        self.consumed_total += 1;
        self.since_grant += 1;
        if self.since_grant >= self.batch {
            self.since_grant = 0;
            Some(self.consumed_total)
        } else {
            None
        }
    }

    /// Answers a credit probe: an immediate, unconditional grant.
    pub fn grant_now(&mut self) -> u64 {
        self.since_grant = 0;
        self.consumed_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use layercake_event::{ClassId, EventData, EventSeq};

    fn env(seq: u64) -> Envelope {
        Envelope::from_meta(ClassId(0), "C", EventSeq(seq), EventData::new())
    }

    fn tx(capacity: usize) -> FlowTx {
        FlowTx::new(capacity, 3, SimDuration::from_ticks(100))
    }

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    #[test]
    fn credit_window_pauses_at_capacity() {
        let mut link = tx(4);
        for i in 0..4 {
            assert!(matches!(link.offer(env(i)), Offer::Send(_)));
        }
        assert_eq!(link.credit(), 0);
        // Fifth message parks; sixth parks deeper.
        assert!(matches!(link.offer(env(4)), Offer::Queued { depth: 1 }));
        assert!(matches!(link.offer(env(5)), Offer::Queued { depth: 2 }));
        // A grant for 1 consumed frees one credit; the queue drains in
        // order until the window closes again.
        link.on_grant(1);
        assert_eq!(link.credit(), 1);
        let popped = link.pop_ready().expect("credit available");
        assert!(matches!(popped, Queued::Fresh(e) if e.seq() == EventSeq(4)));
        assert!(link.pop_ready().is_none(), "window exhausted again");
    }

    #[test]
    fn absolute_grants_tolerate_duplication_and_reordering() {
        let mut link = tx(4);
        for i in 0..4 {
            assert!(matches!(link.offer(env(i)), Offer::Send(_)));
        }
        link.on_grant(2);
        assert_eq!(link.credit(), 2);
        // A duplicated grant adds nothing.
        link.on_grant(2);
        assert_eq!(link.credit(), 2);
        // A stale, reordered grant never shrinks the window.
        link.on_grant(1);
        assert_eq!(link.credit(), 2);
        link.on_grant(4);
        assert_eq!(link.credit(), 4);
    }

    #[test]
    fn full_queue_sheds_fresh_but_never_retransmits() {
        let mut link = tx(2);
        // Exhaust credit, then fill the queue.
        assert!(matches!(link.offer(env(0)), Offer::Send(_)));
        assert!(matches!(link.offer(env(1)), Offer::Send(_)));
        assert!(matches!(link.offer(env(2)), Offer::Queued { .. }));
        assert!(matches!(link.offer(env(3)), Offer::Queued { .. }));
        assert!(matches!(link.offer(env(4)), Offer::ShedQueueFull(_)));
        // A retransmission still gets in — at the front.
        assert!(link.push_retransmit(7, env(9)));
        assert_eq!(link.depth(), 3);
        link.on_grant(1);
        let first = link.pop_ready().expect("one credit");
        assert!(matches!(first, Queued::Retransmit { link_seq: 7, .. }));
    }

    #[test]
    fn breaker_opens_after_consecutive_silent_stalls() {
        let mut link = tx(1);
        assert!(matches!(link.offer(env(0)), Offer::Send(_)));
        assert!(matches!(link.offer(env(1)), Offer::Queued { .. }));
        // Threshold 3: two probing ticks, the third opens and flushes.
        assert!(matches!(link.on_tick(t(10)), Tick::Probe));
        assert!(matches!(link.on_tick(t(20)), Tick::Probe));
        match link.on_tick(t(30)) {
            Tick::Opened { flushed } => assert_eq!(flushed.len(), 1),
            other => panic!("expected Opened, got {other:?}"),
        }
        assert!(link.is_open());
        // While open, fresh data is shed and retransmits are dropped.
        assert!(matches!(link.offer(env(2)), Offer::ShedBreakerOpen(_)));
        assert!(!link.push_retransmit(0, env(2)));
    }

    #[test]
    fn alive_but_idle_downstream_heals_leaked_credit_without_tripping() {
        let mut link = tx(2);
        assert!(matches!(link.offer(env(0)), Offer::Send(_)));
        assert!(matches!(link.offer(env(1)), Offer::Send(_)));
        // Both lost on the wire; the next event parks on zero credit.
        assert!(matches!(link.offer(env(2)), Offer::Queued { .. }));
        // First stalled tick probes the downstream.
        assert!(matches!(link.on_tick(t(10)), Tick::Probe));
        // The probe is answered, but the downstream has consumed nothing:
        // it is alive and idle, so the missing credit is wire loss.
        link.on_grant(0);
        assert!(matches!(link.on_tick(t(20)), Tick::Resync));
        assert!(!link.is_broken(), "answering downstream must never trip");
        // The window rebased: the parked event can go now.
        assert!(matches!(link.pop_ready(), Some(Queued::Fresh(_))));
    }

    #[test]
    fn breaker_recovery_rebases_the_credit_window() {
        let mut link = tx(2);
        assert!(matches!(link.offer(env(0)), Offer::Send(_)));
        assert!(matches!(link.offer(env(1)), Offer::Send(_)));
        // Both messages are lost on the wire: credit leaked, sender stalls.
        assert!(matches!(link.offer(env(2)), Offer::Queued { .. }));
        for tick in 1..=3 {
            link.on_tick(t(tick * 10));
        }
        assert!(link.is_open());
        // Backoff (100) elapses: half-open probe at t=130.
        assert!(matches!(link.on_tick(t(130)), Tick::HalfOpenProbe));
        // The downstream answers with its (never-advanced) total.
        let effect = link.on_grant(0);
        assert!(effect.closed_breaker);
        assert!(!link.is_broken());
        // The leak healed: the full window is available again.
        assert_eq!(link.credit(), 2);
    }

    #[test]
    fn half_open_silence_doubles_backoff_up_to_the_cap() {
        let mut link = tx(1);
        assert!(matches!(link.offer(env(0)), Offer::Send(_)));
        assert!(matches!(link.offer(env(1)), Offer::Queued { .. }));
        let mut now = 0u64;
        for _ in 0..3 {
            now += 10;
            link.on_tick(t(now));
        }
        assert!(link.is_open());
        let mut reopen_gaps = Vec::new();
        let mut last_open = now;
        // Walk failed recovery cycles until the doubling must have
        // saturated (100 → 6400 takes 7 cycles).
        while reopen_gaps.len() < 8 && now < 100_000 {
            now += 10;
            match link.on_tick(t(now)) {
                Tick::HalfOpenProbe => {
                    reopen_gaps.push(now - last_open);
                    // Silence: next tick reopens.
                    now += 10;
                    assert!(matches!(link.on_tick(t(now)), Tick::Opened { .. }));
                    last_open = now;
                }
                Tick::Idle => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        // Gaps between open and half-open grow (100, then 200, …).
        assert_eq!(reopen_gaps.len(), 8);
        assert!(reopen_gaps.windows(2).all(|w| w[1] >= w[0]));
        assert!(reopen_gaps[1] > reopen_gaps[0]);
        // And the cap holds: never beyond 64 × base.
        assert!(reopen_gaps
            .iter()
            .all(|&g| g <= 100 * MAX_BACKOFF_FACTOR + 10));
    }

    #[test]
    fn rx_batches_grants_and_answers_probes() {
        let mut rx = FlowRx::new(8); // batch = 2
        assert_eq!(rx.on_data(), None);
        assert_eq!(rx.on_data(), Some(2));
        assert_eq!(rx.on_data(), None);
        // A probe answers immediately and resets the batch clock.
        assert_eq!(rx.grant_now(), 3);
        assert_eq!(rx.on_data(), None);
        assert_eq!(rx.on_data(), Some(5));
        // Tiny windows still grant at least every message.
        let mut tiny = FlowRx::new(1);
        assert_eq!(tiny.on_data(), Some(1));
        assert_eq!(tiny.on_data(), Some(2));
    }
}
