//! The subscriber runtime: perfect end-to-end filtering at stage 0.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use layercake_event::{ClassId, Envelope, EventSeq, TypeRegistry};
use layercake_filter::{Filter, FilterId};
use layercake_metrics::NodeRecord;
use layercake_sim::{ActorId, SimDuration};
use layercake_trace::{HopRecord, HopVerdict, TraceSink};

use crate::ctx::NodeCtx;
use crate::flow::FlowRx;
use crate::msg::{OverlayMsg, SubscriptionReq};
use crate::reliability::LinkRx;

/// Timer tag: renew the subscription lease at the hosting node.
const TAG_RENEW: u64 = 3;
/// Timer tag: flush batched durable acks (and re-request stalled
/// replays). One-shot, armed while durable progress is unacknowledged.
const TAG_ACK_FLUSH: u64 = 4;
/// Timer tag base: re-subscription backoff check for branch
/// `tag - TAG_RESUB_BASE` (one tag per branch).
const TAG_RESUB_BASE: u64 = 1_000;
/// Cap on the re-subscription backoff exponent (`ttl × 2^attempt`).
const MAX_BACKOFF_EXP: u32 = 5;
/// Durable-ack batching: acknowledge after the contiguity cursor has
/// advanced this far since the last ack (the flush timer covers the
/// remainder), instead of one `AckUpto` per delivery.
const ACK_EVERY: u64 = 8;

/// A stateful subscriber-side predicate that brokers cannot evaluate —
/// the paper's arbitrary filter code (e.g. `BuyFilter`), applied only at
/// the subscriber runtime after the declarative filter passed.
pub trait ResidualFilter: Send {
    /// Evaluates the residual predicate; may mutate internal state.
    fn matches(&mut self, env: &Envelope) -> bool;
}

impl<F: FnMut(&Envelope) -> bool + Send> ResidualFilter for F {
    fn matches(&mut self, env: &Envelope) -> bool {
        self(env)
    }
}

/// One routed branch of a subscription: a standardized conjunction filter
/// plus the node hosting it once placement completed.
#[derive(Debug, Clone)]
pub struct Branch {
    id: FilterId,
    filter: Filter,
    host: Option<ActorId>,
}

impl Branch {
    /// The branch's filter id.
    #[must_use]
    pub fn id(&self) -> FilterId {
        self.id
    }

    /// The standardized branch filter.
    #[must_use]
    pub fn filter(&self) -> &Filter {
        &self.filter
    }

    /// The hosting node, once placed.
    #[must_use]
    pub fn host(&self) -> Option<ActorId> {
        self.host
    }
}

/// A stage-0 subscriber runtime.
///
/// The subscriber drives its own placement (re-sending the subscription on
/// every `join-At` redirect, per Figure 5(a)), applies the *original*
/// filter — declarative part plus optional residual — to every delivered
/// event, and renews its lease while active.
///
/// A subscription may consist of several *branches* (a disjunction of
/// conjunction filters — the "conjunctions/disjunctions" expressiveness
/// level of the paper's Figure 2). Each branch is routed and hosted
/// independently; the subscriber deduplicates events that arrive via more
/// than one branch, so delivery stays exactly-once.
pub struct SubscriberNode {
    label: String,
    branches: Vec<Branch>,
    residual: Option<Box<dyn ResidualFilter>>,
    registry: Arc<TypeRegistry>,
    root: ActorId,
    leases_enabled: bool,
    ttl: SimDuration,
    reliability_window: usize,
    active: bool,
    timer_started: bool,
    redirects: u32,
    received: u64,
    matched: u64,
    bytes_received: u64,
    deliveries: Vec<EventSeq>,
    seen: std::collections::HashSet<EventSeq>,
    store_envelopes: bool,
    inbox: Vec<Envelope>,
    /// Receiver state of reliable links, keyed by the sending host.
    rx: HashMap<ActorId, LinkRx>,
    flow_enabled: bool,
    queue_capacity: usize,
    /// Flow-control consumption counters per sending host; subscribers
    /// only ever *receive* data, so they hold no sender-side state.
    flow_rx: HashMap<ActorId, FlowRx>,
    grants_sent: u64,
    /// Hosts renewed since the last renewal timer, still unacknowledged.
    unacked: Vec<ActorId>,
    /// Per-branch re-subscription attempt counters (reset on acceptance).
    resub_attempts: Vec<u32>,
    resubscriptions: u64,
    dup_suppressed: u64,
    nacks_sent: u64,
    /// Shared trace collector; `None` when tracing is disabled for the run.
    trace: Option<Arc<TraceSink>>,
    /// Whether this subscription is durable: the hosting broker logs the
    /// matched classes and replays past the last acknowledged offset on
    /// re-subscription, so broker crashes lose no accepted history.
    durable: bool,
    /// Events received over the durable replay/delivery path.
    durable_received: u64,
    /// Highest *contiguous* durable offset received per `(host, class)`
    /// stream — the only value ever acknowledged. Seeded by the host's
    /// `DurableBase`; an offset that would leave a hole never advances
    /// it, so the broker can never compact an undelivered record.
    durable_cursor: HashMap<(ActorId, u32), u64>,
    /// Last offset actually acknowledged per stream (acks are batched:
    /// one every [`ACK_EVERY`] cursor advances, the flush timer sweeps
    /// up the remainder).
    durable_acked: HashMap<(ActorId, u32), u64>,
    /// Streams with a detected hole, keyed to the cursor position the
    /// replay was requested at — one `Attach` per hole, not one per
    /// out-of-order arrival; the flush timer re-requests if the stream
    /// stays stalled.
    repair_requested: HashMap<(ActorId, u32), u64>,
    ack_timer_armed: bool,
    /// Replay requests sent after detecting a hole in a durable stream.
    gap_repairs: u64,
}

impl fmt::Debug for SubscriberNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SubscriberNode")
            .field("label", &self.label)
            .field("branches", &self.branches)
            .field("has_residual", &self.residual.is_some())
            .field("received", &self.received)
            .field("matched", &self.matched)
            .finish_non_exhaustive()
    }
}

/// Construction parameters for a [`SubscriberNode`] (mirrors the broker's
/// setup struct to keep the constructor signature flat).
pub(crate) struct SubscriberSetup {
    pub label: String,
    pub branches: Vec<(FilterId, Filter)>,
    pub residual: Option<Box<dyn ResidualFilter>>,
    pub registry: Arc<TypeRegistry>,
    pub root: ActorId,
    pub leases_enabled: bool,
    pub ttl: SimDuration,
    pub reliability_window: usize,
    pub flow_control_enabled: bool,
    pub queue_capacity: usize,
    pub trace: Option<Arc<TraceSink>>,
    pub durable: bool,
}

impl SubscriberNode {
    pub(crate) fn new(setup: SubscriberSetup) -> Self {
        let SubscriberSetup {
            label,
            branches,
            residual,
            registry,
            root,
            leases_enabled,
            ttl,
            reliability_window,
            flow_control_enabled,
            queue_capacity,
            trace,
            durable,
        } = setup;
        debug_assert!(
            !branches.is_empty(),
            "a subscription needs at least one branch"
        );
        let branch_count = branches.len();
        Self {
            label,
            branches: branches
                .into_iter()
                .map(|(id, filter)| Branch {
                    id,
                    filter,
                    host: None,
                })
                .collect(),
            residual,
            registry,
            root,
            leases_enabled,
            ttl,
            reliability_window,
            active: true,
            timer_started: false,
            redirects: 0,
            received: 0,
            matched: 0,
            bytes_received: 0,
            deliveries: Vec::new(),
            seen: std::collections::HashSet::new(),
            store_envelopes: false,
            inbox: Vec::new(),
            rx: HashMap::new(),
            flow_enabled: flow_control_enabled,
            queue_capacity,
            flow_rx: HashMap::new(),
            grants_sent: 0,
            unacked: Vec::new(),
            resub_attempts: vec![0; branch_count],
            resubscriptions: 0,
            dup_suppressed: 0,
            nacks_sent: 0,
            trace,
            durable,
            durable_received: 0,
            durable_cursor: HashMap::new(),
            durable_acked: HashMap::new(),
            repair_requested: HashMap::new(),
            ack_timer_armed: false,
            gap_repairs: 0,
        }
    }

    /// Whether this subscription was created durable.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.durable
    }

    /// Events that arrived over the durable delivery/replay path.
    #[must_use]
    pub fn durable_received(&self) -> u64 {
        self.durable_received
    }

    /// Replay requests this subscriber issued after detecting a hole in
    /// a durable stream (a delivery was lost in flight).
    #[must_use]
    pub fn gap_repairs(&self) -> u64 {
        self.gap_repairs
    }

    /// The highest contiguous durable offset received from `host` for
    /// `class` — what the subscriber acknowledges (test introspection).
    #[must_use]
    pub fn durable_cursor(&self, host: ActorId, class: ClassId) -> Option<u64> {
        self.durable_cursor.get(&(host, class.0)).copied()
    }

    /// Every durable stream's contiguous cursor: `(host, class, cursor)`,
    /// sorted for determinism. This is exactly what the subscriber is
    /// entitled to acknowledge; drivers drain it at graceful shutdown to
    /// persist acks still waiting on the batch threshold or flush timer.
    #[must_use]
    pub fn durable_cursors(&self) -> Vec<(ActorId, ClassId, u64)> {
        let mut out: Vec<(ActorId, ClassId, u64)> = self
            .durable_cursor
            .iter()
            .map(|(&(host, class), &cursor)| (host, ClassId(class), cursor))
            .collect();
        out.sort_unstable_by_key(|&(host, class, _)| (host.0, class.0));
        out
    }

    /// Enables buffering of accepted envelopes for later draining with
    /// [`SubscriberNode::take_inbox`] (used by the typed facade).
    pub fn set_store_envelopes(&mut self, store: bool) {
        self.store_envelopes = store;
    }

    /// Drains the buffered envelopes accepted since the last call.
    pub fn take_inbox(&mut self) -> Vec<Envelope> {
        std::mem::take(&mut self.inbox)
    }

    /// The buffered envelopes accepted so far, without draining them.
    #[must_use]
    pub fn inbox(&self) -> &[Envelope] {
        &self.inbox
    }

    /// The subscriber's display label, e.g. `"sub-0005"`.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The subscription id (of the first branch).
    #[must_use]
    pub fn id(&self) -> FilterId {
        self.branches[0].id
    }

    /// The standardized subscription filter (of the first branch).
    #[must_use]
    pub fn filter(&self) -> &Filter {
        &self.branches[0].filter
    }

    /// All branches of this subscription.
    #[must_use]
    pub fn branches(&self) -> &[Branch] {
        &self.branches
    }

    /// The stage-1 (or higher, for wildcard subscriptions) node hosting the
    /// first branch, once placement completed.
    #[must_use]
    pub fn host(&self) -> Option<ActorId> {
        self.branches[0].host
    }

    /// Whether every branch has completed placement.
    #[must_use]
    pub fn fully_placed(&self) -> bool {
        self.branches.iter().all(|b| b.host.is_some())
    }

    /// Number of `join-At` redirects the placement walk took.
    #[must_use]
    pub fn redirects(&self) -> u32 {
        self.redirects
    }

    /// Sequence numbers of events that passed the full original filter.
    #[must_use]
    pub fn deliveries(&self) -> &[EventSeq] {
        &self.deliveries
    }

    /// Stops renewing the lease: the soft-state unsubscription of
    /// Section 4.3.
    pub fn deactivate(&mut self) {
        self.active = false;
    }

    /// The subscriber's counters as a metrics record (stage 0). Every
    /// delivered event is evaluated against each branch of the original
    /// subscription.
    #[must_use]
    pub fn record(&self) -> NodeRecord {
        NodeRecord {
            node: self.label.clone(),
            stage: 0,
            filters: self.branches.len(),
            received: self.received,
            matched: self.matched,
            evaluations: self.received * self.branches.len() as u64,
            bytes_received: self.bytes_received,
        }
    }

    /// Re-subscriptions issued after a host stopped acknowledging renewals.
    #[must_use]
    pub fn resubscriptions(&self) -> u64 {
        self.resubscriptions
    }

    /// Incoming events suppressed as duplicates on reliable links.
    #[must_use]
    pub fn dup_suppressed(&self) -> u64 {
        self.dup_suppressed
    }

    /// Gap-detection NACKs this subscriber sent to its hosts.
    #[must_use]
    pub fn nacks_sent(&self) -> u64 {
        self.nacks_sent
    }

    /// Credit grants this subscriber sent to its hosts (batched
    /// consumption reports plus probe answers).
    #[must_use]
    pub fn grants_sent(&self) -> u64 {
        self.grants_sent
    }

    pub(crate) fn handle(&mut self, from: ActorId, msg: OverlayMsg, ctx: &mut dyn NodeCtx) {
        match msg {
            OverlayMsg::JoinAt { req, node } => {
                self.redirects += 1;
                ctx.send(node, OverlayMsg::Subscribe(req));
            }
            OverlayMsg::AcceptedAt { id, node } => {
                // A stale acceptance (e.g. a duplicated message from a
                // placement walk restarted since) names no current branch;
                // ignore it rather than panic.
                let Some(branch_idx) = self.branches.iter().position(|b| b.id == id) else {
                    return;
                };
                self.branches[branch_idx].host = Some(node);
                self.resub_attempts[branch_idx] = 0;
                if self.leases_enabled && !self.timer_started {
                    self.timer_started = true;
                    ctx.set_timer(self.ttl, TAG_RENEW);
                }
            }
            OverlayMsg::Deliver(env) => {
                self.bytes_received += env.wire_size() as u64;
                self.note_data_arrival(from, ctx);
                self.accept(from, env, ctx);
            }
            OverlayMsg::DurableBase { class, base } => {
                // The host (re)opens the durable stream of a class: the
                // deliveries that follow are contiguous from `base + 1`.
                // Resetting the cursor — downward too — is what keeps
                // acks honest across a broker crash that regressed the
                // log's offsets; re-sent events fall through `(class,
                // seq)` dedup.
                let key = (from, class.0);
                self.durable_cursor.insert(key, base);
                self.durable_acked.insert(key, base);
                self.repair_requested.remove(&key);
            }
            OverlayMsg::Durable { off, env } => {
                // Durable deliveries skip flow accounting on purpose: the
                // broker sends them outside its credit window, so counting
                // them as consumed credit would corrupt the window. The
                // ack — per class, cumulative — is what advances the
                // broker's persisted offset and unpins log segments, so it
                // must only ever name the highest *contiguous* offset:
                // acking across a hole would let compaction delete a
                // record this subscriber never received.
                self.bytes_received += env.wire_size() as u64;
                self.durable_received += 1;
                let class = env.class();
                let key = (from, class.0);
                match self.durable_cursor.get(&key).copied() {
                    // The stream's `DurableBase` never arrived (lost, or
                    // reordered behind this delivery): deliver — `(class,
                    // seq)` dedup keeps delivery exact — but acknowledge
                    // nothing and ask the host to restart the stream.
                    None => {
                        self.accept(from, env, ctx);
                        self.request_repair(key, u64::MAX, ctx);
                    }
                    Some(cursor) if off == cursor + 1 => {
                        self.accept(from, env, ctx);
                        self.durable_cursor.insert(key, off);
                        self.repair_requested.remove(&key);
                        self.note_durable_progress(key, ctx);
                    }
                    Some(cursor) if off <= cursor => {
                        // A duplicate, or a re-send after the host
                        // restarted a stalled stream: deliver through
                        // dedup and re-ack the cursor immediately — the
                        // host resending means it may have lost our ack.
                        self.accept(from, env, ctx);
                        self.durable_acked.insert(key, cursor);
                        ctx.send(
                            from,
                            OverlayMsg::AckUpto {
                                class,
                                upto: cursor,
                            },
                        );
                    }
                    Some(cursor) => {
                        // A hole: offsets `cursor+1..off` never arrived.
                        // Deliver this event (the replayed copy dedups)
                        // but never ack past the hole; have the host
                        // replay from our acknowledged offset instead.
                        self.accept(from, env, ctx);
                        self.request_repair(key, cursor, ctx);
                    }
                }
            }
            OverlayMsg::Sequenced { link_seq, env } => {
                self.bytes_received += env.wire_size() as u64;
                self.note_data_arrival(from, ctx);
                let outcome = self.rx.entry(from).or_default().on_event(
                    link_seq,
                    env,
                    self.reliability_window,
                );
                self.dup_suppressed += outcome.duplicates_suppressed;
                if let Some((from_seq, to_seq)) = outcome.nack {
                    self.nacks_sent += 1;
                    ctx.send(from, OverlayMsg::Nack { from_seq, to_seq });
                }
                for env in outcome.released {
                    self.accept(from, env, ctx);
                }
            }
            OverlayMsg::Advance { to } => {
                let outcome = self
                    .rx
                    .entry(from)
                    .or_default()
                    .on_advance(to, self.reliability_window);
                self.dup_suppressed += outcome.duplicates_suppressed;
                for env in outcome.released {
                    self.accept(from, env, ctx);
                }
            }
            OverlayMsg::RenewAck => {
                self.unacked.retain(|&h| h != from);
            }
            OverlayMsg::Credit => {
                // Our host stalled on zero credit toward us (or its
                // breaker is probing): answer immediately.
                if self.flow_enabled {
                    let consumed_total = self
                        .flow_rx
                        .entry(from)
                        .or_insert_with(|| FlowRx::new(self.queue_capacity))
                        .grant_now();
                    self.grants_sent += 1;
                    ctx.send(from, OverlayMsg::CreditGrant { consumed_total });
                }
            }
            other => {
                debug_assert!(
                    matches!(
                        other,
                        OverlayMsg::Advertise(_) | OverlayMsg::CreditGrant { .. }
                    ),
                    "unexpected message at subscriber {}: {other:?}",
                    self.label
                );
            }
        }
    }

    /// Acknowledges a durable stream's cursor advance, batched: an ack
    /// goes out once the cursor is [`ACK_EVERY`] past the last ack; any
    /// shorter remainder is swept up by the flush timer, so the broker's
    /// persisted offset (and compaction) lags by a bounded amount only.
    fn note_durable_progress(&mut self, key: (ActorId, u32), ctx: &mut dyn NodeCtx) {
        let cursor = self.durable_cursor[&key];
        let acked = self.durable_acked.get(&key).copied().unwrap_or(0);
        if cursor >= acked + ACK_EVERY {
            self.durable_acked.insert(key, cursor);
            ctx.send(
                key.0,
                OverlayMsg::AckUpto {
                    class: ClassId(key.1),
                    upto: cursor,
                },
            );
        } else if cursor > acked {
            self.arm_ack_timer(ctx);
        }
    }

    /// Asks a stream's host to restart it: `Attach` makes the host send
    /// a fresh `DurableBase` and replay everything past our acknowledged
    /// offset, filling the hole. One request per cursor position —
    /// further out-of-order arrivals at the same cursor are already
    /// covered by the pending replay; the flush timer re-requests if the
    /// stream stays stalled (the request or its replay got lost too).
    fn request_repair(&mut self, key: (ActorId, u32), cursor: u64, ctx: &mut dyn NodeCtx) {
        if self.repair_requested.get(&key) != Some(&cursor) {
            self.repair_requested.insert(key, cursor);
            self.gap_repairs += 1;
            ctx.send(
                key.0,
                OverlayMsg::Attach {
                    subscriber: ctx.me(),
                },
            );
        }
        self.arm_ack_timer(ctx);
    }

    fn arm_ack_timer(&mut self, ctx: &mut dyn NodeCtx) {
        if !self.ack_timer_armed {
            self.ack_timer_armed = true;
            ctx.set_timer(self.ttl, TAG_ACK_FLUSH);
        }
    }

    /// Flushes every pending batched ack and re-requests replays for
    /// streams still waiting on one. Re-arms itself while repairs stay
    /// outstanding, so a lost `Attach` (or a lost replay) cannot stall a
    /// durable stream forever.
    fn flush_durable_acks(&mut self, ctx: &mut dyn NodeCtx) {
        // Deterministic send order: identically-seeded runs must replay
        // byte-identically, and HashMap iteration order is not stable.
        let mut keys: Vec<(ActorId, u32)> = self.durable_cursor.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let cursor = self.durable_cursor[&key];
            let acked = self.durable_acked.get(&key).copied().unwrap_or(0);
            if cursor > acked {
                self.durable_acked.insert(key, cursor);
                ctx.send(
                    key.0,
                    OverlayMsg::AckUpto {
                        class: ClassId(key.1),
                        upto: cursor,
                    },
                );
            }
        }
        let mut stalled: Vec<(ActorId, u32)> = self.repair_requested.keys().copied().collect();
        stalled.sort_unstable();
        for key in &stalled {
            self.gap_repairs += 1;
            ctx.send(
                key.0,
                OverlayMsg::Attach {
                    subscriber: ctx.me(),
                },
            );
        }
        if !stalled.is_empty() {
            self.arm_ack_timer(ctx);
        }
    }

    /// Counts one consumed data message from a host and emits a batched
    /// credit grant when due.
    fn note_data_arrival(&mut self, from: ActorId, ctx: &mut dyn NodeCtx) {
        if !self.flow_enabled {
            return;
        }
        let grant = self
            .flow_rx
            .entry(from)
            .or_insert_with(|| FlowRx::new(self.queue_capacity))
            .on_data();
        if let Some(consumed_total) = grant {
            self.grants_sent += 1;
            ctx.send(from, OverlayMsg::CreditGrant { consumed_total });
        }
    }

    /// Applies the full original filter (declarative branches plus residual)
    /// to one arriving event and records exactly-once deliveries.
    fn accept(&mut self, from: ActorId, env: Envelope, ctx: &mut dyn NodeCtx) {
        self.received += 1;
        let declarative = self
            .branches
            .iter()
            .any(|b| b.filter.matches_envelope(&env, &self.registry));
        let full = declarative
            && match &mut self.residual {
                Some(r) => r.matches(&env),
                None => true,
            };
        // Stage-0 is where an upstream covering filter's verdict can turn
        // out to have been a false positive: record which part of the
        // original filter decided.
        if let Some(tc) = env.trace() {
            if let Some(sink) = &self.trace {
                let now = ctx.trace_now();
                let verdict = if !declarative {
                    HopVerdict::RejectedByOriginal
                } else if !full {
                    HopVerdict::RejectedByResidual
                } else if self.seen.contains(&env.seq()) {
                    HopVerdict::Duplicate
                } else {
                    HopVerdict::Delivered
                };
                sink.record_hop(
                    &tc,
                    HopRecord {
                        node: self.label.clone(),
                        node_id: crate::broker::trace_actor(ctx.me()),
                        from_id: crate::broker::trace_actor(from),
                        stage: 0,
                        shard: ctx.shard(),
                        arrival: layercake_sim::SimTime::from_ticks(now),
                        hop_latency: now.saturating_sub(tc.last_hop_at),
                        verdict,
                    },
                );
            }
        }
        if full {
            self.matched += 1;
            // The same event may arrive once per branch; record it
            // exactly once.
            if self.seen.insert(env.seq()) {
                self.deliveries.push(env.seq());
                if self.store_envelopes {
                    self.inbox.push(env);
                }
            }
        }
    }

    pub(crate) fn timer(&mut self, tag: u64, ctx: &mut dyn NodeCtx) {
        if tag >= TAG_RESUB_BASE {
            // A tag minted for a branch that no longer exists (or a
            // corrupted tag) is ignored instead of indexing out of bounds.
            let branch_idx = (tag - TAG_RESUB_BASE) as usize;
            let needs_host = self
                .branches
                .get(branch_idx)
                .is_some_and(|b| b.host.is_none());
            if self.active && needs_host {
                self.resubscribe(branch_idx, ctx);
            }
            return;
        }
        if tag == TAG_ACK_FLUSH {
            self.ack_timer_armed = false;
            self.flush_durable_acks(ctx);
            return;
        }
        debug_assert_eq!(tag, TAG_RENEW);
        if !self.active {
            return;
        }
        // Hosts that never acknowledged the previous renewal have lost our
        // filters (crash): drop them and re-subscribe from the root.
        let mut suspects = std::mem::take(&mut self.unacked);
        suspects.sort_unstable();
        suspects.dedup();
        for host in suspects {
            self.suspect_host(host, ctx);
        }
        let mut renewed: Vec<ActorId> = Vec::new();
        for b in &self.branches {
            if let Some(host) = b.host {
                if !renewed.contains(&host) {
                    ctx.send(host, OverlayMsg::Renew);
                    renewed.push(host);
                }
            }
        }
        self.unacked = renewed;
        ctx.set_timer(self.ttl, TAG_RENEW);
    }

    /// A host stopped acknowledging renewals: forget it (and its link
    /// state) and start the re-subscription walk for every branch it held.
    fn suspect_host(&mut self, host: ActorId, ctx: &mut dyn NodeCtx) {
        self.rx.remove(&host);
        self.flow_rx.remove(&host);
        // Durable stream state for the dead host is stale: the
        // re-subscription's `DurableBase` re-seeds the cursor from the
        // broker's (possibly recovered-and-regressed) offset table.
        self.durable_cursor.retain(|&(h, _), _| h != host);
        self.durable_acked.retain(|&(h, _), _| h != host);
        self.repair_requested.retain(|&(h, _), _| h != host);
        for i in 0..self.branches.len() {
            if self.branches[i].host == Some(host) {
                self.branches[i].host = None;
                self.resubscribe(i, ctx);
            }
        }
    }

    /// Re-sends one branch's subscription to the root (a fresh placement
    /// walk) and arms an exponentially backed-off retry timer.
    fn resubscribe(&mut self, branch_idx: usize, ctx: &mut dyn NodeCtx) {
        let attempt = self.resub_attempts[branch_idx];
        self.resub_attempts[branch_idx] = attempt.saturating_add(1);
        self.resubscriptions += 1;
        let branch = &self.branches[branch_idx];
        ctx.send(
            self.root,
            OverlayMsg::Subscribe(SubscriptionReq {
                id: branch.id,
                filter: branch.filter.clone(),
                subscriber: ctx.me(),
                durable: self.durable,
            }),
        );
        let backoff = self.ttl * (1u64 << attempt.min(MAX_BACKOFF_EXP));
        ctx.set_timer(backoff, TAG_RESUB_BASE + branch_idx as u64);
    }
}
