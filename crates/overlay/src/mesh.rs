//! Non-hierarchical (peer-to-peer) multi-stage filtering.
//!
//! The paper confines its presentation to hierarchies, noting that
//! "non-hierarchical configurations can also be used, but they have a
//! higher complexity" (Section 4, footnote 1). This module implements that
//! configuration: brokers form an arbitrary *acyclic, connected* peer graph
//! (no root, no stages); publishers and subscribers attach to any broker.
//!
//! Multi-stage filtering generalizes naturally: a subscription's filter is
//! weakened by *hop distance* from the subscriber's access broker — the
//! access broker holds the distance-1 form, its neighbors the distance-2
//! form, and so on, using the same attribute–stage association `G_c` that
//! drives hierarchical weakening. Events flow along the reverse paths of
//! subscription propagation, filtered at every hop against per-neighbor
//! tables, so they are pre-filtered ever more precisely as they approach
//! interested subscribers — the paper's scheme without the hierarchy.
//!
//! The "higher complexity" the paper alludes to is concrete here: every
//! broker keeps one filter table *per neighbor link* plus one for local
//! subscribers, and subscription state is flooded once through the whole
//! graph instead of along a single root path. The `exp_mesh` experiment
//! quantifies the comparison.

use std::collections::HashMap;
use std::sync::Arc;

use layercake_event::{Advertisement, ClassId, Envelope, EventSeq, StageMap, TypeRegistry};
use layercake_filter::{
    standardize, weaken_to_stage, DestId, Filter, FilterError, FilterId, FilterTable, IndexKind,
};
use layercake_metrics::{NodeRecord, RunMetrics};
use layercake_sim::{Actor, ActorId, Ctx, SimDuration, World};

use crate::broker::{actor_of, dest_of};

/// Messages of the mesh protocol.
#[derive(Debug, Clone)]
pub enum MeshMsg {
    /// Class advertisement, flooded through the graph.
    Advertise(Advertisement),
    /// A subscriber registers at its access broker.
    Subscribe {
        /// Subscription id.
        id: FilterId,
        /// Standardized filter.
        filter: Filter,
        /// The subscribing node.
        subscriber: ActorId,
    },
    /// Acknowledgement to the subscriber.
    Accepted {
        /// The accepted subscription.
        id: FilterId,
    },
    /// Subscription interest propagating away from its subscriber:
    /// the filter is already weakened to `distance` hops.
    Propagate {
        /// The weakened filter for this distance.
        filter: Filter,
        /// Hop distance from the access broker (the access broker itself
        /// holds distance 1).
        distance: usize,
    },
    /// An event traveling through the mesh.
    Publish(Envelope),
    /// An event delivered to a subscriber runtime.
    Deliver(Envelope),
}

/// A mesh broker: per-neighbor interest tables plus a local table for
/// directly attached subscribers.
#[derive(Debug)]
pub struct MeshBroker {
    label: String,
    neighbors: Vec<ActorId>,
    registry: Arc<TypeRegistry>,
    stage_maps: HashMap<ClassId, StageMap>,
    /// Interest of each neighbor's direction (filters received from it).
    links: HashMap<ActorId, FilterTable>,
    /// Filters of locally attached subscribers.
    local: FilterTable,
    index: IndexKind,
    received: u64,
    matched: u64,
    evaluations: u64,
    bytes_received: u64,
    /// Reused per-event buffer of local match results, so the publish hot
    /// path does not allocate per event.
    dest_scratch: Vec<DestId>,
}

impl MeshBroker {
    fn new(label: String, registry: Arc<TypeRegistry>, index: IndexKind) -> Self {
        Self {
            label,
            neighbors: Vec::new(),
            registry,
            stage_maps: HashMap::new(),
            links: HashMap::new(),
            local: FilterTable::new(index),
            index,
            received: 0,
            matched: 0,
            evaluations: 0,
            bytes_received: 0,
            dest_scratch: Vec::new(),
        }
    }

    /// The broker's display label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Total filters stored (local + all links).
    #[must_use]
    pub fn filter_count(&self) -> usize {
        self.local.filter_count()
            + self
                .links
                .values()
                .map(FilterTable::filter_count)
                .sum::<usize>()
    }

    /// Counters as a metrics record. Mesh brokers have no stage; they are
    /// reported at stage 1 (the broker tier).
    #[must_use]
    pub fn record(&self) -> NodeRecord {
        NodeRecord {
            node: self.label.clone(),
            stage: 1,
            filters: self.filter_count(),
            received: self.received,
            matched: self.matched,
            evaluations: self.evaluations,
            bytes_received: self.bytes_received,
        }
    }

    fn weaken(&self, filter: &Filter, distance: usize) -> Filter {
        let Some(class_id) = filter.class() else {
            return filter.clone();
        };
        let (Some(class), Some(g)) = (
            self.registry.class(class_id),
            self.stage_maps.get(&class_id),
        ) else {
            return filter.clone();
        };
        weaken_to_stage(filter, class, g, distance)
    }

    fn handle(&mut self, from: ActorId, msg: MeshMsg, ctx: &mut Ctx<'_, MeshMsg>) {
        match msg {
            MeshMsg::Advertise(adv) => {
                if self
                    .stage_maps
                    .insert(adv.class, adv.stage_map.clone())
                    .is_none()
                {
                    for &n in &self.neighbors {
                        if n != from {
                            ctx.send(n, MeshMsg::Advertise(adv.clone()));
                        }
                    }
                }
            }
            MeshMsg::Subscribe {
                id,
                filter,
                subscriber,
            } => {
                let weakened = self.weaken(&filter, 1);
                self.local.insert(weakened, dest_of(subscriber));
                ctx.send(subscriber, MeshMsg::Accepted { id });
                let next = self.weaken(&filter, 2);
                for &n in &self.neighbors {
                    ctx.send(
                        n,
                        MeshMsg::Propagate {
                            filter: next.clone(),
                            distance: 2,
                        },
                    );
                }
            }
            MeshMsg::Propagate { filter, distance } => {
                let table = self
                    .links
                    .entry(from)
                    .or_insert_with(|| FilterTable::new(self.index));
                let created = table.insert(filter.clone(), dest_of(from));
                if created {
                    let next = self.weaken(&filter, distance + 1);
                    for &n in &self.neighbors {
                        if n != from {
                            ctx.send(
                                n,
                                MeshMsg::Propagate {
                                    filter: next.clone(),
                                    distance: distance + 1,
                                },
                            );
                        }
                    }
                }
            }
            MeshMsg::Publish(env) => {
                self.received += 1;
                self.evaluations += self.filter_count() as u64;
                self.bytes_received += env.wire_size() as u64;
                let mut forwarded = false;
                // Local subscribers. The envelope clone per delivery is an
                // `Arc` bump: all copies share one body.
                let mut dests = std::mem::take(&mut self.dest_scratch);
                self.local
                    .matches(env.class(), env.meta(), &self.registry, &mut dests);
                for d in &dests {
                    ctx.send(actor_of(*d), MeshMsg::Deliver(env.clone()));
                    forwarded = true;
                }
                self.dest_scratch = dests;
                // Interested neighbor directions (never back the way the
                // event came; the graph is acyclic so this terminates).
                let neighbors = self.neighbors.clone();
                for n in neighbors {
                    if n == from {
                        continue;
                    }
                    if let Some(table) = self.links.get_mut(&n) {
                        if table.matches_any(env.class(), env.meta(), &self.registry) {
                            ctx.send(n, MeshMsg::Publish(env.clone()));
                            forwarded = true;
                        }
                    }
                }
                if forwarded {
                    self.matched += 1;
                }
            }
            MeshMsg::Accepted { .. } | MeshMsg::Deliver(_) => {
                debug_assert!(
                    false,
                    "subscriber-bound mesh message at broker {}",
                    self.label
                );
            }
        }
    }
}

/// A mesh subscriber runtime: receives deliveries from its access broker
/// and applies the exact original filter.
#[derive(Debug)]
pub struct MeshSubscriber {
    label: String,
    filter: Filter,
    registry: Arc<TypeRegistry>,
    accepted: bool,
    received: u64,
    matched: u64,
    bytes_received: u64,
    deliveries: Vec<EventSeq>,
}

impl MeshSubscriber {
    /// Sequence numbers of accepted events.
    #[must_use]
    pub fn deliveries(&self) -> &[EventSeq] {
        &self.deliveries
    }

    /// Whether the access broker acknowledged the subscription.
    #[must_use]
    pub fn accepted(&self) -> bool {
        self.accepted
    }

    /// Counters as a stage-0 metrics record.
    #[must_use]
    pub fn record(&self) -> NodeRecord {
        NodeRecord {
            node: self.label.clone(),
            stage: 0,
            filters: 1,
            received: self.received,
            matched: self.matched,
            evaluations: self.received,
            bytes_received: self.bytes_received,
        }
    }
}

/// A node of the mesh simulation.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum MeshNode {
    /// A peer broker.
    Broker(MeshBroker),
    /// A subscriber runtime.
    Subscriber(MeshSubscriber),
}

impl Actor for MeshNode {
    type Msg = MeshMsg;

    fn on_message(&mut self, from: ActorId, msg: MeshMsg, ctx: &mut Ctx<'_, MeshMsg>) {
        match self {
            MeshNode::Broker(b) => b.handle(from, msg, ctx),
            MeshNode::Subscriber(s) => match msg {
                MeshMsg::Accepted { .. } => s.accepted = true,
                MeshMsg::Deliver(env) => {
                    s.received += 1;
                    s.bytes_received += env.wire_size() as u64;
                    if s.filter.matches_envelope(&env, &s.registry) {
                        s.matched += 1;
                        s.deliveries.push(env.seq());
                    }
                }
                other => {
                    debug_assert!(false, "unexpected mesh message at subscriber: {other:?}");
                }
            },
        }
    }
}

/// Configuration of a peer mesh.
#[derive(Debug, Clone)]
pub struct MeshConfig {
    /// Number of brokers.
    pub brokers: usize,
    /// Undirected broker-graph edges; the graph must be connected and
    /// acyclic (a free tree — no designated root).
    pub edges: Vec<(usize, usize)>,
    /// Matching strategy of the filter tables.
    pub index: IndexKind,
}

impl MeshConfig {
    /// A line (path) topology of `n` brokers.
    #[must_use]
    pub fn line(n: usize) -> Self {
        Self {
            brokers: n,
            edges: (1..n).map(|i| (i - 1, i)).collect(),
            index: IndexKind::Compiled,
        }
    }

    /// A star topology: broker 0 in the middle.
    #[must_use]
    pub fn star(n: usize) -> Self {
        Self {
            brokers: n,
            edges: (1..n).map(|i| (0, i)).collect(),
            index: IndexKind::Compiled,
        }
    }

    /// Validates connectivity and acyclicity.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.brokers == 0 {
            return Err("mesh needs at least one broker".to_owned());
        }
        if self.edges.len() != self.brokers - 1 {
            return Err(format!(
                "a free tree over {} brokers needs exactly {} edges (got {})",
                self.brokers,
                self.brokers - 1,
                self.edges.len()
            ));
        }
        // Union-find for connectivity + cycle detection.
        let mut parent: Vec<usize> = (0..self.brokers).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for &(a, b) in &self.edges {
            if a >= self.brokers || b >= self.brokers {
                return Err(format!("edge ({a}, {b}) references an unknown broker"));
            }
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra == rb {
                return Err(format!("edge ({a}, {b}) closes a cycle"));
            }
            parent[ra] = rb;
        }
        Ok(())
    }
}

/// Handle to a mesh subscriber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshSubscriberHandle(ActorId);

/// A peer-to-peer multi-stage filtering overlay.
pub struct MeshSim {
    world: World<MeshNode>,
    registry: Arc<TypeRegistry>,
    brokers: Vec<ActorId>,
    subscribers: Vec<ActorId>,
    next_filter: u64,
    published: u64,
}

impl MeshSim {
    /// Builds the mesh.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MeshConfig::validate`].
    #[must_use]
    pub fn new(cfg: MeshConfig, registry: Arc<TypeRegistry>) -> Self {
        cfg.validate().expect("invalid mesh configuration");
        let mut world = World::with_latency(SimDuration::from_ticks(1));
        let brokers: Vec<ActorId> = (0..cfg.brokers)
            .map(|i| {
                world.add_actor(MeshNode::Broker(MeshBroker::new(
                    format!("P{i}"),
                    Arc::clone(&registry),
                    cfg.index,
                )))
            })
            .collect();
        for &(a, b) in &cfg.edges {
            let (ia, ib) = (brokers[a], brokers[b]);
            if let MeshNode::Broker(x) = world.actor_mut(ia) {
                x.neighbors.push(ib);
            }
            if let MeshNode::Broker(x) = world.actor_mut(ib) {
                x.neighbors.push(ia);
            }
        }
        Self {
            world,
            registry,
            brokers,
            subscribers: Vec::new(),
            next_filter: 0,
            published: 0,
        }
    }

    /// Floods an advertisement from broker 0.
    pub fn advertise(&mut self, adv: Advertisement) {
        self.world
            .send_external(self.brokers[0], MeshMsg::Advertise(adv));
    }

    /// Attaches a subscriber to the broker at `broker_idx`.
    ///
    /// # Errors
    ///
    /// Standardization errors as in the hierarchical overlay.
    ///
    /// # Panics
    ///
    /// Panics if `broker_idx` is out of range.
    pub fn add_subscriber_at(
        &mut self,
        broker_idx: usize,
        filter: Filter,
    ) -> Result<MeshSubscriberHandle, FilterError> {
        let class_id = filter.class().ok_or(FilterError::MissingClass)?;
        let class = self
            .registry
            .class(class_id)
            .ok_or(FilterError::UnknownClass)?;
        let standardized = standardize(&filter, class)?;
        let id = FilterId(self.next_filter);
        self.next_filter += 1;
        let actor = self.world.add_actor(MeshNode::Subscriber(MeshSubscriber {
            label: format!("msub-{:04}", self.subscribers.len()),
            filter: standardized.clone(),
            registry: Arc::clone(&self.registry),
            accepted: false,
            received: 0,
            matched: 0,
            bytes_received: 0,
            deliveries: Vec::new(),
        }));
        self.subscribers.push(actor);
        self.world.send_external(
            self.brokers[broker_idx],
            MeshMsg::Subscribe {
                id,
                filter: standardized,
                subscriber: actor,
            },
        );
        Ok(MeshSubscriberHandle(actor))
    }

    /// Publishes an event at the broker at `broker_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `broker_idx` is out of range.
    pub fn publish_at(&mut self, broker_idx: usize, env: Envelope) {
        self.published += 1;
        self.world
            .send_external(self.brokers[broker_idx], MeshMsg::Publish(env));
    }

    /// Drains in-flight traffic.
    pub fn settle(&mut self) {
        self.world.run();
    }

    /// Sequence numbers accepted by a subscriber.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this mesh.
    #[must_use]
    pub fn deliveries(&self, handle: MeshSubscriberHandle) -> &[EventSeq] {
        match self.world.actor(handle.0) {
            MeshNode::Subscriber(s) => s.deliveries(),
            MeshNode::Broker(_) => panic!("handle points at a broker"),
        }
    }

    /// The broker at an index.
    #[must_use]
    pub fn broker(&self, idx: usize) -> &MeshBroker {
        match self.world.actor(self.brokers[idx]) {
            MeshNode::Broker(b) => b,
            MeshNode::Subscriber(_) => unreachable!("broker ids point at brokers"),
        }
    }

    /// Number of brokers.
    #[must_use]
    pub fn broker_count(&self) -> usize {
        self.brokers.len()
    }

    /// Collects run metrics (brokers at stage 1, subscribers at stage 0).
    #[must_use]
    pub fn metrics(&self) -> RunMetrics {
        let mut m = RunMetrics::new(self.published, self.subscribers.len() as u64);
        for node in self.world.actors() {
            match node {
                MeshNode::Broker(b) => m.push(b.record()),
                MeshNode::Subscriber(s) => m.push(s.record()),
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use layercake_event::event_data;
    use layercake_workload::BiblioWorkload;

    fn mesh(cfg: MeshConfig) -> (MeshSim, ClassId) {
        let mut registry = TypeRegistry::new();
        let class = BiblioWorkload::register(&mut registry);
        let mut sim = MeshSim::new(cfg, Arc::new(registry));
        sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
        sim.settle();
        (sim, class)
    }

    fn env(class: ClassId, seq: u64, year: i64, conf: &str, author: &str, title: &str) -> Envelope {
        Envelope::from_meta(
            class,
            "Biblio",
            EventSeq(seq),
            event_data! { "year" => year, "conference" => conf, "author" => author, "title" => title },
        )
    }

    #[test]
    fn config_validation() {
        assert!(MeshConfig::line(5).validate().is_ok());
        assert!(MeshConfig::star(5).validate().is_ok());
        let mut bad = MeshConfig::line(4);
        bad.edges.push((0, 3)); // closes a cycle
        assert!(bad.validate().is_err());
        let mut missing = MeshConfig::line(4);
        missing.edges.pop(); // disconnects
        assert!(missing.validate().is_err());
        assert!(MeshConfig {
            brokers: 0,
            edges: vec![],
            index: IndexKind::Naive
        }
        .validate()
        .is_err());
        let oob = MeshConfig {
            brokers: 2,
            edges: vec![(0, 5)],
            index: IndexKind::Naive,
        };
        assert!(oob.validate().is_err());
    }

    #[test]
    fn delivery_across_a_line() {
        // Subscriber at one end, publisher at the other: the event crosses
        // every broker, each filtering with a progressively weaker filter.
        let (mut sim, class) = mesh(MeshConfig::line(5));
        let sub = sim
            .add_subscriber_at(
                0,
                Filter::for_class(class)
                    .eq("year", 2000)
                    .eq("conference", "icdcs")
                    .eq("author", "a")
                    .eq("title", "t"),
            )
            .unwrap();
        sim.settle();
        sim.publish_at(4, env(class, 0, 2000, "icdcs", "a", "t"));
        sim.publish_at(4, env(class, 1, 1999, "icdcs", "a", "t"));
        sim.settle();
        assert_eq!(sim.deliveries(sub), &[EventSeq(0)]);
    }

    #[test]
    fn far_events_are_prefiltered_by_weak_filters() {
        let (mut sim, class) = mesh(MeshConfig::line(4));
        let _sub = sim
            .add_subscriber_at(
                0,
                Filter::for_class(class)
                    .eq("year", 2000)
                    .eq("conference", "icdcs")
                    .eq("author", "a")
                    .eq("title", "t"),
            )
            .unwrap();
        sim.settle();
        // Wrong *year*: even the weakest (most distant) filter rejects it,
        // so it dies at the entry broker.
        sim.publish_at(3, env(class, 0, 1812, "icdcs", "a", "t"));
        sim.settle();
        assert_eq!(sim.broker(3).record().received, 1);
        for idx in 0..3 {
            assert_eq!(
                sim.broker(idx).record().received,
                0,
                "broker {idx} saw the event"
            );
        }
        // Wrong *author* only: passes the distant (year) and (year, conf)
        // filters all the way to the access broker, whose strong distance-1
        // filter finally rejects it — the subscriber never sees it.
        sim.publish_at(3, env(class, 1, 2000, "icdcs", "zzz", "t"));
        sim.settle();
        assert_eq!(
            sim.broker(1).record().received,
            1,
            "distance-2 filter admits it"
        );
        let access = sim.broker(0).record();
        assert_eq!(access.received, 1, "the access broker evaluates it");
        assert_eq!(access.matched, 0, "…and rejects it before delivery");
        assert_eq!(sim.deliveries(_sub), &[] as &[EventSeq]);
    }

    #[test]
    fn star_fanout_only_to_interested_arms() {
        let (mut sim, class) = mesh(MeshConfig::star(6));
        let s1 = sim
            .add_subscriber_at(1, Filter::for_class(class).eq("year", 2000))
            .unwrap();
        let s2 = sim
            .add_subscriber_at(2, Filter::for_class(class).eq("year", 2001))
            .unwrap();
        sim.settle();
        sim.publish_at(3, env(class, 0, 2000, "c", "a", "t"));
        sim.settle();
        assert_eq!(sim.deliveries(s1), &[EventSeq(0)]);
        assert!(sim.deliveries(s2).is_empty());
        // Uninterested arms never see the event.
        for idx in [4usize, 5] {
            assert_eq!(sim.broker(idx).record().received, 0, "arm {idx}");
        }
        // The hub forwarded only towards broker 1.
        assert_eq!(sim.broker(2).record().received, 0);
    }

    #[test]
    fn publisher_and_subscriber_on_same_broker() {
        let (mut sim, class) = mesh(MeshConfig::line(3));
        let sub = sim
            .add_subscriber_at(1, Filter::for_class(class).eq("year", 2000))
            .unwrap();
        sim.settle();
        sim.publish_at(1, env(class, 0, 2000, "c", "a", "t"));
        sim.settle();
        assert_eq!(sim.deliveries(sub).len(), 1);
        // No echo to the other brokers beyond interest (none subscribed).
        assert_eq!(sim.broker(0).record().received, 0);
        assert_eq!(sim.broker(2).record().received, 0);
    }

    #[test]
    fn multiple_subscribers_share_propagated_interest() {
        let (mut sim, class) = mesh(MeshConfig::line(3));
        let a = sim
            .add_subscriber_at(
                0,
                Filter::for_class(class).eq("year", 2000).eq("author", "x"),
            )
            .unwrap();
        let b = sim
            .add_subscriber_at(
                0,
                Filter::for_class(class).eq("year", 2000).eq("author", "y"),
            )
            .unwrap();
        sim.settle();
        sim.publish_at(2, env(class, 0, 2000, "c", "x", "t"));
        sim.publish_at(2, env(class, 1, 2000, "c", "y", "t"));
        sim.settle();
        assert_eq!(sim.deliveries(a), &[EventSeq(0)]);
        assert_eq!(sim.deliveries(b), &[EventSeq(1)]);
    }

    #[test]
    fn mesh_zero_loss_against_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut registry = TypeRegistry::new();
        let mut rng = StdRng::seed_from_u64(5);
        let workload = layercake_workload::BiblioWorkload::new(
            layercake_workload::BiblioConfig {
                subscriptions: 30,
                conferences: 5,
                authors: 20,
                titles: 40,
                ..Default::default()
            },
            &mut registry,
            &mut rng,
        );
        let class = workload.class();
        let registry = Arc::new(registry);
        let mut sim = MeshSim::new(MeshConfig::line(6), Arc::clone(&registry));
        sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
        sim.settle();
        let handles: Vec<_> = workload
            .subscriptions()
            .iter()
            .map(|f| {
                let at = rng.gen_range(0..6);
                let h = sim.add_subscriber_at(at, f.clone()).unwrap();
                sim.settle();
                h
            })
            .collect();
        let stream: Vec<Envelope> = (0..400).map(|s| workload.envelope(s, &mut rng)).collect();
        for e in &stream {
            let at = rng.gen_range(0..6);
            sim.publish_at(at, e.clone());
        }
        sim.settle();
        for (h, f) in handles.iter().zip(workload.subscriptions()) {
            let oracle: Vec<EventSeq> = stream
                .iter()
                .filter(|e| f.matches_envelope(e, &registry))
                .map(Envelope::seq)
                .collect();
            let mut got = sim.deliveries(*h).to_vec();
            got.sort();
            assert_eq!(got, oracle, "mesh delivery mismatch for {f}");
        }
    }

    #[test]
    fn metrics_cover_brokers_and_subscribers() {
        let (mut sim, class) = mesh(MeshConfig::star(4));
        let _s = sim
            .add_subscriber_at(1, Filter::for_class(class).eq("year", 2000))
            .unwrap();
        sim.settle();
        sim.publish_at(2, env(class, 0, 2000, "c", "a", "t"));
        sim.settle();
        let m = sim.metrics();
        assert_eq!(m.records.len(), 5);
        assert_eq!(m.total_events, 1);
        assert!(m.global_rlc_total() > 0.0);
        assert_eq!(sim.broker_count(), 4);
    }
}
