//! Typed errors for overlay construction and configuration.

use std::error::Error;
use std::fmt;

/// Why an [`crate::OverlayConfig`] (or an operation built on one) was
/// rejected. Every variant carries enough context to render an actionable
/// message — the thing to change and the value that was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OverlayError {
    /// `levels` was empty: the overlay needs at least one broker stage.
    EmptyTopology,
    /// The top level must contain exactly one node (the root).
    MultipleRoots {
        /// Number of nodes configured at the top level.
        top_level: usize,
    },
    /// A level with zero brokers cannot route anything.
    EmptyLevel {
        /// Stage number (1-based) of the offending level.
        stage: usize,
    },
    /// Level sizes must not grow from the leaves toward the root — each
    /// broker needs a parent slot at the next level up.
    GrowingLevels {
        /// Size of the lower level.
        below: usize,
        /// Size of the (larger) level above it.
        above: usize,
    },
    /// Flow control is enabled but the egress queues hold zero events, so
    /// every data message would be shed immediately.
    ZeroQueueCapacity,
    /// Flow control is enabled with a zero stall-detection tick, which
    /// would never fire the credit-probe timer.
    ZeroFlowTick,
    /// The circuit breaker is armed (`breaker_failure_threshold > 0`) with
    /// a zero backoff, so an opened breaker would retry instantly and
    /// never actually isolate the downstream.
    ZeroBreakerBackoff,
    /// The reliable-link retransmission window is larger than the egress
    /// queue, so a single NACK burst could overflow the bounded queue with
    /// unsheddable retransmissions.
    WindowExceedsQueue {
        /// Configured `reliability_window`.
        window: usize,
        /// Configured `queue_capacity`.
        capacity: usize,
    },
    /// Durability is enabled with zero-byte log segments, so every append
    /// would rotate (and fsync) its own segment.
    ZeroSegmentBytes,
    /// Durability is enabled with a zero fsync interval; the log syncs
    /// after every `wal_flush_every` appended records, so zero would
    /// never flush at all.
    ZeroFlushEvery,
    /// Subscription aggregation and covering-collapse insertion are both
    /// enabled; they are alternative table-collapsing strategies and the
    /// aggregation forest already subsumes covering-collapse.
    AggregationWithCollapse,
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyTopology => {
                write!(f, "overlay needs at least one broker level; set `levels`")
            }
            Self::MultipleRoots { top_level } => write!(
                f,
                "the top level must contain exactly the root node, found {top_level}; \
                 make the last entry of `levels` 1"
            ),
            Self::EmptyLevel { stage } => write!(
                f,
                "broker level at stage {stage} is empty; every entry of `levels` must be >= 1"
            ),
            Self::GrowingLevels { below, above } => write!(
                f,
                "level sizes must not grow upward (found {below} below {above}); \
                 order `levels` from the widest stage-1 tier to the single root"
            ),
            Self::ZeroQueueCapacity => write!(
                f,
                "flow control is enabled with queue_capacity = 0, which sheds every event; \
                 set `queue_capacity` >= 1 or disable `flow_control_enabled`"
            ),
            Self::ZeroFlowTick => write!(
                f,
                "flow control is enabled with flow_tick = 0, so credit stalls would never \
                 be probed; set `flow_tick` to a positive duration"
            ),
            Self::ZeroBreakerBackoff => write!(
                f,
                "breaker_failure_threshold > 0 with breaker_backoff = 0 would re-probe a \
                 tripped downstream instantly; set a positive `breaker_backoff` or set \
                 `breaker_failure_threshold` to 0 to disable the breaker"
            ),
            Self::WindowExceedsQueue { window, capacity } => write!(
                f,
                "reliability_window ({window}) exceeds queue_capacity ({capacity}); \
                 retransmissions are never shed, so the bounded egress queue must be able \
                 to hold a full NACK burst — raise `queue_capacity` or shrink \
                 `reliability_window`"
            ),
            Self::ZeroSegmentBytes => write!(
                f,
                "durability is enabled with wal_segment_bytes = 0, which would rotate a \
                 segment per record; set `wal_segment_bytes` >= 1 or disable \
                 `durability_enabled`"
            ),
            Self::ZeroFlushEvery => write!(
                f,
                "durability is enabled with wal_flush_every = 0, so the log would never \
                 fsync; set `wal_flush_every` >= 1 (1 = sync every append)"
            ),
            Self::AggregationWithCollapse => write!(
                f,
                "aggregation_enabled and covering_collapse are both set; the aggregation \
                 cover forest already subsumes covering-collapse — disable \
                 `covering_collapse` (or turn off `aggregation_enabled`)"
            ),
        }
    }
}

impl Error for OverlayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_knob_to_change() {
        let cases: Vec<(OverlayError, &str)> = vec![
            (OverlayError::EmptyTopology, "levels"),
            (OverlayError::MultipleRoots { top_level: 3 }, "root"),
            (OverlayError::EmptyLevel { stage: 2 }, "stage 2"),
            (
                OverlayError::GrowingLevels {
                    below: 2,
                    above: 10,
                },
                "must not grow",
            ),
            (OverlayError::ZeroQueueCapacity, "queue_capacity"),
            (OverlayError::ZeroFlowTick, "flow_tick"),
            (OverlayError::ZeroBreakerBackoff, "breaker_backoff"),
            (
                OverlayError::WindowExceedsQueue {
                    window: 256,
                    capacity: 64,
                },
                "reliability_window (256)",
            ),
            (OverlayError::ZeroSegmentBytes, "wal_segment_bytes"),
            (OverlayError::ZeroFlushEvery, "wal_flush_every"),
            (OverlayError::AggregationWithCollapse, "covering_collapse"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
        }
    }
}
