//! Transport-agnostic node abstraction.
//!
//! Broker and subscriber protocol logic is written against [`NodeCtx`] — a
//! minimal clock + outbox capability — instead of the simulator's concrete
//! [`Ctx`]. The deterministic simulator and the wall-clock runtime
//! (`layercake-rt`) each provide their own implementation, so the *same*
//! state machines run under virtual time (byte-identical, reproducible)
//! and under real threads with framed wire messages. This is the parity
//! contract: any behavioral divergence between sim and runtime must come
//! from the transport, never from the protocol logic.

use layercake_metrics::PipelineStage;
use layercake_sim::{ActorId, Ctx, SimDuration, SimTime};

use crate::msg::OverlayMsg;

/// The capabilities an overlay node's protocol logic may use.
///
/// Deliberately minimal: a clock, the node's own address, fire-and-forget
/// sends, and relative timers. There is no `send_after` — protocol logic
/// must not depend on scheduling latitude the real runtime cannot honor.
pub trait NodeCtx {
    /// Current time (virtual ticks in the simulator, microseconds since
    /// runtime start under wall clock).
    fn now(&self) -> SimTime;

    /// The id of the node running this handler.
    fn me(&self) -> ActorId;

    /// Sends a message to another node (best effort, FIFO per link).
    fn send(&mut self, to: ActorId, msg: OverlayMsg);

    /// Schedules [`Node::on_timer`] with `tag` after `delay`.
    fn set_timer(&mut self, delay: SimDuration, tag: u64);

    /// Timestamp source for trace hop stamps. The simulator's default —
    /// the virtual clock — keeps sim traces byte-identical across runs;
    /// the wall-clock runtime overrides this with nanoseconds since
    /// runtime start, so hop latencies in its traces resolve real
    /// sub-microsecond pipeline costs instead of the microsecond
    /// granularity of [`NodeCtx::now`].
    fn trace_now(&self) -> u64 {
        self.now().ticks()
    }

    /// Matcher-shard provenance recorded on trace hops: which replica of
    /// the node is running this handler. The simulator has exactly one
    /// replica per broker, hence the default.
    fn shard(&self) -> u32 {
        0
    }

    /// `true` when the surrounding transport is stage-profiling the
    /// frame currently being processed (see
    /// [`layercake_metrics::StageProfiler`]). Protocol code uses this to
    /// time optional sub-stages — e.g. the durable-log append — only
    /// when the sample will actually be recorded.
    fn stage_sampled(&self) -> bool {
        false
    }

    /// Records one pipeline-stage duration for a sampled frame. A no-op
    /// everywhere except the wall-clock runtime.
    fn record_stage(&self, _stage: PipelineStage, _ns: u64) {}
}

impl NodeCtx for Ctx<'_, OverlayMsg> {
    fn now(&self) -> SimTime {
        Ctx::now(self)
    }

    fn me(&self) -> ActorId {
        Ctx::me(self)
    }

    fn send(&mut self, to: ActorId, msg: OverlayMsg) {
        Ctx::send(self, to, msg);
    }

    fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        Ctx::set_timer(self, delay, tag);
    }
}

/// A transport-agnostic overlay node: the handler surface shared by the
/// deterministic simulator (via the `Actor` adapter on
/// [`crate::NodeActor`]) and the wall-clock runtime's node threads.
pub trait Node {
    /// Handles one incoming message.
    fn on_message(&mut self, from: ActorId, msg: OverlayMsg, ctx: &mut dyn NodeCtx);

    /// Handles an expired timer previously set through
    /// [`NodeCtx::set_timer`].
    fn on_timer(&mut self, tag: u64, ctx: &mut dyn NodeCtx);

    /// Called once when the node restarts after a crash (volatile state
    /// lost). Default: nothing.
    fn on_restart(&mut self, _ctx: &mut dyn NodeCtx) {}

    /// Per-message processing cost used by the simulator's service-time
    /// model; the wall-clock runtime pays real costs instead and ignores
    /// this. Default: free.
    fn service_cost(&self, _msg: &OverlayMsg) -> Option<SimDuration> {
        None
    }
}
