//! The overlay simulation facade: topology construction and run control.

use std::sync::Arc;

use layercake_event::{Advertisement, Envelope, EventSeq, TraceId, TypeRegistry};
use layercake_filter::{Filter, FilterError};
use layercake_metrics::{LatencyMetrics, RunMetrics};
use layercake_sim::{ActorId, FaultPlan, SimDuration, SimTime, World};
use layercake_trace::{EventTrace, TraceSink};

use crate::broker::Broker;
use crate::config::OverlayConfig;
use crate::error::OverlayError;
use crate::msg::{OverlayMsg, SubscriptionReq};
use crate::node::NodeActor;
use crate::subscriber::{ResidualFilter, SubscriberNode};

/// Handle to a subscriber created with [`OverlaySim::add_subscriber`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriberHandle(ActorId);

/// A multi-stage filtering overlay running inside a deterministic
/// discrete-event world.
///
/// The facade builds the broker hierarchy described by an
/// [`OverlayConfig`], then drives the protocol: advertisements flood from
/// the root, subscriptions walk down per Figure 5, events publish at the
/// root and filter down per Figure 6. After (or between) runs, node
/// counters aggregate into the paper's metrics via
/// [`OverlaySim::metrics`].
pub struct OverlaySim {
    world: World<NodeActor>,
    registry: Arc<TypeRegistry>,
    cfg: OverlayConfig,
    root: ActorId,
    brokers: Vec<ActorId>,
    subscribers: Vec<ActorId>,
    advertisements: Vec<Advertisement>,
    next_filter: u64,
    published: u64,
    delivered_messages: u64,
    fired_timers: u64,
    /// Shared trace collector, created when
    /// [`OverlayConfig::trace_sample_every`] is non-zero.
    trace: Option<Arc<TraceSink>>,
}

impl OverlaySim {
    /// Builds the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`OverlayConfig::validate`].
    /// Use [`OverlaySim::try_new`] to handle invalid configurations
    /// gracefully.
    #[must_use]
    pub fn new(cfg: OverlayConfig, registry: Arc<TypeRegistry>) -> Self {
        Self::try_new(cfg, registry).expect("invalid overlay configuration")
    }

    /// Builds the hierarchy, reporting configuration problems as typed
    /// errors instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the [`OverlayError`] produced by [`OverlayConfig::validate`]
    /// (inconsistent topology or flow-control knobs), with a message naming
    /// the offending knob and how to fix it.
    pub fn try_new(cfg: OverlayConfig, registry: Arc<TypeRegistry>) -> Result<Self, OverlayError> {
        let trace =
            (cfg.trace_sample_every > 0).then(|| Arc::new(TraceSink::new(cfg.trace_sample_every)));
        let mut world = World::with_latency(SimDuration::from_ticks(1));

        // The shared topology builder numbers brokers level by level from
        // stage 1 upward; inserting them in order makes the world assign
        // exactly those ids.
        let mut brokers = Vec::new();
        for node in crate::topology::build_brokers(&cfg, &registry, trace.as_ref())? {
            let id = world.add_actor(NodeActor::Broker(node.broker));
            debug_assert_eq!(id, node.id, "world id assignment diverged from topology");
            brokers.push(id);
        }
        if cfg.durability_enabled {
            // Each broker gets a deterministic in-memory log whose
            // synced/unsynced split models a page cache: crash_restart
            // loses the unsynced tail, exactly like the file-backed
            // storage of the wall-clock runtime.
            for &id in &brokers {
                if let NodeActor::Broker(b) = world.actor_mut(id) {
                    b.enable_durability(
                        Box::new(crate::wal::MemStorage::new()),
                        crate::wal::LogConfig {
                            segment_bytes: cfg.wal_segment_bytes,
                            flush_every: cfg.wal_flush_every,
                        },
                    );
                }
            }
        }
        let root = *brokers.last().expect("validated topology has a root");

        Ok(Self {
            world,
            registry,
            cfg,
            root,
            brokers,
            subscribers: Vec::new(),
            advertisements: Vec::new(),
            next_filter: 0,
            published: 0,
            delivered_messages: 0,
            fired_timers: 0,
            trace,
        })
    }

    /// The shared type registry.
    #[must_use]
    pub fn registry(&self) -> &Arc<TypeRegistry> {
        &self.registry
    }

    /// The root broker's actor id.
    #[must_use]
    pub fn root(&self) -> ActorId {
        self.root
    }

    /// All broker actor ids, stage 1 first.
    #[must_use]
    pub fn brokers(&self) -> &[ActorId] {
        &self.brokers
    }

    /// Number of subscribers added so far.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Floods an event-class advertisement (with its stage map) from the
    /// root (Section 4.1). Call [`OverlaySim::settle`] before subscribing.
    ///
    /// # Panics
    ///
    /// Panics if the advertised class is not registered or its stage map
    /// references attribute indices outside the class schema — such an
    /// advertisement would silently disable weakening for the class.
    pub fn advertise(&mut self, adv: Advertisement) {
        let class = self
            .registry
            .class(adv.class)
            .unwrap_or_else(|| panic!("advertised {} is not registered", adv.class));
        adv.stage_map
            .check_arity(class.arity())
            .expect("stage map fits the class schema");
        self.advertisements.push(adv.clone());
        self.world
            .send_external(self.root, OverlayMsg::Advertise(adv));
    }

    /// Adds a subscriber with a declarative filter only.
    ///
    /// The filter must name an event class; it is converted to the standard
    /// subscription filter format (Section 4.4) before placement.
    ///
    /// # Errors
    ///
    /// * [`FilterError::MissingClass`] if the filter has no class constraint.
    /// * [`FilterError::UnknownClass`] if the class is not registered.
    /// * Standardization errors for unknown attributes or kind mismatches.
    pub fn add_subscriber(&mut self, filter: Filter) -> Result<SubscriberHandle, FilterError> {
        self.add_subscriber_with(filter, None)
    }

    /// Adds a subscriber whose subscription carries a stateful residual
    /// predicate evaluated only at the subscriber runtime (the paper's
    /// expressive, type-safe filters such as `BuyFilter`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`OverlaySim::add_subscriber`].
    pub fn add_subscriber_with(
        &mut self,
        filter: Filter,
        residual: Option<Box<dyn ResidualFilter>>,
    ) -> Result<SubscriberHandle, FilterError> {
        self.add_subscriber_any(vec![filter], residual)
    }

    /// Adds a subscriber with a *disjunctive* subscription: the event is
    /// delivered when any of the branch filters matches (and the optional
    /// residual accepts it). Each branch is standardized, routed and hosted
    /// independently; events arriving via several branches are delivered
    /// exactly once.
    ///
    /// # Errors
    ///
    /// Same conditions as [`OverlaySim::add_subscriber`], checked per
    /// branch; also rejects an empty branch list with
    /// [`FilterError::MissingClass`].
    pub fn add_subscriber_any(
        &mut self,
        filters: Vec<Filter>,
        residual: Option<Box<dyn ResidualFilter>>,
    ) -> Result<SubscriberHandle, FilterError> {
        self.add_subscriber_inner(filters, residual, false)
    }

    /// Adds a *durable* subscriber: its hosting broker appends the
    /// subscription's event class to its durable log and replays past the
    /// subscriber's last acknowledged offset on every re-subscription —
    /// including after the broker itself crashed and restarted with
    /// nothing but the log. Requires
    /// [`OverlayConfig::durability_enabled`]; without it the subscription
    /// behaves like [`OverlaySim::add_subscriber`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`OverlaySim::add_subscriber`].
    pub fn add_durable_subscriber(
        &mut self,
        filter: Filter,
    ) -> Result<SubscriberHandle, FilterError> {
        self.add_subscriber_inner(vec![filter], None, true)
    }

    fn add_subscriber_inner(
        &mut self,
        filters: Vec<Filter>,
        residual: Option<Box<dyn ResidualFilter>>,
        durable: bool,
    ) -> Result<SubscriberHandle, FilterError> {
        let branches =
            crate::topology::standardize_branches(&self.registry, filters, self.next_filter)?;
        self.next_filter += branches.len() as u64;
        let label = format!("sub-{:04}", self.subscribers.len());
        let node = crate::topology::build_subscriber(
            &self.cfg,
            &self.registry,
            self.root,
            label,
            branches.clone(),
            residual,
            self.trace.as_ref(),
            durable,
        );
        let actor = self.world.add_actor(NodeActor::Subscriber(node));
        self.subscribers.push(actor);
        for (id, filter) in branches {
            self.world.send_external(
                self.root,
                OverlayMsg::Subscribe(SubscriptionReq {
                    id,
                    filter,
                    subscriber: actor,
                    durable,
                }),
            );
        }
        Ok(SubscriberHandle(actor))
    }

    /// Publishes an event at the root. With tracing enabled
    /// ([`OverlayConfig::trace_sample_every`] > 0), every N-th event is
    /// stamped with a trace context before it enters the overlay.
    pub fn publish(&mut self, mut env: Envelope) {
        self.published += 1;
        if let Some(sink) = &self.trace {
            if let Some(tc) = sink.begin_trace(env.class_name(), env.seq().0, self.world.now()) {
                env.set_trace(Some(tc));
            }
        }
        self.world
            .send_external(self.root, OverlayMsg::Publish(env));
    }

    /// Publishes a batch of events.
    pub fn publish_all(&mut self, envs: impl IntoIterator<Item = Envelope>) {
        for env in envs {
            self.publish(env);
        }
    }

    /// Runs the world until in-flight protocol traffic drains.
    ///
    /// With leases enabled the lease timers keep the queue non-empty
    /// forever, so this advances a bounded window large enough for any
    /// placement walk or event delivery, leaving future timers queued.
    pub fn settle(&mut self) {
        let report = if self.cfg.leases_enabled {
            let window = SimDuration::from_ticks(16 * (self.cfg.stages() as u64 + 2));
            let deadline = self.world.now() + window;
            self.world.run_until(deadline)
        } else {
            self.world.run()
        };
        self.account(report);
    }

    /// Advances virtual time by `d`, processing lease traffic and anything
    /// else that comes due.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.world.now() + d;
        let report = self.world.run_until(deadline);
        self.account(report);
    }

    fn account(&mut self, report: layercake_sim::RunReport) {
        self.delivered_messages += report.delivered_messages;
        self.fired_timers += report.fired_timers;
    }

    /// Total protocol messages delivered so far (subscription walks, filter
    /// maintenance, event forwarding, renewals) — the network cost of the
    /// run.
    #[must_use]
    pub fn network_messages(&self) -> u64 {
        self.delivered_messages
    }

    /// Total timer firings (lease sweeps and renewal clocks).
    #[must_use]
    pub fn fired_timers(&self) -> u64 {
        self.fired_timers
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Sequence numbers delivered to (and accepted by) a subscriber.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this simulation.
    #[must_use]
    pub fn deliveries(&self, handle: SubscriberHandle) -> &[EventSeq] {
        self.subscriber(handle).deliveries()
    }

    /// The subscriber node behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this simulation.
    #[must_use]
    pub fn subscriber(&self, handle: SubscriberHandle) -> &SubscriberNode {
        self.world
            .actor(handle.0)
            .as_subscriber()
            .expect("handle points at a subscriber")
    }

    /// The broker node behind an actor id, if it is a broker.
    #[must_use]
    pub fn broker(&self, id: ActorId) -> Option<&Broker> {
        self.world.actor(id).as_broker()
    }

    /// Enables envelope buffering for a subscriber, so accepted events can
    /// be drained with [`OverlaySim::take_inbox`].
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this simulation.
    pub fn set_store_envelopes(&mut self, handle: SubscriberHandle, store: bool) {
        self.world
            .actor_mut(handle.0)
            .as_subscriber_mut()
            .expect("handle points at a subscriber")
            .set_store_envelopes(store);
    }

    /// Drains the envelopes accepted by a subscriber since the last drain.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this simulation.
    pub fn take_inbox(&mut self, handle: SubscriberHandle) -> Vec<Envelope> {
        self.world
            .actor_mut(handle.0)
            .as_subscriber_mut()
            .expect("handle points at a subscriber")
            .take_inbox()
    }

    /// Soft-state unsubscription (Section 4.3): the subscriber stops
    /// renewing; its filters expire from the hierarchy after 3 × TTL.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this simulation.
    pub fn unsubscribe(&mut self, handle: SubscriberHandle) {
        self.world
            .actor_mut(handle.0)
            .as_subscriber_mut()
            .expect("handle points at a subscriber")
            .deactivate();
    }

    /// Explicit unsubscription (Section 4.3): the hosting node removes the
    /// subscription immediately and withdraws weakened filters that are no
    /// longer needed all the way up the hierarchy. Also stops lease
    /// renewal. Returns `false` when the subscription has not completed
    /// placement yet.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this simulation.
    pub fn unsubscribe_now(&mut self, handle: SubscriberHandle) -> bool {
        let node = self
            .world
            .actor_mut(handle.0)
            .as_subscriber_mut()
            .expect("handle points at a subscriber");
        if !node.fully_placed() {
            return false;
        }
        node.deactivate();
        let removals: Vec<(ActorId, Filter)> = node
            .branches()
            .iter()
            .map(|b| (b.host().expect("fully placed"), b.filter().clone()))
            .collect();
        for (host, filter) in removals {
            self.world.send_external(
                host,
                OverlayMsg::Unsubscribe {
                    filter,
                    subscriber: handle.0,
                },
            );
        }
        true
    }

    /// Takes a durable subscriber offline (Section 2.1): its hosting node
    /// buffers matching events until [`OverlaySim::reconnect`]. Returns
    /// `false` when placement has not completed yet.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this simulation.
    pub fn disconnect(&mut self, handle: SubscriberHandle) -> bool {
        self.send_host_control(handle, |subscriber| OverlayMsg::Detach { subscriber })
    }

    /// Brings a durable subscriber back online: buffered events are
    /// delivered in publication order. Returns `false` when placement has
    /// not completed yet.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this simulation.
    pub fn reconnect(&mut self, handle: SubscriberHandle) -> bool {
        self.send_host_control(handle, |subscriber| OverlayMsg::Attach { subscriber })
    }

    fn send_host_control(
        &mut self,
        handle: SubscriberHandle,
        make: impl Fn(ActorId) -> OverlayMsg,
    ) -> bool {
        let node = self.subscriber(handle);
        if !node.fully_placed() {
            return false;
        }
        let mut hosts: Vec<ActorId> = node
            .branches()
            .iter()
            .filter_map(crate::subscriber::Branch::host)
            .collect();
        hosts.sort();
        hosts.dedup();
        for host in hosts {
            self.world.send_external(host, make(handle.0));
        }
        true
    }

    /// Fault injection: drops all messages between two nodes, in both
    /// directions, until [`OverlaySim::heal_partition`].
    pub fn partition(&mut self, a: ActorId, b: ActorId) {
        self.world.block_link(a, b);
        self.world.block_link(b, a);
    }

    /// Heals a partition created with [`OverlaySim::partition`].
    pub fn heal_partition(&mut self, a: ActorId, b: ActorId) {
        self.world.unblock_link(a, b);
        self.world.unblock_link(b, a);
    }

    /// Fault injection: cuts every link touching `node`, in both
    /// directions, until [`OverlaySim::heal_node`]. Unlike
    /// [`OverlaySim::crash_broker`], the node keeps its state and timers.
    pub fn isolate(&mut self, node: ActorId) {
        self.world.partition_node(node);
    }

    /// Restores all links touching `node` (undoes [`OverlaySim::isolate`]
    /// and any [`OverlaySim::partition`] involving the node).
    pub fn heal_node(&mut self, node: ActorId) {
        self.world.heal_node(node);
    }

    /// Seeds the deterministic per-link fault streams (defaults to 0).
    pub fn set_fault_seed(&mut self, seed: u64) {
        self.world.set_fault_seed(seed);
    }

    /// Applies a fault plan to every link without an explicit per-link
    /// plan; `None` turns default faults off.
    pub fn set_default_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.world.set_default_fault_plan(plan);
    }

    /// Applies a fault plan to one directed link.
    pub fn set_link_fault_plan(&mut self, from: ActorId, to: ActorId, plan: FaultPlan) {
        self.world.set_link_fault_plan(from, to, plan);
    }

    /// Heals all link faults: clears the default and every per-link plan.
    pub fn clear_fault_plans(&mut self) {
        self.world.clear_fault_plans();
    }

    /// Crashes a broker: in-flight messages and timers addressed to it are
    /// discarded, and it stays unreachable until
    /// [`OverlaySim::restart_broker`]. Returns the number of queue entries
    /// discarded.
    pub fn crash_broker(&mut self, id: ActorId) -> u64 {
        self.world.crash(id)
    }

    /// Restarts a crashed broker. Its volatile state (filter table, stage
    /// maps, leases, link reliability state) is wiped by
    /// [`Broker::on_restart`]; the rejoin protocol rebuilds it from the
    /// parent's re-advertisements and the children's re-registrations.
    /// When the *root* restarts, the facade replays the externally-injected
    /// advertisements (in the real system the publishers would
    /// re-advertise). Returns `false` if the node was not crashed.
    ///
    /// [`Broker::on_restart`]: crate::Broker
    pub fn restart_broker(&mut self, id: ActorId) -> bool {
        if !self.world.restart(id) {
            return false;
        }
        if id == self.root {
            for adv in self.advertisements.clone() {
                self.world
                    .send_external(self.root, OverlayMsg::Advertise(adv));
            }
        }
        true
    }

    /// Whether a node is currently crashed.
    #[must_use]
    pub fn is_crashed(&self, id: ActorId) -> bool {
        self.world.is_crashed(id)
    }

    /// Sets (or clears, with `None`) the per-data-message service time of
    /// one broker. A broker with a service time is a finite-capacity
    /// server: data messages queue behind its busy clock, which is what
    /// makes a stage saturate under overload. Control messages are always
    /// free so credit grants and probes never queue behind the backlog
    /// they are meant to drain.
    pub fn set_broker_service_time(&mut self, id: ActorId, per_message: Option<SimDuration>) {
        if let NodeActor::Broker(b) = self.world.actor_mut(id) {
            b.set_service_time(per_message);
        }
    }

    /// The actor id behind a subscriber handle (for fault injection).
    #[must_use]
    pub fn subscriber_actor(&self, handle: SubscriberHandle) -> ActorId {
        handle.0
    }

    /// Forces every broker's durable log to disk (final fsync batches and
    /// offset-table writes). Call before comparing durability counters or
    /// before a deliberate crash where the tail should survive. A no-op
    /// without [`OverlayConfig::durability_enabled`].
    pub fn flush_wals(&mut self) {
        for &id in &self.brokers.clone() {
            if let NodeActor::Broker(b) = self.world.actor_mut(id) {
                b.flush_wal();
            }
        }
    }

    /// Collects every node's counters into the run metrics, including the
    /// fault-injection ([`layercake_metrics::ChaosStats`]) counters.
    #[must_use]
    pub fn metrics(&self) -> RunMetrics {
        let mut m = RunMetrics::new(self.published, self.subscribers.len() as u64);
        m.chaos.dropped = self.world.fault_dropped();
        m.chaos.duplicated = self.world.fault_duplicated();
        m.chaos.crash_discarded = self.world.crash_discarded();
        for node in self.world.actors() {
            match node {
                NodeActor::Broker(b) => {
                    m.chaos.retransmitted += b.retransmitted();
                    m.chaos.duplicates_suppressed += b.dup_suppressed();
                    m.chaos.nacks += b.nacks_sent();
                    m.overload.absorb(b.overload());
                    if let Some(d) = b.durability() {
                        m.durability.absorb(d);
                    }
                    m.push(b.record());
                }
                NodeActor::Subscriber(s) => {
                    m.chaos.duplicates_suppressed += s.dup_suppressed();
                    m.chaos.nacks += s.nacks_sent();
                    m.chaos.resubscriptions += s.resubscriptions();
                    m.overload.grants_sent += s.grants_sent();
                    m.push(s.record());
                }
            }
        }
        for &id in &self.brokers {
            let peak = self.world.peak_inflight_of(id);
            m.overload.ingress_backlog.record(peak);
            m.overload.peak_ingress_backlog = m.overload.peak_ingress_backlog.max(peak);
        }
        if let Some(sink) = &self.trace {
            m.latency = LatencyMetrics {
                hop_by_stage: sink.hop_histograms(),
                e2e: sink.e2e_histogram(),
                traced: sink.traced_count(),
            };
            m.weakening = sink.weakening_summary();
        }
        m
    }

    /// The shared trace sink, when tracing is enabled.
    #[must_use]
    pub fn trace_sink(&self) -> Option<&Arc<TraceSink>> {
        self.trace.as_ref()
    }

    /// Snapshots of all sampled event traces (empty with tracing off).
    #[must_use]
    pub fn traces(&self) -> Vec<EventTrace> {
        self.trace.as_ref().map(|s| s.traces()).unwrap_or_default()
    }

    /// The sampled traces as deterministic JSONL (one trace per line), or
    /// `None` with tracing off.
    #[must_use]
    pub fn trace_jsonl(&self) -> Option<String> {
        self.trace.as_ref().map(|s| s.to_jsonl())
    }

    /// Explains why a traced event did or did not reach a subscriber: a
    /// hop-by-hop report along the broker path from the root to the
    /// subscriber's (first-branch) host, ending with a verdict that
    /// attributes false positives to the covering-filter stage whose
    /// weakening admitted the event.
    ///
    /// Returns `None` when tracing is off or `id` names no sampled trace.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this simulation.
    #[must_use]
    pub fn explain(&self, id: TraceId, handle: SubscriberHandle) -> Option<String> {
        let sink = self.trace.as_ref()?;
        let trace = sink.trace(id)?;
        let sub = self.subscriber(handle);
        let mut labels = vec![sub.label().to_owned()];
        let mut cursor = sub.host();
        while let Some(actor) = cursor {
            let broker = self.broker(actor)?;
            labels.push(broker.label().to_owned());
            cursor = broker.parent();
        }
        labels.reverse();
        Some(trace.explain(&labels))
    }

    /// Total events published so far.
    #[must_use]
    pub fn published(&self) -> u64 {
        self.published
    }

    /// Renders every broker's filter table, root first — a debugging view
    /// of the weakening pyramid (class names resolved through the registry,
    /// destinations shown as node/subscription labels).
    #[must_use]
    pub fn dump_tables(&self) -> String {
        let mut out = String::new();
        let label_of = |actor: ActorId| -> String {
            match self.world.actor(actor) {
                NodeActor::Broker(b) => b.label().to_owned(),
                NodeActor::Subscriber(s) => format!("sub:{}", s.id()),
            }
        };
        for &id in self.brokers.iter().rev() {
            let Some(broker) = self.world.actor(id).as_broker() else {
                continue;
            };
            out.push_str(&format!(
                "{} (stage {}):{}\n",
                broker.label(),
                broker.stage(),
                if broker.filter_count() == 0 {
                    " —"
                } else {
                    ""
                }
            ));
            for (filter, dests) in broker.table_entries() {
                let targets: Vec<String> = dests
                    .iter()
                    .map(|d| label_of(crate::broker::actor_of(*d)))
                    .collect();
                out.push_str(&format!(
                    "  {} -> {}\n",
                    filter.display_with(&self.registry),
                    targets.join(", ")
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlacementPolicy;
    use layercake_event::{event_data, EventData};
    use layercake_workload::BiblioWorkload;

    fn biblio_sim(cfg: OverlayConfig) -> (OverlaySim, layercake_event::ClassId) {
        let mut registry = TypeRegistry::new();
        let class = BiblioWorkload::register(&mut registry);
        let mut sim = OverlaySim::new(cfg, Arc::new(registry));
        sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
        sim.settle();
        (sim, class)
    }

    fn biblio_event(year: i64, conf: &str, author: &str, title: &str) -> EventData {
        event_data! { "year" => year, "conference" => conf, "author" => author, "title" => title }
    }

    fn env(class: layercake_event::ClassId, seq: u64, e: EventData) -> Envelope {
        Envelope::from_meta(class, "Biblio", EventSeq(seq), e)
    }

    #[test]
    fn end_to_end_exact_delivery() {
        let (mut sim, class) = biblio_sim(OverlayConfig {
            levels: vec![4, 2, 1],
            ..OverlayConfig::default()
        });
        let sub = sim
            .add_subscriber(
                Filter::for_class(class)
                    .eq("year", 2002)
                    .eq("conference", "icdcs")
                    .eq("author", "felber")
                    .eq("title", "tradeoffs"),
            )
            .unwrap();
        sim.settle();
        assert!(sim.subscriber(sub).host().is_some());

        sim.publish(env(
            class,
            0,
            biblio_event(2002, "icdcs", "felber", "tradeoffs"),
        ));
        sim.publish(env(
            class,
            1,
            biblio_event(2002, "icdcs", "felber", "other"),
        ));
        sim.publish(env(
            class,
            2,
            biblio_event(1999, "icdcs", "felber", "tradeoffs"),
        ));
        sim.publish(env(
            class,
            3,
            biblio_event(2002, "podc", "felber", "tradeoffs"),
        ));
        sim.settle();
        assert_eq!(sim.deliveries(sub), &[EventSeq(0)]);
    }

    #[test]
    fn partial_filters_receive_all_matching() {
        let (mut sim, class) = biblio_sim(OverlayConfig {
            levels: vec![4, 1],
            ..OverlayConfig::default()
        });
        // Year-only filter (others wildcarded via standardization).
        let sub = sim
            .add_subscriber(Filter::for_class(class).eq("year", 2000))
            .unwrap();
        sim.settle();
        for (i, year) in [2000i64, 1999, 2000, 2001].into_iter().enumerate() {
            sim.publish(env(class, i as u64, biblio_event(year, "c", "a", "t")));
        }
        sim.settle();
        assert_eq!(sim.deliveries(sub), &[EventSeq(0), EventSeq(2)]);
    }

    #[test]
    fn similarity_placement_groups_similar_subscriptions() {
        let (mut sim, class) = biblio_sim(OverlayConfig {
            levels: vec![50, 5, 1],
            placement: PlacementPolicy::Similarity,
            ..OverlayConfig::default()
        });
        // Many identical-prefix subscriptions: they should all land on the
        // same stage-1 node after the first one placed.
        let filter = |title: &str| {
            Filter::for_class(class)
                .eq("year", 2002)
                .eq("conference", "icdcs")
                .eq("author", "eugster")
                .eq("title", title.to_owned())
        };
        let first = sim.add_subscriber(filter("t-0")).unwrap();
        sim.settle();
        let first_host = sim.subscriber(first).host().unwrap();
        for i in 1..10 {
            let h = sim.add_subscriber(filter(&format!("t-{i}"))).unwrap();
            sim.settle();
            assert_eq!(
                sim.subscriber(h).host(),
                Some(first_host),
                "similar subscription {i} should join the same node"
            );
        }
        // The shared path means the root holds exactly one year-filter.
        let root = sim.broker(sim.root()).unwrap();
        assert_eq!(root.filter_count(), 1);
    }

    #[test]
    fn random_placement_scatters() {
        let (mut sim, class) = biblio_sim(OverlayConfig {
            levels: vec![50, 5, 1],
            placement: PlacementPolicy::Random,
            ..OverlayConfig::default()
        });
        let filter = |title: &str| {
            Filter::for_class(class)
                .eq("year", 2002)
                .eq("conference", "icdcs")
                .eq("author", "eugster")
                .eq("title", title.to_owned())
        };
        let mut hosts = std::collections::HashSet::new();
        for i in 0..20 {
            let h = sim.add_subscriber(filter(&format!("t-{i}"))).unwrap();
            sim.settle();
            hosts.insert(sim.subscriber(h).host().unwrap());
        }
        assert!(
            hosts.len() > 3,
            "random placement should scatter (got {})",
            hosts.len()
        );
    }

    #[test]
    fn wildcard_subscription_anchors_high() {
        let (mut sim, class) = biblio_sim(OverlayConfig {
            levels: vec![10, 5, 1],
            ..OverlayConfig::default()
        });
        // fy-style: year specified, everything else wildcard. The most
        // general wildcarded attribute is `conference` (index 1), whose
        // topmost using stage in the biblio map is 2 — so the subscription
        // anchors at stage 3, the root of this hierarchy, where filtering
        // happens on `year` alone.
        let sub = sim
            .add_subscriber(Filter::for_class(class).eq("year", 2002))
            .unwrap();
        sim.settle();
        let host = sim.subscriber(sub).host().unwrap();
        let host_stage = sim.broker(host).unwrap().stage();
        assert_eq!(
            host_stage, 3,
            "wildcard subscription should anchor above stage 2"
        );
        // And it still receives exactly its events.
        sim.publish(env(class, 0, biblio_event(2002, "x", "y", "z")));
        sim.publish(env(class, 1, biblio_event(2001, "x", "y", "z")));
        sim.settle();
        assert_eq!(sim.deliveries(sub), &[EventSeq(0)]);
    }

    #[test]
    fn naive_wildcard_placement_lands_on_stage_one() {
        let (mut sim, class) = biblio_sim(OverlayConfig {
            levels: vec![10, 5, 1],
            wildcard_stage_placement: false,
            ..OverlayConfig::default()
        });
        let sub = sim
            .add_subscriber(Filter::for_class(class).eq("year", 2002))
            .unwrap();
        sim.settle();
        let host = sim.subscriber(sub).host().unwrap();
        assert_eq!(sim.broker(host).unwrap().stage(), 1);
    }

    #[test]
    fn type_only_wildcard_anchors_at_root() {
        let (mut sim, class) = biblio_sim(OverlayConfig {
            levels: vec![10, 5, 1],
            ..OverlayConfig::default()
        });
        // Everything wildcarded: subscriber wants all Biblio events.
        let sub = sim.add_subscriber(Filter::for_class(class)).unwrap();
        sim.settle();
        let host = sim.subscriber(sub).host().unwrap();
        assert_eq!(host, sim.root());
        sim.publish(env(class, 0, biblio_event(1998, "a", "b", "c")));
        sim.settle();
        assert_eq!(sim.deliveries(sub).len(), 1);
    }

    #[test]
    fn subscription_without_class_is_rejected() {
        let (mut sim, _) = biblio_sim(OverlayConfig::default());
        let err = sim
            .add_subscriber(Filter::any().eq("year", 2002))
            .unwrap_err();
        assert!(matches!(err, FilterError::MissingClass));
    }

    #[test]
    fn unknown_attribute_is_rejected() {
        let (mut sim, class) = biblio_sim(OverlayConfig::default());
        let err = sim
            .add_subscriber(Filter::for_class(class).eq("publisher", "acm"))
            .unwrap_err();
        assert!(matches!(err, FilterError::UnknownAttribute { .. }));
    }

    #[test]
    fn events_do_not_reach_uninterested_subtrees() {
        let (mut sim, class) = biblio_sim(OverlayConfig {
            levels: vec![10, 2, 1],
            ..OverlayConfig::default()
        });
        let _sub = sim
            .add_subscriber(
                Filter::for_class(class)
                    .eq("year", 2002)
                    .eq("conference", "icdcs")
                    .eq("author", "a")
                    .eq("title", "t"),
            )
            .unwrap();
        sim.settle();
        sim.publish(env(class, 0, biblio_event(1990, "x", "y", "z")));
        sim.settle();
        // Only the root should have received the event; it matches nothing.
        let received: u64 = sim
            .brokers()
            .iter()
            .map(|&b| sim.broker(b).unwrap().record().received)
            .sum();
        assert_eq!(received, 1);
        let root_rec = sim.broker(sim.root()).unwrap().record();
        assert_eq!(root_rec.received, 1);
        assert_eq!(root_rec.matched, 0);
    }

    #[test]
    fn lease_expiry_removes_unrenewed_filters() {
        let ttl = SimDuration::from_ticks(1_000);
        let (mut sim, class) = biblio_sim(OverlayConfig {
            levels: vec![4, 1],
            leases_enabled: true,
            ttl,
            ..OverlayConfig::default()
        });
        let keep = sim
            .add_subscriber(Filter::for_class(class).eq("year", 2000).eq("author", "k"))
            .unwrap();
        let drop = sim
            .add_subscriber(Filter::for_class(class).eq("year", 2000).eq("author", "d"))
            .unwrap();
        sim.settle();
        assert!(sim.subscriber(keep).host().is_some());
        assert!(sim.subscriber(drop).host().is_some());

        // Unsubscribe via lease silence, then advance past 3 × TTL (+ sweep).
        sim.unsubscribe(drop);
        sim.run_for(ttl * 6);

        sim.publish(env(class, 0, biblio_event(2000, "c", "k", "t")));
        sim.publish(env(class, 1, biblio_event(2000, "c", "d", "t")));
        sim.settle();
        // The kept subscriber still gets its event; the dropped one is gone.
        assert_eq!(sim.deliveries(keep), &[EventSeq(0)]);
        assert_eq!(sim.deliveries(drop), &[] as &[EventSeq]);
    }

    #[test]
    fn renewed_subscriptions_survive_many_ttls() {
        let ttl = SimDuration::from_ticks(1_000);
        let (mut sim, class) = biblio_sim(OverlayConfig {
            levels: vec![4, 1],
            leases_enabled: true,
            ttl,
            ..OverlayConfig::default()
        });
        let sub = sim
            .add_subscriber(Filter::for_class(class).eq("year", 2000).eq("author", "k"))
            .unwrap();
        sim.settle();
        sim.run_for(ttl * 20);
        sim.publish(env(class, 0, biblio_event(2000, "c", "k", "t")));
        sim.settle();
        assert_eq!(sim.deliveries(sub).len(), 1);
    }

    #[test]
    fn metrics_cover_all_nodes() {
        let (mut sim, class) = biblio_sim(OverlayConfig {
            levels: vec![4, 2, 1],
            ..OverlayConfig::default()
        });
        let _s = sim
            .add_subscriber(Filter::for_class(class).eq("year", 2002).eq("author", "a"))
            .unwrap();
        sim.settle();
        sim.publish(env(class, 0, biblio_event(2002, "c", "a", "t")));
        sim.settle();
        let m = sim.metrics();
        assert_eq!(m.records.len(), 4 + 2 + 1 + 1);
        assert_eq!(m.total_events, 1);
        assert_eq!(m.total_subs, 1);
        // The root evaluated 1 event against 1 filter.
        let root_rec = m.records.iter().find(|r| r.node == "N3.1").unwrap();
        assert_eq!(root_rec.evaluations, 1);
        assert!(m.global_rlc_total() > 0.0);
    }

    #[test]
    fn dump_tables_shows_the_weakening_pyramid() {
        let (mut sim, class) = biblio_sim(OverlayConfig {
            levels: vec![2, 1],
            ..OverlayConfig::default()
        });
        let _sub = sim
            .add_subscriber(
                Filter::for_class(class)
                    .eq("year", 2002)
                    .eq("conference", "icdcs")
                    .eq("author", "felber")
                    .eq("title", "tradeoffs"),
            )
            .unwrap();
        sim.settle();
        let dump = sim.dump_tables();
        // Root first, holding the weaker (year) filter for its child…
        assert!(dump.starts_with("N2.1 (stage 2):"));
        assert!(dump.contains("(year, 2002, =) (conference, \"icdcs\", =) -> N1."));
        // …and a stage-1 node holding the stronger form for the subscriber.
        assert!(dump.contains("(author, \"felber\", =) -> sub:filter#0"));
        assert!(dump.contains("(class, \"Biblio\", =)"));
    }

    #[test]
    fn residual_filter_sees_only_prefiltered_events() {
        let (mut sim, class) = biblio_sim(OverlayConfig {
            levels: vec![4, 1],
            ..OverlayConfig::default()
        });
        // Accept every other matching event (stateful residual).
        let counter = std::cell::Cell::new(0u32);
        let residual = move |_env: &Envelope| {
            let n = counter.get();
            counter.set(n + 1);
            n.is_multiple_of(2)
        };
        let sub = sim
            .add_subscriber_with(
                Filter::for_class(class).eq("year", 2002),
                Some(Box::new(residual)),
            )
            .unwrap();
        sim.settle();
        for i in 0..4u64 {
            sim.publish(env(
                class,
                i,
                biblio_event(2002, "c", "a", &format!("t{i}")),
            ));
        }
        sim.settle();
        assert_eq!(sim.deliveries(sub), &[EventSeq(0), EventSeq(2)]);
    }
}

#[cfg(test)]
mod advertise_validation_tests {
    use super::*;
    use layercake_event::StageMap;
    use layercake_workload::BiblioWorkload;

    #[test]
    #[should_panic(expected = "not registered")]
    fn advertising_an_unknown_class_panics() {
        let registry = Arc::new(TypeRegistry::new());
        let mut sim = OverlaySim::new(
            OverlayConfig {
                levels: vec![1],
                ..OverlayConfig::default()
            },
            registry,
        );
        sim.advertise(Advertisement::new(
            layercake_event::ClassId(9),
            StageMap::from_prefixes(&[1]).unwrap(),
        ));
    }

    #[test]
    #[should_panic(expected = "stage map fits")]
    fn advertising_an_oversized_stage_map_panics() {
        let mut registry = TypeRegistry::new();
        let class = BiblioWorkload::register(&mut registry);
        let mut sim = OverlaySim::new(
            OverlayConfig {
                levels: vec![1],
                ..OverlayConfig::default()
            },
            Arc::new(registry),
        );
        // Biblio has 4 attributes; a 9-attribute prefix is out of range.
        sim.advertise(Advertisement::new(
            class,
            StageMap::from_prefixes(&[9]).unwrap(),
        ));
    }

    #[test]
    fn re_advertising_updates_the_stage_map() {
        let mut registry = TypeRegistry::new();
        let class = BiblioWorkload::register(&mut registry);
        let mut sim = OverlaySim::new(
            OverlayConfig {
                levels: vec![2, 1],
                ..OverlayConfig::default()
            },
            Arc::new(registry),
        );
        sim.advertise(Advertisement::new(
            class,
            StageMap::from_prefixes(&[4, 1]).unwrap(),
        ));
        sim.settle();
        // Re-advertise with a deeper map: later subscriptions weaken by it.
        sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
        sim.settle();
        let h = sim
            .add_subscriber(
                Filter::for_class(class)
                    .eq("year", 2000)
                    .eq("conference", "c")
                    .eq("author", "a")
                    .eq("title", "t"),
            )
            .unwrap();
        sim.settle();
        assert!(sim.subscriber(h).host().is_some());
        // Root holds the stage-2 form (year, conference) of the new map.
        let dump = sim.dump_tables();
        assert!(
            dump.contains("(year, 2000, =) (conference, \"c\", =) ->"),
            "{dump}"
        );
    }
}
