//! The reference architectures of Section 2.1, for load comparisons.
//!
//! * **Centralized**: one server holds every subscription and filters every
//!   event; by construction its Relative Load Complexity is exactly 1 (the
//!   RLC normalization point).
//! * **Broadcast**: every event is delivered to every subscriber, which
//!   filters locally at runtime; the server does no filtering, but each
//!   subscriber's received-event count equals the full publication volume.
//!
//! Both baselines evaluate subscriptions individually (no covering-based
//! collapse), as the architectures the paper compares against would.

use layercake_event::{Envelope, TypeRegistry};
use layercake_filter::Filter;
use layercake_metrics::{NodeRecord, RunMetrics};

/// Simulates a centralized filtering server (Section 2.1, first
/// architecture): all subscriptions at one node, which forwards matching
/// events to the interested subscribers.
#[must_use]
pub fn centralized_run(
    subs: &[Filter],
    events: &[Envelope],
    registry: &TypeRegistry,
) -> RunMetrics {
    let mut metrics = RunMetrics::new(events.len() as u64, subs.len() as u64);
    let mut server = NodeRecord::new("central", 1);
    server.filters = subs.len();
    let mut sub_records: Vec<NodeRecord> = (0..subs.len())
        .map(|i| {
            let mut r = NodeRecord::new(format!("sub-{i:04}"), 0);
            r.filters = 1;
            r
        })
        .collect();
    for env in events {
        server.received += 1;
        server.evaluations += subs.len() as u64;
        server.bytes_received += env.wire_size() as u64;
        let mut any = false;
        for (i, f) in subs.iter().enumerate() {
            if f.matches_envelope(env, registry) {
                any = true;
                // The subscriber receives only relevant events: perfect MR.
                let r = &mut sub_records[i];
                r.received += 1;
                r.matched += 1;
                r.evaluations += 1;
                r.bytes_received += env.wire_size() as u64;
            }
        }
        if any {
            server.matched += 1;
        }
    }
    metrics.push(server);
    for r in sub_records {
        metrics.push(r);
    }
    metrics
}

/// Simulates the broadcast architecture (Section 2.1, second architecture):
/// every subscriber receives every event and filters at runtime.
#[must_use]
pub fn broadcast_run(subs: &[Filter], events: &[Envelope], registry: &TypeRegistry) -> RunMetrics {
    let mut metrics = RunMetrics::new(events.len() as u64, subs.len() as u64);
    for (i, f) in subs.iter().enumerate() {
        let mut r = NodeRecord::new(format!("sub-{i:04}"), 0);
        r.filters = 1;
        for env in events {
            r.received += 1;
            r.evaluations += 1;
            r.bytes_received += env.wire_size() as u64;
            if f.matches_envelope(env, registry) {
                r.matched += 1;
            }
        }
        metrics.push(r);
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use layercake_event::{event_data, ClassId, EventSeq};

    fn setup() -> (TypeRegistry, ClassId, Vec<Filter>, Vec<Envelope>) {
        let mut registry = TypeRegistry::new();
        let class = registry.register("E", None, vec![]).unwrap();
        let subs: Vec<Filter> = (0..10)
            .map(|i| Filter::for_class(class).eq("k", i))
            .collect();
        let events: Vec<Envelope> = (0..100u64)
            .map(|i| {
                Envelope::from_meta(
                    class,
                    "E",
                    EventSeq(i),
                    event_data! { "k" => (i % 20) as i64 },
                )
            })
            .collect();
        (registry, class, subs, events)
    }

    #[test]
    fn centralized_server_rlc_is_one() {
        let (registry, _, subs, events) = setup();
        let m = centralized_run(&subs, &events, &registry);
        let server = m.records.iter().find(|r| r.node == "central").unwrap();
        assert!((server.rlc(m.total_events, m.total_subs) - 1.0).abs() < 1e-12);
        // Half the events (k in 0..10) match some subscription.
        assert_eq!(server.matched, 50);
        // Subscribers see only relevant traffic: MR = 1.
        for r in m.stage_records(0) {
            if r.received > 0 {
                assert!((r.mr() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn broadcast_pushes_all_load_to_subscribers() {
        let (registry, _, subs, events) = setup();
        let m = broadcast_run(&subs, &events, &registry);
        assert_eq!(m.records.len(), 10);
        for r in &m.records {
            assert_eq!(r.received, 100);
            assert_eq!(r.matched, 5); // each key appears 5 times
            assert!((r.mr() - 0.05).abs() < 1e-12);
            // Per-subscriber RLC = 100×1/(100×10) = 0.1.
            assert!((r.rlc(m.total_events, m.total_subs) - 0.1).abs() < 1e-12);
        }
        // Global work equals the centralized server's.
        assert!((m.global_rlc_total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        let (registry, ..) = setup();
        let m = centralized_run(&[], &[], &registry);
        assert_eq!(m.records.len(), 1);
        assert_eq!(m.global_rlc_total(), 0.0);
        let m = broadcast_run(&[], &[], &registry);
        assert!(m.records.is_empty());
    }
}
