//! The per-broker durable event log: segmented, CRC-framed, with
//! batched fsync, consumer offsets, and torn-tail recovery.

use std::collections::BTreeMap;

use layercake_event::{encode_record, scan_records, ClassId, Envelope, RECORD_HEADER_LEN};
use layercake_filter::DestId;
use layercake_metrics::{DurabilityStats, PipelineStage, StageProfiler};
use serde::{DeError, Deserialize, Serialize, Value};

use super::storage::LogStorage;

/// Sizing and flush-batching knobs for a [`DurableLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogConfig {
    /// Rotate the open segment once it holds at least this many bytes.
    pub segment_bytes: usize,
    /// fsync after this many appended records (the flush interval). `1`
    /// syncs every append; larger values batch the fsync cost at the
    /// price of a longer unsynced tail lost on a crash.
    pub flush_every: usize,
}

impl Default for LogConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 64 * 1024,
            flush_every: 8,
        }
    }
}

/// One record as it lives in the log: the event plus its per-class
/// durable offset (1-based, monotone per class).
struct LogRecord {
    class: ClassId,
    off: u64,
    env: Envelope,
}

impl Serialize for LogRecord {
    fn serialize_value(&self) -> Value {
        let mut obj = Value::object();
        obj.insert_field("class", u64::from(self.class.0).serialize_value());
        obj.insert_field("off", self.off.serialize_value());
        obj.insert_field("env", self.env.serialize_value());
        obj
    }
}

impl Deserialize for LogRecord {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let class: u64 = serde::__field(v, "class")?;
        Ok(LogRecord {
            class: ClassId(class as u32),
            off: serde::__field(v, "off")?,
            env: serde::__field(v, "env")?,
        })
    }
}

/// In-memory index of one segment: byte size and the highest per-class
/// offset it contains (what compaction compares against consumer acks).
#[derive(Debug, Default, Clone)]
struct SegMeta {
    id: u64,
    bytes: usize,
    max_off: BTreeMap<u32, u64>,
}

/// A per-broker append-only event log with CRC-framed records, segment
/// rotation, batched fsync, and a persisted consumer-offset table.
///
/// The log is the durable replacement for the in-memory retransmit ring
/// and the `parked` buffer: every event matched for a *durable*
/// subscriber is appended (once per event), and a consumer that comes
/// back — after a detach, or after the broker itself crashed and
/// restarted with nothing but this log — replays everything past its
/// last acknowledged per-class offset. Compaction deletes sealed
/// segments once every registered consumer has acknowledged past them;
/// lease expiry deregisters consumers, so the log never outlives the
/// subscriptions that need it.
#[derive(Debug)]
pub struct DurableLog {
    storage: Box<dyn LogStorage>,
    cfg: LogConfig,
    /// Segment index, ascending by id; the last entry is the open
    /// (append) segment.
    segs: Vec<SegMeta>,
    next_seg_id: u64,
    /// Last assigned offset per class (`0` = nothing logged yet).
    tail: BTreeMap<u32, u64>,
    /// Acknowledged offset per `(dest, class)` durable consumer.
    offsets: BTreeMap<(u64, u32), u64>,
    dirty_records: usize,
    dirty_bytes: u64,
    offsets_dirty: bool,
    stats: DurabilityStats,
    /// Optional stage telemetry: every fsync batch's duration lands in
    /// the [`PipelineStage::WalFsync`] histogram. Set only by the
    /// wall-clock runtime; the simulator's logs never time syncs, so
    /// sim behavior is untouched.
    profiler: Option<std::sync::Arc<StageProfiler>>,
}

impl DurableLog {
    /// Opens (or creates) a log on `storage`, recovering from whatever a
    /// previous incarnation left: segments are scanned record by record
    /// and any torn or garbage tail is truncated to the last record with
    /// a valid CRC; the consumer-offset table is reloaded from the
    /// metadata blob.
    #[must_use]
    pub fn open(storage: Box<dyn LogStorage>, cfg: LogConfig) -> Self {
        let mut log = Self {
            storage,
            cfg,
            segs: Vec::new(),
            next_seg_id: 0,
            tail: BTreeMap::new(),
            offsets: BTreeMap::new(),
            dirty_records: 0,
            dirty_bytes: 0,
            offsets_dirty: false,
            stats: DurabilityStats::default(),
            profiler: None,
        };
        log.rescan();
        log
    }

    /// Attaches stage telemetry: from here on, every fsync batch records
    /// its wall-clock duration. Unconditional (not sampled) — syncs are
    /// batched and rare, so the timing cost is noise next to the fsync
    /// itself.
    pub fn set_stage_profiler(&mut self, profiler: std::sync::Arc<StageProfiler>) {
        self.profiler = Some(profiler);
    }

    /// The log's cumulative activity counters.
    #[must_use]
    pub fn stats(&self) -> &DurabilityStats {
        &self.stats
    }

    /// Number of live segments.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segs.len()
    }

    /// Last assigned durable offset for a class (`0` when nothing of
    /// that class was ever logged).
    #[must_use]
    pub fn tail_off(&self, class: ClassId) -> u64 {
        self.tail.get(&class.0).copied().unwrap_or(0)
    }

    /// Appends one event, assigning and returning its per-class durable
    /// offset. Rotates the open segment when full and fsyncs every
    /// [`LogConfig::flush_every`] appends.
    pub fn append(&mut self, env: &Envelope) -> u64 {
        let class = env.class();
        let off = self.tail_off(class) + 1;
        self.tail.insert(class.0, off);
        let payload = serde_json::to_vec(&LogRecord {
            class,
            off,
            env: env.clone(),
        })
        .expect("log record serializes");
        let rec = encode_record(&payload).expect("log record fits the frame cap");
        if self
            .segs
            .last()
            .is_some_and(|s| s.bytes > 0 && s.bytes + rec.len() > self.cfg.segment_bytes)
        {
            self.rotate();
        }
        if self.segs.is_empty() {
            let id = self.next_seg_id;
            self.next_seg_id += 1;
            self.segs.push(SegMeta {
                id,
                bytes: 0,
                max_off: BTreeMap::new(),
            });
        }
        let seg = self.segs.last_mut().expect("open segment exists");
        self.storage.append(seg.id, &rec);
        seg.bytes += rec.len();
        seg.max_off.insert(class.0, off);
        self.stats.records_appended += 1;
        self.dirty_records += 1;
        self.dirty_bytes += rec.len() as u64;
        if self.dirty_records >= self.cfg.flush_every {
            self.flush();
        }
        off
    }

    /// Makes everything appended so far durable: fsyncs the open segment
    /// (one batch) and persists the consumer-offset table if it changed.
    /// Then compacts, since newly persisted acks may free segments.
    pub fn flush(&mut self) {
        self.sync_dirty();
        if self.offsets_dirty {
            self.persist_offsets();
        }
        self.compact();
    }

    /// fsyncs any unsynced appended records (one batch). Always runs
    /// before the offset table is persisted: a persisted ack must never
    /// refer past the durable tail, or a crash in between would recover
    /// a tail below the ack and `replay_after` would skip the offsets
    /// new appends then reuse.
    fn sync_dirty(&mut self) {
        if self.dirty_records == 0 {
            return;
        }
        if let Some(seg) = self.segs.last() {
            let t0 = self
                .profiler
                .as_ref()
                .map(|p| (p, std::time::Instant::now()));
            self.storage.sync(seg.id);
            if let Some((p, t0)) = t0 {
                p.record(
                    PipelineStage::WalFsync,
                    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                );
            }
        }
        self.stats.fsync_batches += 1;
        self.stats.bytes_fsynced += self.dirty_bytes;
        self.dirty_records = 0;
        self.dirty_bytes = 0;
    }

    /// Registers a durable consumer for a class. An unknown consumer
    /// starts at the current tail (durability covers events from
    /// subscription time onward); a known one — typically re-subscribing
    /// after a detach or a broker restart — keeps its persisted offset.
    /// Returns the offset the consumer has acknowledged, i.e. where
    /// replay should start *after*. The registration itself is persisted
    /// immediately, so a crash cannot forget a durable consumer.
    pub fn register_consumer(&mut self, dest: DestId, class: ClassId) -> u64 {
        let tail = self.tail_off(class);
        let upto = *self.offsets.entry((dest.0, class.0)).or_insert(tail);
        // The new entry points at the in-memory tail (and the table may
        // carry other consumers' unflushed acks): sync appended records
        // first so the persisted table never outruns the durable tail.
        self.sync_dirty();
        self.persist_offsets();
        upto
    }

    /// Whether any durable consumer entry exists for this destination.
    #[must_use]
    pub fn is_consumer(&self, dest: DestId) -> bool {
        self.offsets.keys().any(|&(d, _)| d == dest.0)
    }

    /// Whether any durable consumer is registered for this class (i.e.
    /// whether events of the class must be appended to the log at all).
    #[must_use]
    pub fn has_class_consumer(&self, class: ClassId) -> bool {
        self.offsets.keys().any(|&(_, c)| c == class.0)
    }

    /// Whether this destination holds a durable consumer entry for this
    /// specific class.
    #[must_use]
    pub fn is_class_consumer(&self, dest: DestId, class: ClassId) -> bool {
        self.offsets.contains_key(&(dest.0, class.0))
    }

    /// The destinations holding a durable consumer entry for `class`, in
    /// ascending id order.
    #[must_use]
    pub fn consumers_of_class(&self, class: ClassId) -> Vec<DestId> {
        self.offsets
            .keys()
            .filter(|&&(_, c)| c == class.0)
            .map(|&(d, _)| DestId(d))
            .collect()
    }

    /// The offset a consumer has acknowledged for a class (`0` when it
    /// has no entry).
    #[must_use]
    pub fn acked_upto(&self, dest: DestId, class: ClassId) -> u64 {
        self.offsets.get(&(dest.0, class.0)).copied().unwrap_or(0)
    }

    /// The classes a destination holds durable offsets for.
    #[must_use]
    pub fn consumer_classes(&self, dest: DestId) -> Vec<ClassId> {
        self.offsets
            .keys()
            .filter(|&&(d, _)| d == dest.0)
            .map(|&(_, c)| ClassId(c))
            .collect()
    }

    /// Every destination with at least one durable consumer entry.
    #[must_use]
    pub fn consumer_dests(&self) -> Vec<DestId> {
        let mut dests: Vec<DestId> = self.offsets.keys().map(|&(d, _)| DestId(d)).collect();
        dests.dedup();
        dests
    }

    /// Records a consumer's acknowledgement: everything of `class` up to
    /// and including `upto` has been received. Acks for unregistered
    /// consumers are ignored (stale, or addressed to a shard that does
    /// not own the class), and an ack is clamped to the class tail — a
    /// consumer cannot have received what was never appended, so an
    /// over-tail ack is necessarily stale (e.g. from before a crash that
    /// lost the unsynced tail) and must not skip reused offsets.
    /// Persisted at the next flush — a crash in between replays a little
    /// extra, which the subscriber's `(class, seq)` dedup absorbs.
    pub fn ack(&mut self, dest: DestId, class: ClassId, upto: u64) {
        let upto = upto.min(self.tail_off(class));
        if let Some(entry) = self.offsets.get_mut(&(dest.0, class.0)) {
            if upto > *entry {
                *entry = upto;
                self.offsets_dirty = true;
            }
        }
    }

    /// Deregisters every durable consumer entry of a destination (lease
    /// expiry or explicit unsubscription), then compacts — with its last
    /// interested consumer gone, a segment's history is garbage.
    pub fn drop_consumer(&mut self, dest: DestId) {
        let before = self.offsets.len();
        self.offsets.retain(|&(d, _), _| d != dest.0);
        if self.offsets.len() != before {
            // The surviving entries may hold acks for records not yet
            // synced; keep the sync-before-persist invariant here too.
            self.sync_dirty();
            self.persist_offsets();
            self.compact();
        }
    }

    /// Replays every logged record of `class` with offset greater than
    /// `upto`, in append order. Everything returned counts as a replay
    /// in [`DurabilityStats`]: this entry point exists for recovery and
    /// gap repair, where the caller is by definition re-reading history.
    pub fn replay_after(&mut self, class: ClassId, upto: u64) -> Vec<(u64, Envelope)> {
        let out = self.replay_window(class, upto, usize::MAX);
        self.stats.records_replayed += out.len() as u64;
        out
    }

    /// Credits `n` re-read records to [`DurabilityStats::records_replayed`].
    /// [`DurableLog::replay_window`] cannot count its own output — the
    /// broker pages *first-time* deliveries through it too (window-full
    /// backlog), and only the caller knows where replayed history ends
    /// and fresh backlog begins.
    pub fn note_replayed(&mut self, n: u64) {
        self.stats.records_replayed += n;
    }

    /// The bounded form of [`DurableLog::replay_after`]: at most `max`
    /// records, in append order. Used by the broker's in-flight window —
    /// a consumer far behind is paged out of the log one window at a
    /// time, paced by its acknowledgements, instead of having its whole
    /// backlog dumped on the wire at once. Does **not** touch the replay
    /// counter (see [`DurableLog::note_replayed`]).
    pub fn replay_window(&mut self, class: ClassId, upto: u64, max: usize) -> Vec<(u64, Envelope)> {
        let mut out = Vec::new();
        'segs: for seg in &self.segs {
            if seg.max_off.get(&class.0).copied().unwrap_or(0) <= upto {
                continue;
            }
            let bytes = self.storage.read_segment(seg.id);
            for payload in scan_records(&bytes).records {
                let Ok(rec) = serde_json::from_slice::<LogRecord>(&payload) else {
                    continue;
                };
                if rec.class == class && rec.off > upto {
                    if out.len() >= max {
                        break 'segs;
                    }
                    out.push((rec.off, rec.env));
                }
            }
        }
        out
    }

    /// Simulates a process crash and restart on the same storage: every
    /// unsynced byte is lost (the simulator's page-cache model), then the
    /// log re-opens from what survived — re-scanning segments, truncating
    /// torn tails, reloading the offset table. Counters accumulate across
    /// the restart, mirroring how broker counters survive `on_restart`.
    pub fn crash_restart(&mut self) {
        self.storage.lose_unsynced();
        self.dirty_records = 0;
        self.dirty_bytes = 0;
        self.offsets_dirty = false;
        self.rescan();
    }

    /// Scans storage and rebuilds the in-memory index: per-segment sizes
    /// and per-class maxima, class tails, and the consumer-offset table.
    /// Torn or undecodable tails are truncated (and the cut fsynced) so
    /// the next append lands on a valid boundary.
    fn rescan(&mut self) {
        self.segs.clear();
        self.tail.clear();
        for id in self.storage.segment_ids() {
            let bytes = self.storage.read_segment(id);
            let scan = scan_records(&bytes);
            let mut meta = SegMeta {
                id,
                bytes: 0,
                max_off: BTreeMap::new(),
            };
            let mut valid_len = 0usize;
            let mut decode_cut = false;
            for payload in &scan.records {
                match serde_json::from_slice::<LogRecord>(payload) {
                    Ok(rec) => {
                        valid_len += RECORD_HEADER_LEN + payload.len();
                        let tail = self.tail.entry(rec.class.0).or_insert(0);
                        *tail = (*tail).max(rec.off);
                        let mx = meta.max_off.entry(rec.class.0).or_insert(0);
                        *mx = (*mx).max(rec.off);
                    }
                    Err(_) => {
                        // CRC-valid but not a record we can read: written
                        // by something else. Cut here like a torn tail.
                        decode_cut = true;
                        break;
                    }
                }
            }
            if !scan.clean || decode_cut {
                self.storage.truncate(id, valid_len as u64);
                self.storage.sync(id);
                self.stats.torn_truncations += 1;
            }
            if valid_len == 0 {
                self.storage.remove_segment(id);
                continue;
            }
            meta.bytes = valid_len;
            self.segs.push(meta);
        }
        self.next_seg_id = self.segs.last().map_or(0, |s| s.id + 1);
        self.offsets = self
            .storage
            .read_meta()
            .and_then(|bytes| serde_json::from_slice::<OffsetTable>(&bytes).ok())
            .map(|t| t.entries)
            .unwrap_or_default();
        // A persisted ack above the recovered tail refers to records the
        // crash took (the offset table can legitimately be newer than the
        // last record sync). Clamp it, or new appends reusing those
        // offsets would be skipped by `replay_after` forever.
        let tail = &self.tail;
        for (&(_, class), upto) in self.offsets.iter_mut() {
            let recovered = tail.get(&class).copied().unwrap_or(0);
            if *upto > recovered {
                *upto = recovered;
            }
        }
    }

    /// Seals the open segment (fsyncing its tail) and starts a new one.
    fn rotate(&mut self) {
        self.flush();
        let id = self.next_seg_id;
        self.next_seg_id += 1;
        self.segs.push(SegMeta {
            id,
            bytes: 0,
            max_off: BTreeMap::new(),
        });
        self.stats.segments_rotated += 1;
        self.compact();
    }

    /// Writes the consumer-offset table durably (atomic replace).
    fn persist_offsets(&mut self) {
        let table = OffsetTable {
            entries: self.offsets.clone(),
        };
        let bytes = serde_json::to_vec(&table).expect("offset table serializes");
        self.storage.write_meta(&bytes);
        self.offsets_dirty = false;
    }

    /// The lowest acknowledged offset of `class` across its registered
    /// consumers; `u64::MAX` when no consumer is registered for it (its
    /// records are wanted by nobody).
    fn min_acked(&self, class: u32) -> u64 {
        self.offsets
            .iter()
            .filter(|&(&(_, c), _)| c == class)
            .map(|(_, &upto)| upto)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Deletes every sealed segment whose records have all been
    /// acknowledged by every consumer that wants them.
    fn compact(&mut self) {
        if self.segs.len() <= 1 {
            return; // never delete the open segment
        }
        let sealed = self.segs.len() - 1;
        let mut removed = 0usize;
        for i in 0..sealed {
            let seg = &self.segs[i - removed];
            let disposable = seg
                .max_off
                .iter()
                .all(|(&class, &mx)| self.min_acked(class) >= mx);
            if disposable {
                let id = seg.id;
                self.storage.remove_segment(id);
                self.segs.remove(i - removed);
                removed += 1;
                self.stats.segments_compacted += 1;
            }
        }
    }
}

/// The persisted consumer-offset table (the metadata blob's schema).
struct OffsetTable {
    entries: BTreeMap<(u64, u32), u64>,
}

impl Serialize for OffsetTable {
    fn serialize_value(&self) -> Value {
        let rows: Vec<Value> = self
            .entries
            .iter()
            .map(|(&(dest, class), &upto)| {
                let mut row = Value::object();
                row.insert_field("dest", dest.serialize_value());
                row.insert_field("class", u64::from(class).serialize_value());
                row.insert_field("upto", upto.serialize_value());
                row
            })
            .collect();
        let mut obj = Value::object();
        obj.insert_field("consumers", Value::Array(rows));
        obj
    }
}

impl Deserialize for OffsetTable {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let Value::Array(rows) = v.field("consumers") else {
            return Err(DeError::msg("consumers must be an array"));
        };
        let mut entries = BTreeMap::new();
        for row in rows {
            let dest: u64 = serde::__field(row, "dest")?;
            let class: u64 = serde::__field(row, "class")?;
            let upto: u64 = serde::__field(row, "upto")?;
            entries.insert((dest, class as u32), upto);
        }
        Ok(OffsetTable { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::super::storage::MemStorage;
    use super::*;
    use layercake_event::{EventData, EventSeq};

    fn env(class: u32, seq: u64) -> Envelope {
        let mut meta = EventData::new();
        meta.insert("k", seq as i64);
        Envelope::from_meta(ClassId(class), "T", EventSeq(seq), meta)
    }

    fn small_log() -> DurableLog {
        DurableLog::open(
            Box::new(MemStorage::new()),
            LogConfig {
                segment_bytes: 4096,
                flush_every: 2,
            },
        )
    }

    #[test]
    fn append_assigns_monotone_per_class_offsets() {
        let mut log = small_log();
        assert_eq!(log.append(&env(0, 10)), 1);
        assert_eq!(log.append(&env(1, 11)), 1);
        assert_eq!(log.append(&env(0, 12)), 2);
        assert_eq!(log.tail_off(ClassId(0)), 2);
        assert_eq!(log.tail_off(ClassId(1)), 1);
        assert_eq!(log.stats().records_appended, 3);
    }

    #[test]
    fn flush_batches_fsyncs() {
        let mut log = small_log(); // flush_every = 2
        log.append(&env(0, 0));
        assert_eq!(log.stats().fsync_batches, 0);
        log.append(&env(0, 1));
        assert_eq!(log.stats().fsync_batches, 1);
        assert!(log.stats().bytes_fsynced > 0);
        log.append(&env(0, 2));
        log.flush();
        assert_eq!(log.stats().fsync_batches, 2);
        // An empty flush costs nothing.
        log.flush();
        assert_eq!(log.stats().fsync_batches, 2);
    }

    #[test]
    fn segments_rotate_at_the_byte_bound() {
        let mut log = DurableLog::open(
            Box::new(MemStorage::new()),
            LogConfig {
                segment_bytes: 256,
                flush_every: 1,
            },
        );
        // An unacked consumer pins every segment, so rotation is visible.
        log.register_consumer(DestId(1), ClassId(0));
        for i in 0..20 {
            log.append(&env(0, i));
        }
        assert!(log.segment_count() > 1, "20 records must span segments");
        assert!(log.stats().segments_rotated > 0);
        assert_eq!(log.stats().segments_compacted, 0);
    }

    #[test]
    fn sealed_segments_nobody_wants_are_compacted_eagerly() {
        let mut log = DurableLog::open(
            Box::new(MemStorage::new()),
            LogConfig {
                segment_bytes: 256,
                flush_every: 1,
            },
        );
        for i in 0..20 {
            log.append(&env(0, i));
        }
        assert_eq!(log.segment_count(), 1, "no consumer → no history kept");
        assert!(log.stats().segments_compacted > 0);
    }

    #[test]
    fn replay_starts_after_the_acked_offset() {
        let mut log = small_log();
        let dest = DestId(42);
        assert_eq!(log.register_consumer(dest, ClassId(0)), 0);
        for i in 0..6 {
            log.append(&env(0, 100 + i));
        }
        log.ack(dest, ClassId(0), 4);
        let replayed = log.replay_after(ClassId(0), 4);
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].0, 5);
        assert_eq!(replayed[0].1.seq(), EventSeq(104));
        assert_eq!(replayed[1].0, 6);
        assert_eq!(log.stats().records_replayed, 2);
    }

    #[test]
    fn late_consumers_start_at_the_tail() {
        let mut log = small_log();
        log.append(&env(0, 0));
        log.append(&env(0, 1));
        let upto = log.register_consumer(DestId(7), ClassId(0));
        assert_eq!(upto, 2, "a new consumer owes nothing from the past");
        assert!(log.replay_after(ClassId(0), upto).is_empty());
    }

    #[test]
    fn offsets_survive_crash_restart_and_unsynced_tail_is_lost() {
        let mut log = small_log(); // flush_every = 2
        let dest = DestId(9);
        log.register_consumer(dest, ClassId(0));
        for i in 0..4 {
            log.append(&env(0, i));
        }
        log.ack(dest, ClassId(0), 2);
        log.flush(); // acks + 4 records durable
        log.append(&env(0, 4)); // unsynced (flush_every not reached)
        assert_eq!(log.tail_off(ClassId(0)), 5);
        log.crash_restart();
        // The unsynced fifth record is gone; the synced four and the
        // persisted ack survive.
        assert_eq!(log.tail_off(ClassId(0)), 4);
        assert!(log.is_consumer(dest));
        let acked = log.register_consumer(dest, ClassId(0));
        let replayed = log.replay_after(ClassId(0), acked);
        assert_eq!(replayed.len(), 2, "offsets 3 and 4 replay");
        assert_eq!(replayed[0].0, 3);
    }

    #[test]
    fn compaction_waits_for_acks_and_lease_expiry() {
        let mut log = DurableLog::open(
            Box::new(MemStorage::new()),
            LogConfig {
                segment_bytes: 128,
                flush_every: 1,
            },
        );
        let a = DestId(1);
        let b = DestId(2);
        log.register_consumer(a, ClassId(0));
        log.register_consumer(b, ClassId(0));
        for i in 0..12 {
            log.append(&env(0, i));
        }
        let before = log.segment_count();
        assert!(before > 2);
        // One consumer acks everything — the slower one still pins the log.
        log.ack(a, ClassId(0), 12);
        log.flush();
        assert_eq!(log.segment_count(), before);
        assert_eq!(log.stats().segments_compacted, 0);
        // The slow consumer's lease expires: its entries drop, sealed
        // segments below the remaining minimum ack go.
        log.drop_consumer(b);
        assert!(log.segment_count() < before);
        assert!(log.stats().segments_compacted > 0);
        // With no consumers at all, everything sealed is garbage.
        log.drop_consumer(a);
        assert_eq!(log.segment_count(), 1, "only the open segment remains");
    }

    #[test]
    fn acks_for_unregistered_consumers_are_ignored() {
        let mut log = small_log();
        log.append(&env(0, 0));
        log.ack(DestId(99), ClassId(0), 1);
        assert!(!log.is_consumer(DestId(99)));
    }

    #[test]
    fn register_consumer_syncs_appended_records_before_persisting_offsets() {
        let mut log = DurableLog::open(
            Box::new(MemStorage::new()),
            LogConfig {
                segment_bytes: 4096,
                flush_every: 100, // appends stay unsynced on their own
            },
        );
        log.register_consumer(DestId(1), ClassId(0));
        for i in 0..3 {
            log.append(&env(0, i));
        }
        // Registering a second consumer persists an offset equal to the
        // in-memory tail (3) — which must force those three records to
        // disk first, or a crash would recover tail 0 < ack 3 and new
        // events reusing offsets 1..=3 would never replay.
        assert_eq!(log.register_consumer(DestId(2), ClassId(0)), 3);
        log.crash_restart();
        assert_eq!(
            log.tail_off(ClassId(0)),
            3,
            "registration made the appended records durable"
        );
        assert_eq!(log.acked_upto(DestId(2), ClassId(0)), 3);
        assert!(log.replay_after(ClassId(0), 3).is_empty());
    }

    #[test]
    fn recovery_clamps_persisted_acks_to_the_recovered_tail() {
        // Two durable records, synced — then an offset table claiming a
        // consumer acknowledged offset 99 (persisted by an incarnation
        // whose later records did not survive the crash).
        let mut storage = MemStorage::new();
        {
            let mut log = DurableLog::open(
                Box::new(MemStorage::new()),
                LogConfig {
                    segment_bytes: 4096,
                    flush_every: 1,
                },
            );
            log.register_consumer(DestId(7), ClassId(0));
            log.append(&env(0, 0));
            log.append(&env(0, 1));
            storage.append(0, &log.storage.read_segment(0));
            storage.sync(0);
        }
        let table = OffsetTable {
            entries: [((7u64, 0u32), 99u64)].into_iter().collect(),
        };
        storage.write_meta(&serde_json::to_vec(&table).expect("table serializes"));
        let mut log = DurableLog::open(Box::new(storage), LogConfig::default());
        assert_eq!(
            log.acked_upto(DestId(7), ClassId(0)),
            2,
            "an ack beyond the durable tail is clamped on recovery"
        );
        // Offsets reused by new appends replay instead of being skipped.
        assert_eq!(log.append(&env(0, 5)), 3);
        assert_eq!(log.replay_after(ClassId(0), 2).len(), 1);
    }

    #[test]
    fn over_tail_acks_are_clamped() {
        let mut log = small_log();
        log.register_consumer(DestId(1), ClassId(0));
        log.append(&env(0, 0));
        // A stale subscriber cursor from before a broker crash can name
        // offsets the recovered log never assigned; taking it verbatim
        // would skip the reused offsets forever.
        log.ack(DestId(1), ClassId(0), 50);
        assert_eq!(log.acked_upto(DestId(1), ClassId(0)), 1);
    }

    #[test]
    fn replay_window_bounds_the_batch() {
        let mut log = DurableLog::open(
            Box::new(MemStorage::new()),
            LogConfig {
                segment_bytes: 256, // records span several segments
                flush_every: 1,
            },
        );
        log.register_consumer(DestId(1), ClassId(0));
        for i in 0..10 {
            log.append(&env(0, i));
        }
        let first = log.replay_window(ClassId(0), 2, 4);
        let offs: Vec<u64> = first.iter().map(|(off, _)| *off).collect();
        assert_eq!(offs, vec![3, 4, 5, 6]);
        assert_eq!(
            log.stats().records_replayed,
            0,
            "window paging is not replay; only the caller can tell"
        );
        log.note_replayed(first.len() as u64);
        assert_eq!(log.stats().records_replayed, 4);
        let rest = log.replay_window(ClassId(0), 6, usize::MAX);
        assert_eq!(rest.len(), 4);
        assert_eq!(rest[0].0, 7);
    }

    mod corruption {
        //! Property coverage for recovery: whatever happens to a stored
        //! segment — truncation at any byte, a flipped byte, random
        //! garbage appended — `open` must never panic and must recover
        //! exactly the longest prefix of CRC-valid records.
        use super::*;
        use proptest::prelude::*;

        /// Builds a synced single-segment log of `n` records and returns
        /// the raw segment bytes plus each record's end boundary.
        fn valid_segment(n: u64) -> (Vec<u8>, Vec<usize>) {
            let mut log = DurableLog::open(
                Box::new(MemStorage::new()),
                LogConfig {
                    segment_bytes: usize::MAX,
                    flush_every: 1,
                },
            );
            // A pinning consumer keeps eager compaction away.
            log.register_consumer(DestId(1), ClassId(0));
            for i in 0..n {
                log.append(&env(0, i));
            }
            let bytes = log.storage.read_segment(0);
            let mut boundaries = Vec::new();
            let mut at = 0usize;
            for payload in scan_records(&bytes).records {
                at += RECORD_HEADER_LEN + payload.len();
                boundaries.push(at);
            }
            assert_eq!(boundaries.len(), n as usize);
            assert_eq!(at, bytes.len());
            (bytes, boundaries)
        }

        /// Opens a log over one synced segment holding exactly `bytes`.
        fn reopen(bytes: &[u8]) -> DurableLog {
            let mut storage = MemStorage::new();
            if !bytes.is_empty() {
                storage.append(0, bytes);
                storage.sync(0);
            }
            DurableLog::open(Box::new(storage), LogConfig::default())
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Cutting the segment at any byte recovers every record
            /// wholly inside the cut, loses the rest, and the log keeps
            /// accepting appends on the repaired boundary.
            #[test]
            fn truncation_recovers_the_longest_valid_prefix(
                n in 1u64..12,
                cut_seed in 0usize..1_000_000,
            ) {
                let (bytes, bounds) = valid_segment(n);
                let cut = cut_seed % (bytes.len() + 1);
                let survivors = bounds.iter().filter(|&&b| b <= cut).count() as u64;
                let mut log = reopen(&bytes[..cut]);
                prop_assert_eq!(log.tail_off(ClassId(0)), survivors);
                let on_boundary = cut == 0 || bounds.contains(&cut);
                prop_assert_eq!(log.stats().torn_truncations, u64::from(!on_boundary));
                // The torn tail is gone for good: appends and replay line
                // up on the recovered offset, not the pre-crash one.
                log.register_consumer(DestId(2), ClassId(0));
                prop_assert_eq!(log.append(&env(0, 999)), survivors + 1);
                let replayed = log.replay_after(ClassId(0), 0);
                prop_assert_eq!(replayed.len() as u64, survivors + 1);
            }

            /// Flipping any single byte is caught by the record CRC: the
            /// records before the flip survive, nothing after the flip is
            /// trusted, and recovery never panics.
            #[test]
            fn bit_flips_cut_the_log_at_the_damaged_record(
                n in 1u64..12,
                pos_seed in 0usize..1_000_000,
                mask in 1u8..=255,
            ) {
                let (mut bytes, bounds) = valid_segment(n);
                let pos = pos_seed % bytes.len();
                bytes[pos] ^= mask;
                let intact = bounds.iter().filter(|&&b| b <= pos).count() as u64;
                let log = reopen(&bytes);
                prop_assert_eq!(log.tail_off(ClassId(0)), intact);
                prop_assert_eq!(log.stats().torn_truncations, 1);
            }

            /// Random bytes appended after valid records (a torn write, a
            /// partial header, plausible-looking garbage) never survive a
            /// reopen and never panic it.
            #[test]
            fn garbage_tails_are_dropped(
                n in 0u64..8,
                garbage in proptest::collection::vec(any::<u8>(), 1..128),
            ) {
                let (mut bytes, _) = valid_segment(n);
                bytes.extend_from_slice(&garbage);
                let log = reopen(&bytes);
                prop_assert_eq!(log.tail_off(ClassId(0)), n);
                prop_assert_eq!(log.stats().torn_truncations, 1);
            }
        }
    }

    #[test]
    fn reopen_truncates_garbage_tail() {
        let mut storage = MemStorage::new();
        {
            let mut log = DurableLog::open(
                Box::new(MemStorage::new()),
                LogConfig {
                    segment_bytes: 4096,
                    flush_every: 1,
                },
            );
            log.append(&env(0, 0));
            log.append(&env(0, 1));
            // Copy the valid bytes into our inspectable storage, then
            // append garbage like a crashed writer would.
            storage.append(0, &log.storage.read_segment(0));
        }
        storage.append(0, &[0xDE, 0xAD, 0xBE, 0xEF, 0x01]);
        storage.sync(0);
        let log = DurableLog::open(Box::new(storage), LogConfig::default());
        assert_eq!(log.tail_off(ClassId(0)), 2);
        assert_eq!(log.stats().torn_truncations, 1);
    }
}
