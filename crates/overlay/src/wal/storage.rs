//! Byte-level storage behind a durable log: named append-only segments
//! plus one atomically-replaced metadata blob.
//!
//! Two implementations back the same [`crate::wal::DurableLog`] state
//! machine, keeping the protocol identical across drivers:
//!
//! * [`MemStorage`] — deterministic in-memory segments for the simulator.
//!   It models the write/fsync distinction explicitly: bytes appended but
//!   not yet synced are *lost* by [`LogStorage::lose_unsynced`], which the
//!   broker invokes when it simulates a process crash. Tests get
//!   byte-reproducible durability semantics without touching a disk.
//! * [`FileStorage`] — real files under a directory, real `fsync`
//!   (`sync_data`) per segment, and atomic metadata replacement via
//!   write-to-temp + rename. This is what `layercake-rt` runs on.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// The storage a [`crate::wal::DurableLog`] appends to: a set of segments
/// addressed by numeric id, plus one metadata blob (the consumer-offset
/// table) replaced atomically as a whole.
///
/// All methods are infallible from the log's point of view; a file
/// implementation treats an I/O error on a log it already opened as
/// fatal (storage loss under an append-only log has no useful partial
/// recovery), while open-time errors surface from its constructor.
pub trait LogStorage: fmt::Debug + Send {
    /// Ids of all existing segments, ascending.
    fn segment_ids(&self) -> Vec<u64>;

    /// Full contents of one segment (empty if it does not exist).
    fn read_segment(&self, seg: u64) -> Vec<u8>;

    /// Appends bytes to a segment, creating it if needed. The bytes are
    /// *written* but not yet durable — only [`LogStorage::sync`] makes
    /// them survive [`LogStorage::lose_unsynced`] / a power cut.
    fn append(&mut self, seg: u64, bytes: &[u8]);

    /// Truncates a segment to `len` bytes (recovery cutting a torn tail).
    fn truncate(&mut self, seg: u64, len: u64);

    /// Makes every byte written to the segment so far durable (fsync).
    fn sync(&mut self, seg: u64);

    /// Deletes a segment (compaction).
    fn remove_segment(&mut self, seg: u64);

    /// The metadata blob, if one was ever written.
    fn read_meta(&self) -> Option<Vec<u8>>;

    /// Atomically replaces the metadata blob; durable on return.
    fn write_meta(&mut self, bytes: &[u8]);

    /// Drops every byte not yet covered by a [`LogStorage::sync`] —
    /// the simulator's model of a process crash taking the page cache
    /// with it. Real-file storage keeps nothing in userspace, so its
    /// implementation is a no-op.
    fn lose_unsynced(&mut self);
}

/// One in-memory segment: its bytes and the synced prefix length.
#[derive(Debug, Default, Clone)]
struct MemSegment {
    bytes: Vec<u8>,
    synced: usize,
}

/// Deterministic in-memory [`LogStorage`] for the simulator and for
/// corruption tests (which mutate segment bytes directly through
/// [`MemStorage::segment_bytes_mut`]).
#[derive(Debug, Default)]
pub struct MemStorage {
    segments: BTreeMap<u64, MemSegment>,
    meta: Option<Vec<u8>>,
}

impl MemStorage {
    /// Creates empty storage.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Direct mutable access to a segment's raw bytes — the fault-
    /// injection hook corruption tests flip bits and splice garbage
    /// through. Mutations count as synced (the corruption is "on disk").
    pub fn segment_bytes_mut(&mut self, seg: u64) -> Option<&mut Vec<u8>> {
        let s = self.segments.get_mut(&seg)?;
        s.synced = usize::MAX; // keep whatever the test writes
        Some(&mut s.bytes)
    }
}

impl LogStorage for MemStorage {
    fn segment_ids(&self) -> Vec<u64> {
        self.segments.keys().copied().collect()
    }

    fn read_segment(&self, seg: u64) -> Vec<u8> {
        self.segments
            .get(&seg)
            .map(|s| s.bytes.clone())
            .unwrap_or_default()
    }

    fn append(&mut self, seg: u64, bytes: &[u8]) {
        self.segments
            .entry(seg)
            .or_default()
            .bytes
            .extend_from_slice(bytes);
    }

    fn truncate(&mut self, seg: u64, len: u64) {
        if let Some(s) = self.segments.get_mut(&seg) {
            s.bytes.truncate(len as usize);
            s.synced = s.synced.min(s.bytes.len());
        }
    }

    fn sync(&mut self, seg: u64) {
        if let Some(s) = self.segments.get_mut(&seg) {
            s.synced = s.bytes.len();
        }
    }

    fn remove_segment(&mut self, seg: u64) {
        self.segments.remove(&seg);
    }

    fn read_meta(&self) -> Option<Vec<u8>> {
        self.meta.clone()
    }

    fn write_meta(&mut self, bytes: &[u8]) {
        self.meta = Some(bytes.to_vec());
    }

    fn lose_unsynced(&mut self) {
        for s in self.segments.values_mut() {
            let keep = s.synced.min(s.bytes.len());
            s.bytes.truncate(keep);
        }
        self.segments.retain(|_, s| !s.bytes.is_empty());
    }
}

/// Real-file [`LogStorage`]: one `seg-<id>.log` file per segment and an
/// `offsets.meta` blob in a directory, with real `fsync` on
/// [`LogStorage::sync`] and atomic metadata replacement.
pub struct FileStorage {
    dir: PathBuf,
    /// Open append handles, kept so `sync` can `sync_data` the same file
    /// descriptor the writes went through.
    handles: BTreeMap<u64, fs::File>,
}

impl fmt::Debug for FileStorage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileStorage")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl FileStorage {
    /// Opens (creating if needed) the storage directory.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created or is not accessible.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            handles: BTreeMap::new(),
        })
    }

    /// The directory this storage lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn segment_path(&self, seg: u64) -> PathBuf {
        self.dir.join(format!("seg-{seg:016x}.log"))
    }

    fn meta_path(&self) -> PathBuf {
        self.dir.join("offsets.meta")
    }

    fn handle(&mut self, seg: u64) -> &mut fs::File {
        let path = self.segment_path(seg);
        self.handles.entry(seg).or_insert_with(|| {
            fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .unwrap_or_else(|e| panic!("open log segment {}: {e}", path.display()))
        })
    }
}

impl LogStorage for FileStorage {
    fn segment_ids(&self) -> Vec<u64> {
        let mut ids = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return ids;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(hex) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".log"))
            {
                if let Ok(id) = u64::from_str_radix(hex, 16) {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        ids
    }

    fn read_segment(&self, seg: u64) -> Vec<u8> {
        let mut bytes = Vec::new();
        if let Ok(mut f) = fs::File::open(self.segment_path(seg)) {
            f.read_to_end(&mut bytes)
                .unwrap_or_else(|e| panic!("read log segment {seg}: {e}"));
        }
        bytes
    }

    fn append(&mut self, seg: u64, bytes: &[u8]) {
        self.handle(seg)
            .write_all(bytes)
            .unwrap_or_else(|e| panic!("append to log segment {seg}: {e}"));
    }

    fn truncate(&mut self, seg: u64, len: u64) {
        // Re-open without append mode: set_len on an append handle is
        // fine, but dropping the handle first keeps the offset story
        // simple across platforms.
        self.handles.remove(&seg);
        let path = self.segment_path(seg);
        let f = fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("open log segment {} for truncate: {e}", path.display()));
        f.set_len(len)
            .unwrap_or_else(|e| panic!("truncate log segment {seg}: {e}"));
        f.sync_data()
            .unwrap_or_else(|e| panic!("sync truncated log segment {seg}: {e}"));
    }

    fn sync(&mut self, seg: u64) {
        self.handle(seg)
            .sync_data()
            .unwrap_or_else(|e| panic!("fsync log segment {seg}: {e}"));
    }

    fn remove_segment(&mut self, seg: u64) {
        self.handles.remove(&seg);
        let path = self.segment_path(seg);
        fs::remove_file(&path)
            .unwrap_or_else(|e| panic!("remove log segment {}: {e}", path.display()));
    }

    fn read_meta(&self) -> Option<Vec<u8>> {
        fs::read(self.meta_path()).ok()
    }

    fn write_meta(&mut self, bytes: &[u8]) {
        let tmp = self.dir.join("offsets.meta.tmp");
        let mut f =
            fs::File::create(&tmp).unwrap_or_else(|e| panic!("create {}: {e}", tmp.display()));
        f.write_all(bytes)
            .unwrap_or_else(|e| panic!("write {}: {e}", tmp.display()));
        f.sync_data()
            .unwrap_or_else(|e| panic!("sync {}: {e}", tmp.display()));
        drop(f);
        fs::rename(&tmp, self.meta_path())
            .unwrap_or_else(|e| panic!("rename offsets meta into place: {e}"));
    }

    fn lose_unsynced(&mut self) {
        // A real process crash loses nothing userspace-visible: the OS
        // already has every written byte. Only power loss would, and the
        // file driver cannot simulate that.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_round_trips_and_loses_unsynced() {
        let mut s = MemStorage::new();
        s.append(0, b"abc");
        s.sync(0);
        s.append(0, b"def");
        assert_eq!(s.read_segment(0), b"abcdef");
        s.lose_unsynced();
        assert_eq!(s.read_segment(0), b"abc");
        s.append(1, b"x");
        s.lose_unsynced();
        // A never-synced segment vanishes entirely.
        assert_eq!(s.segment_ids(), vec![0]);
        s.write_meta(b"meta");
        assert_eq!(s.read_meta().as_deref(), Some(&b"meta"[..]));
        s.remove_segment(0);
        assert!(s.segment_ids().is_empty());
    }

    #[test]
    fn file_storage_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "layercake-wal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let mut s = FileStorage::open(&dir).unwrap();
        assert!(s.segment_ids().is_empty());
        s.append(7, b"hello ");
        s.append(7, b"world");
        s.sync(7);
        s.append(9, b"zzz");
        assert_eq!(s.segment_ids(), vec![7, 9]);
        assert_eq!(s.read_segment(7), b"hello world");
        s.truncate(7, 5);
        assert_eq!(s.read_segment(7), b"hello");
        s.write_meta(b"{\"v\":1}");
        // Re-open from the same directory: everything persisted.
        let s2 = FileStorage::open(&dir).unwrap();
        assert_eq!(s2.segment_ids(), vec![7, 9]);
        assert_eq!(s2.read_segment(7), b"hello");
        assert_eq!(s2.read_meta().as_deref(), Some(&b"{\"v\":1}"[..]));
        let mut s2 = s2;
        s2.remove_segment(9);
        assert_eq!(s2.segment_ids(), vec![7]);
        let _ = fs::remove_dir_all(&dir);
    }
}
