//! Durable segmented event log (the broker's write-ahead log).
//!
//! Layering:
//!
//! * [`LogStorage`] abstracts the byte store — [`MemStorage`] gives the
//!   simulator a deterministic in-memory model with an explicit
//!   synced/unsynced split (a crash loses the unsynced tail, exactly
//!   like a page cache), [`FileStorage`] backs the wall-clock runtime
//!   with real files and real `fsync`.
//! * [`DurableLog`] frames events into CRC-checked records (reusing the
//!   wire codec's length-prefix discipline, plus a CRC-32 over the
//!   payload), rotates segments, batches fsyncs, tracks per-`(consumer,
//!   class)` acknowledged offsets, replays the unacknowledged suffix to
//!   resuming durable subscribers, and compacts segments every consumer
//!   has moved past.
//!
//! On open, a log recovers from torn writes by truncating each segment
//! to its longest prefix of CRC-valid records — damage at the tail is an
//! expected crash artifact, not an error.

mod log;
mod storage;

pub use self::log::{DurableLog, LogConfig};
pub use storage::{FileStorage, LogStorage, MemStorage};
