//! Hierarchical broker overlay implementing multi-stage filtering
//! (Sections 4 and 5 of the paper).
//!
//! Brokers are arranged in an arbitrarily-deep hierarchy. Published events
//! enter at the root (the highest stage) and flow down; each broker holds a
//! `<filter, id-list>` table of *weakened* filters — the weakest (type-only)
//! filters at the root, progressively stronger ones towards the
//! subscribers, and the original subscription (including any stateful
//! residual predicate) only at the subscriber runtime itself.
//!
//! The crate provides:
//!
//! * [`Broker`] / [`SubscriberNode`] — the per-node protocol machines:
//!   subscription placement (Figure 5, including the similarity search and
//!   wildcard handling of Sections 4.2/4.4), event filtering & forwarding
//!   (Figure 6), and soft-state TTL leases (Section 4.3).
//! * [`OverlaySim`] — a facade that builds the hierarchy inside a
//!   deterministic discrete-event [`layercake_sim::World`], drives
//!   advertisements, subscriptions and publications, and extracts the
//!   paper's metrics ([`layercake_metrics::RunMetrics`]).
//! * [`baseline`] — the two reference architectures of Section 2.1: a
//!   centralized filtering server (RLC ≡ 1) and broadcast-with-local-
//!   filtering.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use layercake_event::{event_data, Advertisement, EventSeq, Envelope, TypeRegistry};
//! use layercake_filter::Filter;
//! use layercake_overlay::{OverlayConfig, OverlaySim};
//! use layercake_workload::BiblioWorkload;
//!
//! let mut registry = TypeRegistry::new();
//! let class = BiblioWorkload::register(&mut registry);
//! let mut sim = OverlaySim::new(OverlayConfig::default(), Arc::new(registry));
//! sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
//!
//! let sub = sim
//!     .add_subscriber(Filter::for_class(class).eq("year", 2002))
//!     .unwrap();
//! sim.settle();
//!
//! let hit = event_data! { "year" => 2002, "conference" => "icdcs", "author" => "x", "title" => "t" };
//! let miss = event_data! { "year" => 1999, "conference" => "icdcs", "author" => "x", "title" => "t" };
//! sim.publish(Envelope::from_meta(class, "Biblio", EventSeq(0), hit));
//! sim.publish(Envelope::from_meta(class, "Biblio", EventSeq(1), miss));
//! sim.settle();
//!
//! assert_eq!(sim.deliveries(sub), &[EventSeq(0)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
mod broker;
mod config;
mod ctx;
mod error;
mod flow;
pub mod mesh;
mod msg;
mod node;
mod reliability;
mod sim;
mod subscriber;
pub mod topology;
pub mod wal;

pub use broker::Broker;
pub use config::{OverlayConfig, PlacementPolicy};
pub use ctx::{Node, NodeCtx};
pub use error::OverlayError;
pub use msg::{OverlayMsg, SubscriptionReq};
pub use node::NodeActor;
pub use sim::{OverlaySim, SubscriberHandle};
pub use subscriber::{Branch, ResidualFilter, SubscriberNode};
