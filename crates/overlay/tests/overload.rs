//! Overload-protection suite: with flow control enabled the overlay must
//! (a) be invisible under capacity — byte-identical deliveries to a run
//! without it, (b) degrade gracefully past capacity — bounded queues,
//! data-only shedding, survivors delivered in order, and (c) isolate a
//! dead downstream behind a circuit breaker and recover when it returns.

use std::sync::Arc;

use layercake_event::{event_data, Advertisement, ClassId, Envelope, EventSeq, TypeRegistry};
use layercake_filter::Filter;
use layercake_overlay::{OverlayConfig, OverlaySim, SubscriberHandle};
use layercake_sim::SimDuration;
use layercake_workload::BiblioWorkload;
use proptest::prelude::*;

/// A `[1, 1]` biblio overlay — one root, one stage-1 broker, one
/// subscriber matching every published event. The linear path makes
/// shed/delivery accounting exact.
fn linear_sim(cfg_mut: impl FnOnce(&mut OverlayConfig)) -> (OverlaySim, ClassId, SubscriberHandle) {
    let mut registry = TypeRegistry::new();
    let class = BiblioWorkload::register(&mut registry);
    let mut cfg = OverlayConfig {
        levels: vec![1, 1],
        ..OverlayConfig::default()
    };
    cfg_mut(&mut cfg);
    let mut sim = OverlaySim::new(cfg, Arc::new(registry));
    sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
    sim.settle();
    // The filter constrains `title`, which only stage 1 can express, so
    // the subscription anchors on the stage-1 broker and every delivery
    // takes the full root -> stage-1 -> subscriber path.
    let sub = sim
        .add_subscriber(
            Filter::for_class(class)
                .eq("year", 2002i64)
                .eq("conference", "icdcs")
                .eq("author", "a")
                .eq("title", "t"),
        )
        .expect("valid subscription");
    sim.settle();
    assert_eq!(
        sim.subscriber(sub).host(),
        Some(sim.brokers()[0]),
        "subscription must anchor on the stage-1 broker"
    );
    (sim, class, sub)
}

fn matching_event(class: ClassId, seq: u64) -> Envelope {
    let data = event_data! {
        "year" => 2002i64,
        "conference" => "icdcs",
        "author" => "a",
        "title" => "t",
    };
    Envelope::from_meta(class, "Biblio", EventSeq(seq), data)
}

/// Under capacity, enabling flow control must not change a single
/// delivery: same events, same order, and no shed/breaker activity.
#[test]
fn flow_control_is_invisible_under_capacity() {
    let run = |flow: bool| {
        let (mut sim, class, sub) = linear_sim(|cfg| cfg.flow_control_enabled = flow);
        for round in 0..30u64 {
            for k in 0..4u64 {
                sim.publish(matching_event(class, round * 4 + k));
            }
            sim.run_for(SimDuration::from_ticks(8));
        }
        sim.settle();
        let delivered = sim.deliveries(sub).to_vec();
        let overload = sim.metrics().overload;
        (delivered, overload)
    };
    let (without_fc, baseline_stats) = run(false);
    let (with_fc, stats) = run(true);

    assert_eq!(without_fc.len(), 120);
    assert_eq!(with_fc, without_fc, "flow control altered deliveries");
    assert!(baseline_stats.total_shed() == 0 && baseline_stats.grants_sent == 0);
    assert_eq!(stats.total_shed(), 0, "nothing may be shed under capacity");
    assert_eq!(stats.control_shed, 0);
    assert_eq!(stats.breaker_opened, 0);
    assert!(stats.grants_sent > 0, "credit protocol was exercised");
}

/// A slow stage saturates: the queue toward it fills, stays bounded, and
/// only fresh data is shed — survivors arrive exactly once, in order,
/// and the books balance (published = delivered + shed).
#[test]
fn slow_stage_sheds_bounded_and_preserves_order() {
    let (mut sim, class, sub) = linear_sim(|cfg| cfg.flow_control_enabled = true);
    let slow = sim.brokers()[0];
    sim.set_broker_service_time(slow, Some(SimDuration::from_ticks(8)));

    const PUBLISHED: u64 = 300;
    for seq in 0..PUBLISHED {
        sim.publish(matching_event(class, seq));
    }
    sim.settle();

    let delivered = sim.deliveries(sub).to_vec();
    let stats = sim.metrics().overload;

    assert!(stats.data_shed > 0, "2x+ overload must shed");
    assert_eq!(stats.control_shed, 0, "control plane is never shed");
    assert_eq!(stats.breaker_shed, 0, "a granting downstream never trips");
    assert_eq!(stats.breaker_opened, 0);
    assert!(stats.credit_stalls > 0, "backpressure was exercised");
    assert!(
        stats.peak_egress_depth <= 64,
        "queue depth {} exceeded the configured bound",
        stats.peak_egress_depth
    );
    // Sheds land on the saturated stage-1 link (recorded by the root,
    // stage 2, whose egress toward stage 1 is the bottleneck).
    assert!(!stats.shed_by_stage.is_empty());

    // Survivors: exactly once, in publication order, books balanced.
    assert_eq!(delivered.len() as u64, PUBLISHED - stats.total_shed());
    assert!(
        delivered.windows(2).all(|w| w[0] < w[1]),
        "survivors must stay in order"
    );
}

/// A crashed downstream trips the circuit breaker (bounded buildup, then
/// fast-fail); after restart the half-open probe closes it and fresh
/// events flow again.
#[test]
fn breaker_isolates_crashed_downstream_and_recovers() {
    const TTL: u64 = 200;
    let (mut sim, class, sub) = linear_sim(|cfg| {
        cfg.flow_control_enabled = true;
        cfg.leases_enabled = true;
        cfg.ttl = SimDuration::from_ticks(TTL);
    });
    let host = sim.brokers()[0];

    let mut seq = 0u64;
    for _ in 0..20 {
        sim.publish(matching_event(class, seq));
        seq += 1;
    }
    sim.settle();
    assert_eq!(sim.deliveries(sub).len(), 20, "healthy path works");

    sim.crash_broker(host);
    // Offered load continues against the dead stage: the window and then
    // the queue fill, probes go unanswered, the breaker trips and fast-
    // fails the rest.
    for _ in 0..200 {
        sim.publish(matching_event(class, seq));
        seq += 1;
        sim.run_for(SimDuration::from_ticks(4));
    }
    let mid = sim.metrics().overload;
    assert!(mid.breaker_opened >= 1, "breaker must trip on a dead stage");
    assert!(mid.breaker_shed > 0, "flushed queue counts as breaker shed");
    assert!(mid.probes_sent > 0);
    assert_eq!(mid.control_shed, 0);
    assert!(
        mid.peak_egress_depth <= 64,
        "a dead downstream must not grow the queue past its bound"
    );

    sim.restart_broker(host);
    // Recovery: half-open probe (after backoff, doubled while the crash
    // lasted) gets a grant from the restarted broker; leases notice the
    // lost subscription state and re-subscribe.
    sim.run_for(SimDuration::from_ticks(20 * TTL));
    let recovered = sim.metrics().overload;
    assert!(recovered.breaker_closed >= 1, "breaker must close again");

    // Fresh traffic flows end to end again.
    let before = sim.deliveries(sub).len();
    for _ in 0..10 {
        sim.publish(matching_event(class, seq));
        seq += 1;
        sim.run_for(SimDuration::from_ticks(2 * TTL));
    }
    sim.settle();
    assert!(
        sim.deliveries(sub).len() > before,
        "deliveries must resume after recovery"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the overload level, queue size, and service speed:
    /// control traffic is never shed, queue depth never exceeds its
    /// bound, survivors arrive exactly once in publication order, and
    /// every published event is either delivered or accounted shed.
    #[test]
    fn sheds_are_data_only_and_survivors_stay_ordered(
        seed in 0u64..1_000,
        queue_capacity in proptest::sample::select(&[8usize, 16, 64]),
        service in 0u64..=16,
        burst in 1usize..=8,
        events in 50u64..300,
    ) {
        let (mut sim, class, sub) = linear_sim(|cfg| {
            cfg.flow_control_enabled = true;
            cfg.queue_capacity = queue_capacity;
            cfg.seed = seed;
        });
        let slow = sim.brokers()[0];
        sim.set_broker_service_time(
            slow,
            (service > 0).then(|| SimDuration::from_ticks(service)),
        );

        let mut seq = 0u64;
        while seq < events {
            for _ in 0..burst {
                sim.publish(matching_event(class, seq));
                seq += 1;
            }
            sim.run_for(SimDuration::from_ticks(2));
        }
        sim.settle();

        let delivered = sim.deliveries(sub).to_vec();
        let stats = sim.metrics().overload;

        prop_assert_eq!(stats.control_shed, 0, "control plane was shed");
        prop_assert!(
            stats.peak_egress_depth <= queue_capacity as u64,
            "depth {} > capacity {}",
            stats.peak_egress_depth,
            queue_capacity
        );
        prop_assert!(
            delivered.windows(2).all(|w| w[0] < w[1]),
            "duplicate or out-of-order delivery under credit stalls"
        );
        prop_assert_eq!(
            delivered.len() as u64 + stats.total_shed(),
            seq,
            "every event must be delivered or accounted as shed"
        );
    }
}
