//! Durable-subscription integration suite: the per-broker segmented log
//! must give a durable subscriber zero event loss across disconnects and
//! across a full broker crash/restart, replaying exactly the gap past the
//! subscriber's last acknowledged offset — while volatile subscribers on
//! the same classes keep their ordinary delivery path, undisturbed.

use std::sync::Arc;

use layercake_event::{event_data, Advertisement, ClassId, Envelope, EventSeq, TypeRegistry};
use layercake_filter::Filter;
use layercake_overlay::{OverlayConfig, OverlaySim};
use layercake_sim::SimDuration;
use layercake_workload::BiblioWorkload;

const TTL: u64 = 200;

fn biblio_sim(cfg: OverlayConfig) -> (OverlaySim, ClassId) {
    let mut registry = TypeRegistry::new();
    let class = BiblioWorkload::register(&mut registry);
    let mut sim = OverlaySim::new(cfg, Arc::new(registry));
    sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
    sim.settle();
    (sim, class)
}

fn event(class: ClassId, seq: u64) -> Envelope {
    let data = event_data! {
        "year" => 2002i64,
        "conference" => "icdcs",
        "author" => "eugster",
        "title" => format!("t{seq}"),
    };
    Envelope::from_meta(class, "Biblio", EventSeq(seq), data)
}

fn seqs(v: std::ops::Range<u64>) -> Vec<EventSeq> {
    v.map(EventSeq).collect()
}

/// A detached durable subscriber misses nothing: the hosting broker logs
/// its class while it is away and replays the gap, in order, on reattach.
#[test]
fn durable_subscriber_replays_the_gap_after_disconnect() {
    let (mut sim, class) = biblio_sim(OverlayConfig {
        levels: vec![4, 2, 1],
        durability_enabled: true,
        ..OverlayConfig::default()
    });
    let sub = sim
        .add_durable_subscriber(Filter::for_class(class).eq("year", 2002))
        .unwrap();
    sim.settle();
    assert!(sim.subscriber(sub).is_durable());
    assert!(sim.subscriber(sub).host().is_some());

    for seq in 0..3 {
        sim.publish(event(class, seq));
    }
    sim.settle();
    assert_eq!(sim.deliveries(sub), &seqs(0..3)[..]);
    assert_eq!(sim.subscriber(sub).durable_received(), 3);

    // Offline: events keep landing in the broker's log, not the wire.
    assert!(sim.disconnect(sub));
    sim.settle();
    for seq in 3..8 {
        sim.publish(event(class, seq));
    }
    sim.settle();
    assert_eq!(
        sim.deliveries(sub).len(),
        3,
        "a detached durable subscriber receives nothing"
    );

    // Reattach: the log owes offsets 4..=8; they replay in append order.
    assert!(sim.reconnect(sub));
    sim.settle();
    assert_eq!(sim.deliveries(sub), &seqs(0..8)[..]);

    let m = sim.metrics();
    assert!(m.durability.records_appended >= 8);
    assert!(m.durability.records_replayed >= 5);
    assert!(m.durability.fsync_batches > 0);
    let table = m.durability_table();
    assert!(table.contains("records_appended"), "{table}");
}

/// The crash contract: the broker loses every piece of volatile state,
/// and the durable subscriber still ends up with every logged event —
/// the synced log plus the persisted offset table are enough.
#[test]
fn durable_subscriber_survives_broker_crash_with_zero_loss() {
    // Single broker, so the re-subscription after the crash necessarily
    // lands back on the node that owns the log.
    let (mut sim, class) = biblio_sim(OverlayConfig {
        levels: vec![1],
        durability_enabled: true,
        leases_enabled: true,
        ttl: SimDuration::from_ticks(TTL),
        ..OverlayConfig::default()
    });
    let sub = sim
        .add_durable_subscriber(Filter::for_class(class).eq("year", 2002))
        .unwrap();
    sim.run_for(SimDuration::from_ticks(TTL / 2));
    let host = sim.subscriber(sub).host().expect("placed");

    for seq in 0..3 {
        sim.publish(event(class, seq));
    }
    sim.run_for(SimDuration::from_ticks(TTL / 2));
    assert_eq!(sim.deliveries(sub), &seqs(0..3)[..]);

    // Detach, then publish events only the log will remember.
    assert!(sim.disconnect(sub));
    sim.run_for(SimDuration::from_ticks(4));
    for seq in 3..8 {
        sim.publish(event(class, seq));
    }
    sim.run_for(SimDuration::from_ticks(TTL / 2));
    assert_eq!(sim.deliveries(sub).len(), 3);
    sim.flush_wals(); // the tail and the offset table reach "disk"

    // Crash: volatile state (filter table, parked buffers, leases) is
    // wiped; restart recovers the log and the consumer registration.
    sim.crash_broker(host);
    sim.run_for(SimDuration::from_ticks(TTL));
    assert!(sim.restart_broker(host));

    // The subscriber notices the silent host, re-subscribes, and the
    // persisted offset (3) makes the broker replay offsets 4..=8.
    for _ in 0..20 {
        sim.run_for(SimDuration::from_ticks(2 * TTL));
        if sim.deliveries(sub).len() == 8 {
            break;
        }
    }
    assert_eq!(
        sim.deliveries(sub),
        &seqs(0..8)[..],
        "every logged event must survive the crash, exactly once"
    );
    let m = sim.metrics();
    assert!(m.durability.records_replayed >= 5);
    assert!(m.chaos.resubscriptions > 0, "the crash was detected");

    // And the recovered log keeps working: fresh traffic still delivers.
    sim.publish(event(class, 8));
    sim.run_for(SimDuration::from_ticks(TTL));
    assert_eq!(sim.deliveries(sub), &seqs(0..9)[..]);
}

/// Durable and volatile subscriptions on the same class coexist: each
/// event reaches both exactly once (the durable copy must suppress the
/// volatile copy for the durable subscriber only).
#[test]
fn durable_and_volatile_subscribers_coexist_without_dupes() {
    let (mut sim, class) = biblio_sim(OverlayConfig {
        levels: vec![4, 2, 1],
        durability_enabled: true,
        ..OverlayConfig::default()
    });
    let durable = sim
        .add_durable_subscriber(Filter::for_class(class).eq("year", 2002))
        .unwrap();
    let volatile = sim
        .add_subscriber(Filter::for_class(class).eq("year", 2002))
        .unwrap();
    sim.settle();

    for seq in 0..6 {
        sim.publish(event(class, seq));
    }
    sim.settle();
    assert_eq!(sim.deliveries(durable), &seqs(0..6)[..]);
    assert_eq!(sim.deliveries(volatile), &seqs(0..6)[..]);
    assert_eq!(
        sim.subscriber(durable).durable_received(),
        6,
        "the durable subscriber's copies came from the log path"
    );
    assert_eq!(
        sim.subscriber(volatile).durable_received(),
        0,
        "the volatile subscriber's copies did not"
    );
}

/// Unsubscribing the last durable consumer releases the log: its history
/// compacts away instead of pinning storage forever.
#[test]
fn explicit_unsubscribe_releases_the_log() {
    let (mut sim, class) = biblio_sim(OverlayConfig {
        levels: vec![1],
        durability_enabled: true,
        // Tiny segments so history spans several of them.
        wal_segment_bytes: 512,
        wal_flush_every: 1,
        ..OverlayConfig::default()
    });
    let sub = sim
        .add_durable_subscriber(Filter::for_class(class).eq("year", 2002))
        .unwrap();
    sim.settle();
    let host = sim.subscriber(sub).host().expect("placed");

    // Park the subscriber so acks stop and history piles up.
    assert!(sim.disconnect(sub));
    sim.settle();
    for seq in 0..40 {
        sim.publish(event(class, seq));
    }
    sim.settle();
    let pinned = sim.broker(host).unwrap().wal().unwrap().segment_count();
    assert!(pinned > 1, "unacked history spans segments ({pinned})");

    assert!(sim.reconnect(sub));
    sim.settle();
    assert!(sim.unsubscribe_now(sub));
    sim.settle();
    sim.flush_wals();
    let after = sim.broker(host).unwrap().wal().unwrap().segment_count();
    assert_eq!(after, 1, "only the open segment outlives the consumer");
    assert!(sim.metrics().durability.segments_compacted > 0);
}
