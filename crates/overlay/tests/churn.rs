//! Churn suite: node isolation (connectivity loss without state loss) and
//! soft-state lease expiry. Complements `tests/chaos.rs`, which covers
//! probabilistic link faults and crash/restart.

use std::sync::Arc;

use layercake_event::{event_data, Advertisement, ClassId, Envelope, EventSeq, TypeRegistry};
use layercake_filter::Filter;
use layercake_overlay::{OverlayConfig, OverlaySim, SubscriberHandle};
use layercake_sim::SimDuration;
use layercake_workload::BiblioWorkload;

const TTL: u64 = 200;

fn build(
    n: usize,
    leases: bool,
    reliability: bool,
) -> (OverlaySim, ClassId, Vec<SubscriberHandle>) {
    let mut registry = TypeRegistry::new();
    let class = BiblioWorkload::register(&mut registry);
    let mut sim = OverlaySim::new(
        OverlayConfig {
            levels: vec![4, 2, 1],
            leases_enabled: leases,
            reliability_enabled: reliability,
            ttl: SimDuration::from_ticks(TTL),
            ..OverlayConfig::default()
        },
        Arc::new(registry),
    );
    sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
    sim.settle();
    let mut subs = Vec::new();
    for i in 0..n {
        let h = sim
            .add_subscriber(
                Filter::for_class(class)
                    .eq("year", 2000)
                    .eq("conference", "icdcs")
                    .eq("author", format!("a{i}")),
            )
            .expect("valid subscription");
        subs.push(h);
    }
    sim.run_for(SimDuration::from_ticks(TTL / 2));
    for &h in &subs {
        assert!(sim.subscriber(h).host().is_some(), "placement completed");
    }
    (sim, class, subs)
}

fn publish_for(sim: &mut OverlaySim, class: ClassId, i: usize, seq: u64) -> EventSeq {
    let data = event_data! {
        "year" => 2000i64,
        "conference" => "icdcs",
        "author" => format!("a{i}"),
        "title" => format!("t{seq}"),
    };
    sim.publish(Envelope::from_meta(class, "Biblio", EventSeq(seq), data));
    EventSeq(seq)
}

#[test]
fn reliability_recovers_events_sent_while_a_node_was_isolated() {
    let (mut sim, class, subs) = build(2, false, true);

    // Cut every link of subscriber 0's host. The event published while it
    // is dark is dropped on the blocked link — but the upstream sender has
    // it buffered.
    let host = sim.subscriber(subs[0]).host().expect("placed");
    sim.isolate(host);
    let dark = publish_for(&mut sim, class, 0, 0);
    sim.run_for(SimDuration::from_ticks(32));
    assert!(
        !sim.deliveries(subs[0]).contains(&dark),
        "no delivery through an isolated node"
    );

    // Heal; the next event on the link exposes the gap, the receiver NACKs
    // and the buffered event is retransmitted: nothing is lost.
    sim.heal_node(host);
    let fresh = publish_for(&mut sim, class, 0, 1);
    sim.run_for(SimDuration::from_ticks(64));
    assert!(
        sim.deliveries(subs[0]).contains(&dark),
        "gap repaired after heal"
    );
    assert!(sim.deliveries(subs[0]).contains(&fresh));
    assert!(sim.metrics().chaos.retransmitted > 0);
}

#[test]
fn isolation_without_reliability_loses_the_dark_events() {
    let (mut sim, class, subs) = build(2, false, false);
    let host = sim.subscriber(subs[0]).host().expect("placed");
    sim.isolate(host);
    let dark = publish_for(&mut sim, class, 0, 0);
    sim.run_for(SimDuration::from_ticks(32));
    sim.heal_node(host);
    let fresh = publish_for(&mut sim, class, 0, 1);
    sim.run_for(SimDuration::from_ticks(64));
    // The contrast with the reliable run: best-effort forwarding drops the
    // dark event forever, but traffic resumes after heal.
    assert!(!sim.deliveries(subs[0]).contains(&dark));
    assert!(sim.deliveries(subs[0]).contains(&fresh));
}

#[test]
fn repeated_isolate_heal_cycles_keep_the_overlay_delivering() {
    let (mut sim, class, subs) = build(3, true, true);
    let host = sim.subscriber(subs[0]).host().expect("placed");
    let mut seq = 0u64;
    for _cycle in 0..4 {
        sim.isolate(host);
        sim.run_for(SimDuration::from_ticks(TTL / 2));
        sim.heal_node(host);
        // Everyone receives fresh post-heal events, including the
        // subscriber behind the churned node.
        let probes: Vec<(usize, EventSeq)> = (0..subs.len())
            .map(|i| {
                let s = publish_for(&mut sim, class, i, seq);
                seq += 1;
                (i, s)
            })
            .collect();
        sim.run_for(SimDuration::from_ticks(2 * TTL));
        for (i, probe) in probes {
            assert!(
                sim.deliveries(subs[i]).contains(&probe),
                "sub {i} lost its probe after heal cycle"
            );
        }
    }
}

#[test]
fn unrenewed_leases_are_swept_and_events_stop_flowing() {
    let (mut sim, class, subs) = build(2, true, false);
    let broker_filters = |sim: &OverlaySim| -> usize {
        sim.brokers()
            .iter()
            .map(|&b| sim.broker(b).unwrap().filter_count())
            .sum()
    };
    let before = broker_filters(&sim);
    assert!(before > 0, "placed subscriptions occupy broker tables");

    // Subscriber 0 goes silent (soft-state unsubscription): its filters
    // must disappear from every stage within 3 × TTL (+ one sweep).
    sim.unsubscribe(subs[0]);
    sim.run_for(SimDuration::from_ticks(5 * TTL));
    let after = broker_filters(&sim);
    assert!(
        after < before,
        "lease sweep removes the silent subscriber's branches ({before} -> {after})"
    );

    // Its events no longer flow; the renewing subscriber is unaffected.
    let gone = publish_for(&mut sim, class, 0, 0);
    let kept = publish_for(&mut sim, class, 1, 1);
    sim.run_for(SimDuration::from_ticks(TTL / 2));
    assert!(!sim.deliveries(subs[0]).contains(&gone));
    assert!(sim.deliveries(subs[1]).contains(&kept));
}
