//! Fault-injection (chaos) suite: the overlay must deliver exactly-once
//! once faults heal, no matter what the fault layer did while it was
//! active — message drops, duplications, jitter, and a mid-run broker
//! crash/restart. Everything is seeded, so every failure reproduces.

use std::sync::Arc;

use layercake_event::{event_data, Advertisement, ClassId, Envelope, EventSeq, TypeRegistry};
use layercake_filter::Filter;
use layercake_overlay::{OverlayConfig, OverlaySim, SubscriberHandle};
use layercake_sim::{FaultPlan, SimDuration};
use layercake_workload::BiblioWorkload;
use proptest::prelude::*;

const TTL: u64 = 200;
/// Generous recovery budget: lease silence detection needs two renewal
/// cycles and the re-subscription walk a few more, plus backoff retries
/// when the Subscribe message itself is unlucky.
const MAX_RECONVERGE_ROUNDS: u64 = 20;

struct Chaos {
    sim: OverlaySim,
    class: ClassId,
    subs: Vec<SubscriberHandle>,
    next_seq: u64,
}

impl Chaos {
    /// A `[4, 2, 1]` biblio overlay with reliability and leases on, plus
    /// `n` subscribers whose filters wildcard only the title (anchoring
    /// them on stage-1 brokers).
    fn new(n: usize, seed: u64) -> Self {
        let mut registry = TypeRegistry::new();
        let class = BiblioWorkload::register(&mut registry);
        let mut sim = OverlaySim::new(
            OverlayConfig {
                levels: vec![4, 2, 1],
                leases_enabled: true,
                reliability_enabled: true,
                ttl: SimDuration::from_ticks(TTL),
                seed,
                ..OverlayConfig::default()
            },
            Arc::new(registry),
        );
        sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
        sim.settle();
        let mut subs = Vec::new();
        for i in 0..n {
            let h = sim
                .add_subscriber(
                    Filter::for_class(class)
                        .eq("year", 2000 + (i % 2) as i64)
                        .eq("conference", format!("c{}", i % 2))
                        .eq("author", format!("a{i}")),
                )
                .expect("valid subscription");
            subs.push(h);
        }
        sim.run_for(SimDuration::from_ticks(TTL / 2));
        for &h in &subs {
            assert!(sim.subscriber(h).host().is_some(), "placement completed");
        }
        Chaos {
            sim,
            class,
            subs,
            next_seq: 0,
        }
    }

    /// Publishes one event matching exactly subscriber `i`'s filter and
    /// returns its sequence number.
    fn publish_for(&mut self, i: usize) -> EventSeq {
        let seq = EventSeq(self.next_seq);
        self.next_seq += 1;
        let data = event_data! {
            "year" => 2000 + (i % 2) as i64,
            "conference" => format!("c{}", i % 2),
            "author" => format!("a{i}"),
            "title" => format!("t{}", seq.0),
        };
        self.sim
            .publish(Envelope::from_meta(self.class, "Biblio", seq, data));
        seq
    }

    fn delivered(&self, i: usize, seq: EventSeq) -> bool {
        self.sim.deliveries(self.subs[i]).contains(&seq)
    }

    /// Publishes one fresh probe per subscriber and advances until every
    /// probe arrived (or the round budget runs out). Returns the virtual
    /// ticks it took.
    fn reconverge(&mut self) -> Option<u64> {
        let start = self.sim.now();
        let mut outstanding: Vec<(usize, EventSeq)> = Vec::new();
        for round in 0..MAX_RECONVERGE_ROUNDS {
            let _ = round;
            for i in 0..self.subs.len() {
                let seq = self.publish_for(i);
                outstanding.push((i, seq));
            }
            self.sim.run_for(SimDuration::from_ticks(2 * TTL));
            // A subscriber is live again once its *latest* probe arrived;
            // earlier probes may be lost to the pre-heal gap forever.
            let n = self.subs.len();
            let latest = &outstanding[outstanding.len() - n..];
            if latest.iter().all(|&(i, seq)| self.delivered(i, seq)) {
                return Some((self.sim.now() - start).ticks());
            }
        }
        None
    }
}

/// The full scenario: clean traffic, then drops + duplication + jitter
/// with a mid-run crash/restart of a subscriber-hosting broker, then heal
/// and verify exactly-once on fresh traffic. Returns the final deliveries
/// (for determinism comparison) and the reconvergence time.
fn run_scenario(
    seed: u64,
    drop_p: f64,
    dup_p: f64,
    jitter: u64,
    subs: usize,
) -> (Vec<Vec<EventSeq>>, u64) {
    let mut c = Chaos::new(subs, seed);

    // Phase 1: fault-free traffic delivers immediately.
    let clean: Vec<(usize, EventSeq)> = (0..subs).map(|i| (i, c.publish_for(i))).collect();
    c.sim.run_for(SimDuration::from_ticks(TTL / 2));
    for &(i, seq) in &clean {
        assert!(c.delivered(i, seq), "clean-phase event lost (sub {i})");
    }

    // Phase 2: turn on link faults, crash the broker hosting subscriber 0
    // mid-traffic, keep publishing, then restart it.
    c.sim.set_fault_seed(seed ^ 0x5EED);
    c.sim.set_default_fault_plan(Some(FaultPlan {
        drop_probability: drop_p,
        dup_probability: dup_p,
        max_jitter: SimDuration::from_ticks(jitter),
    }));
    let victim = c.sim.subscriber(c.subs[0]).host().expect("placed");
    for i in 0..subs {
        c.publish_for(i);
    }
    c.sim.run_for(SimDuration::from_ticks(TTL / 4));
    c.sim.crash_broker(victim);
    assert!(c.sim.is_crashed(victim));
    for i in 0..subs {
        c.publish_for(i);
    }
    c.sim.run_for(SimDuration::from_ticks(TTL));
    assert!(c.sim.restart_broker(victim), "victim was crashed");
    c.sim.run_for(SimDuration::from_ticks(TTL / 4));

    // Phase 3: heal all link faults and wait for reconvergence.
    c.sim.clear_fault_plans();
    let reconverge_ticks = c
        .reconverge()
        .expect("overlay reconverges within the round budget");

    // Phase 4: fresh post-heal traffic is delivered exactly once.
    let fresh: Vec<(usize, EventSeq)> = (0..subs).map(|i| (i, c.publish_for(i))).collect();
    c.sim.run_for(SimDuration::from_ticks(2 * TTL));
    for &(i, seq) in &fresh {
        let count = c
            .sim
            .deliveries(c.subs[i])
            .iter()
            .filter(|&&s| s == seq)
            .count();
        assert_eq!(count, 1, "post-heal event for sub {i} not exactly-once");
    }

    // Global invariant: no subscriber ever records a duplicate delivery.
    let mut all = Vec::new();
    for &h in &c.subs {
        let d = c.sim.deliveries(h).to_vec();
        let mut uniq = d.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), d.len(), "duplicate delivery recorded");
        all.push(d);
    }
    (all, reconverge_ticks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn exactly_once_survives_faults_and_a_broker_crash(
        seed in 0u64..1_000,
        drop_p in 0.0f64..=0.2,
        dup_p in 0.0f64..=0.1,
        jitter in 0u64..=3,
        subs in 2usize..6,
    ) {
        let (_, reconverge) = run_scenario(seed, drop_p, dup_p, jitter, subs);
        prop_assert!(reconverge < MAX_RECONVERGE_ROUNDS * 2 * TTL);
    }
}

#[test]
fn chaos_scenario_is_deterministic() {
    let a = run_scenario(42, 0.2, 0.1, 3, 4);
    let b = run_scenario(42, 0.2, 0.1, 3, 4);
    assert_eq!(a.0, b.0, "same seed must reproduce identical deliveries");
    assert_eq!(a.1, b.1, "same seed must reproduce the reconvergence time");
}

#[test]
fn lossy_links_force_retransmissions_that_reliability_recovers() {
    let mut c = Chaos::new(3, 7);
    c.sim.set_fault_seed(0xBAD);
    c.sim.set_default_fault_plan(Some(FaultPlan {
        drop_probability: 0.25,
        dup_probability: 0.1,
        max_jitter: SimDuration::from_ticks(2),
    }));
    for _ in 0..40 {
        for i in 0..3 {
            c.publish_for(i);
        }
        c.sim.run_for(SimDuration::from_ticks(4));
    }
    c.sim.clear_fault_plans();
    assert!(c.reconverge().is_some(), "reconverges after heavy loss");
    let m = c.sim.metrics();
    assert!(
        m.chaos.dropped > 0,
        "fault layer dropped messages: {:?}",
        m.chaos
    );
    assert!(m.chaos.duplicated > 0, "fault layer duplicated messages");
    assert!(m.chaos.retransmitted > 0, "NACKs triggered retransmissions");
    assert!(m.chaos.nacks > 0, "receivers detected gaps");
    assert!(
        m.chaos.duplicates_suppressed > 0,
        "duplicate arrivals were suppressed"
    );
}

/// The E13 reliability ring and the parked buffer are volatile: a broker
/// crash erases the history a detached subscriber was owed. The durable
/// log closes exactly that gap. Run the same detach → publish → crash →
/// restart → reattach scenario twice — ring-only and with the log — and
/// the logged variant alone recovers the events from the outage window.
#[test]
fn crashes_erase_ring_history_but_not_the_durable_log() {
    let run = |durable: bool| -> Vec<EventSeq> {
        let mut registry = TypeRegistry::new();
        let class = BiblioWorkload::register(&mut registry);
        let mut sim = OverlaySim::new(
            OverlayConfig {
                levels: vec![1],
                leases_enabled: true,
                reliability_enabled: true,
                durability_enabled: durable,
                ttl: SimDuration::from_ticks(TTL),
                seed: 5,
                ..OverlayConfig::default()
            },
            Arc::new(registry),
        );
        sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
        sim.settle();
        let filter = Filter::for_class(class).eq("year", 2002);
        let sub = if durable {
            sim.add_durable_subscriber(filter).unwrap()
        } else {
            sim.add_subscriber(filter).unwrap()
        };
        sim.run_for(SimDuration::from_ticks(TTL / 2));
        let host = sim.subscriber(sub).host().expect("placed");

        let publish = |sim: &mut OverlaySim, seq: u64| {
            let data = event_data! {
                "year" => 2002i64,
                "conference" => "icdcs",
                "author" => "eugster",
                "title" => format!("t{seq}"),
            };
            sim.publish(Envelope::from_meta(class, "Biblio", EventSeq(seq), data));
        };

        // Online traffic, then a detach with events published into the
        // outage window: ring-only parks them in broker memory, the
        // durable variant appends them to the log.
        for seq in 0..3 {
            publish(&mut sim, seq);
        }
        sim.run_for(SimDuration::from_ticks(TTL / 2));
        assert!(sim.disconnect(sub));
        sim.run_for(SimDuration::from_ticks(4));
        for seq in 3..8 {
            publish(&mut sim, seq);
        }
        sim.run_for(SimDuration::from_ticks(TTL / 2));
        sim.flush_wals();

        // Crash + restart wipes all volatile broker state.
        sim.crash_broker(host);
        sim.run_for(SimDuration::from_ticks(TTL));
        assert!(sim.restart_broker(host));
        for _ in 0..MAX_RECONVERGE_ROUNDS {
            sim.run_for(SimDuration::from_ticks(2 * TTL));
            if sim.deliveries(sub).len() >= 8 {
                break;
            }
        }
        // Fresh post-recovery traffic must flow either way.
        publish(&mut sim, 100);
        for _ in 0..MAX_RECONVERGE_ROUNDS {
            sim.run_for(SimDuration::from_ticks(2 * TTL));
            if sim.deliveries(sub).contains(&EventSeq(100)) {
                break;
            }
        }
        assert!(
            sim.deliveries(sub).contains(&EventSeq(100)),
            "post-recovery traffic must deliver (durable = {durable})"
        );
        sim.deliveries(sub).to_vec()
    };

    let ring_only = run(false);
    let with_log = run(true);
    let outage: Vec<EventSeq> = (3..8).map(EventSeq).collect();
    assert!(
        outage.iter().all(|s| !ring_only.contains(s)),
        "ring-only history should die with the broker: {ring_only:?}"
    );
    assert!(
        outage.iter().all(|s| with_log.contains(s)),
        "the durable log must replay the outage window: {with_log:?}"
    );
    for d in [&ring_only, &with_log] {
        let mut uniq = d.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), d.len(), "no duplicate deliveries");
    }
}

/// Durable deliveries dropped *in flight* — no detach, no crash — must
/// never be acknowledged past: a subscriber that acked a later offset
/// across the hole would advance the broker's cumulative ack, compaction
/// would delete the segment, and the dropped event would be gone for
/// good. The contiguity cursor holds the ack at the hole, the gap-repair
/// `Attach` re-opens the stream behind it, and the broker's sweep
/// anti-entropy restarts streams whose *trailing* events were dropped
/// (a gap no later arrival can expose). Exactly-once, eventually.
#[test]
fn dropped_durable_deliveries_are_replayed_not_acked_past() {
    let mut registry = TypeRegistry::new();
    let class = BiblioWorkload::register(&mut registry);
    let mut sim = OverlaySim::new(
        OverlayConfig {
            levels: vec![1],
            leases_enabled: true,
            durability_enabled: true,
            ttl: SimDuration::from_ticks(TTL),
            seed: 9,
            ..OverlayConfig::default()
        },
        Arc::new(registry),
    );
    sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
    sim.settle();
    let sub = sim
        .add_durable_subscriber(Filter::for_class(class).eq("year", 2002))
        .unwrap();
    sim.run_for(SimDuration::from_ticks(TTL / 2));
    let host = sim.subscriber(sub).host().expect("placed");
    let sub_actor = sim.subscriber_actor(sub);

    // Faults only on the host → subscriber direction: durable deliveries
    // (and stream-open frames) get dropped, while acks, lease renewals
    // and repair requests flow clean — isolating exactly the loss mode
    // the ack protocol must survive.
    sim.set_fault_seed(0xD0_D0);
    sim.set_link_fault_plan(
        host,
        sub_actor,
        FaultPlan {
            drop_probability: 0.3,
            dup_probability: 0.0,
            max_jitter: SimDuration::from_ticks(0),
        },
    );

    let total = 40u64;
    for seq in 0..total {
        let data = event_data! {
            "year" => 2002i64,
            "conference" => "icdcs",
            "author" => "eugster",
            "title" => format!("t{seq}"),
        };
        sim.publish(Envelope::from_meta(class, "Biblio", EventSeq(seq), data));
        sim.run_for(SimDuration::from_ticks(3));
    }
    sim.run_for(SimDuration::from_ticks(TTL));

    sim.clear_fault_plans();
    for _ in 0..MAX_RECONVERGE_ROUNDS {
        sim.run_for(SimDuration::from_ticks(2 * TTL));
        if sim.deliveries(sub).len() as u64 >= total {
            break;
        }
    }

    // Exactly-once: every published event arrived, none twice.
    let mut got = sim.deliveries(sub).to_vec();
    got.sort_unstable();
    let want: Vec<EventSeq> = (0..total).map(EventSeq).collect();
    assert_eq!(got, want, "durable stream must heal to exactly-once");

    // The scenario actually exercised the machinery it claims to cover.
    let m = sim.metrics();
    assert!(m.chaos.dropped > 0, "fault layer dropped deliveries");
    assert!(
        sim.subscriber(sub).gap_repairs() > 0,
        "mid-stream holes triggered subscriber-side repair"
    );
    let wal = sim.broker(host).expect("alive").wal().expect("durable");
    assert!(
        wal.stats().records_replayed > 0,
        "repair re-read the log, not the ether"
    );
    // And the stream fully converged: the subscriber's contiguous cursor
    // reached the log tail, so nothing is still owed (or over-acked).
    assert_eq!(
        sim.subscriber(sub).durable_cursor(host, class),
        Some(wal.tail_off(class)),
        "cursor caught up to the tail"
    );
}

#[test]
fn crash_discard_and_resubscription_show_up_in_metrics() {
    let mut c = Chaos::new(2, 11);
    let victim = c.sim.subscriber(c.subs[0]).host().expect("placed");
    c.sim.crash_broker(victim);
    // Traffic into the crashed broker is discarded while it is down.
    for i in 0..2 {
        c.publish_for(i);
    }
    c.sim.run_for(SimDuration::from_ticks(TTL));
    assert!(c.sim.restart_broker(victim));
    assert!(c.reconverge().is_some());
    let m = c.sim.metrics();
    assert!(
        m.chaos.crash_discarded > 0,
        "crash discarded in-flight work"
    );
    assert!(
        m.chaos.resubscriptions > 0,
        "subscriber 0 re-subscribed after losing its host: {:?}",
        m.chaos
    );
}
