//! Binary-codec properties for the overlay wire messages: the compact
//! encoding must be a *drop-in equivalent* of the JSON serde seam it
//! replaced — same values in, same values out, for every
//! [`OverlayMsg`] / [`SubscriptionReq`] shape — plus the negotiated
//! attribute-dictionary flow and clean rejection of malformed input
//! (mirroring the framing-poisoning properties in `tests/wire.rs`).

use layercake_event::{
    encode_dict_update, Advertisement, BinCodec, ClassId, CodecError, DecodeDict, DictMode,
    EncodeDict, Envelope, EventData, EventSeq, StageMap, TraceContext, TraceId, WireReader,
};
use layercake_filter::{Filter, FilterId};
use layercake_overlay::{OverlayMsg, SubscriptionReq};
use layercake_sim::ActorId;
use proptest::prelude::*;

fn arb_actor() -> impl Strategy<Value = ActorId> {
    prop_oneof![any::<usize>().prop_map(ActorId), Just(ActorId(usize::MAX))]
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    (
        proptest::option::of(0u32..8),
        proptest::collection::vec((0usize..4, -1000i64..1000), 0..4),
    )
        .prop_map(|(class, constraints)| {
            let mut f = match class {
                Some(c) => Filter::for_class(ClassId(c)),
                None => Filter::any(),
            };
            for (attr, val) in constraints {
                f = match attr {
                    0 => f.eq("bin-attr-a", val),
                    1 => f.le("bin-attr-b", val as f64),
                    2 => f.prefix("bin-attr-c", format!("p{val}")),
                    _ => f.exists("bin-attr-d"),
                };
            }
            f
        })
}

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    (
        0u32..8,
        any::<u64>(),
        proptest::collection::vec((0usize..3, -1000i64..1000), 0..5),
        proptest::option::of((any::<u64>(), any::<u64>())),
    )
        .prop_map(|(class, seq, attrs, trace)| {
            let mut meta = EventData::new();
            for (i, (kind, val)) in attrs.into_iter().enumerate() {
                match kind {
                    0 => meta.insert(format!("bin-meta-{i}"), val),
                    1 => meta.insert(format!("bin-meta-{i}"), val as f64 / 4.0),
                    _ => meta.insert(format!("bin-meta-{i}"), format!("s{val}")),
                };
            }
            let mut env = Envelope::from_meta(ClassId(class), "BinTest", EventSeq(seq), meta);
            if let Some((id, at)) = trace {
                env.set_trace(Some(TraceContext::new(TraceId(id), at)));
            }
            env
        })
}

fn arb_req() -> impl Strategy<Value = SubscriptionReq> {
    (any::<u64>(), arb_filter(), arb_actor(), any::<bool>()).prop_map(
        |(id, filter, subscriber, durable)| SubscriptionReq {
            id: FilterId(id),
            filter,
            subscriber,
            durable,
        },
    )
}

/// A strategy covering every `OverlayMsg` variant with randomized
/// payloads (same coverage as `tests/wire.rs`, binary edition).
fn arb_msg() -> impl Strategy<Value = OverlayMsg> {
    prop_oneof![
        (0u32..8, 1usize..4).prop_map(|(c, stages)| {
            let prefixes: Vec<usize> = (1..=stages).rev().collect();
            OverlayMsg::Advertise(Advertisement::new(
                ClassId(c),
                StageMap::from_prefixes(&prefixes).expect("non-increasing prefixes"),
            ))
        }),
        arb_req().prop_map(OverlayMsg::Subscribe),
        (arb_req(), arb_actor()).prop_map(|(req, node)| OverlayMsg::JoinAt { req, node }),
        (any::<u64>(), arb_actor()).prop_map(|(id, node)| OverlayMsg::AcceptedAt {
            id: FilterId(id),
            node
        }),
        (arb_filter(), arb_actor())
            .prop_map(|(filter, child)| OverlayMsg::ReqInsert { filter, child }),
        arb_envelope().prop_map(OverlayMsg::Publish),
        arb_envelope().prop_map(OverlayMsg::Deliver),
        Just(OverlayMsg::Renew),
        (arb_filter(), arb_actor())
            .prop_map(|(filter, subscriber)| OverlayMsg::Unsubscribe { filter, subscriber }),
        (arb_filter(), arb_actor())
            .prop_map(|(filter, child)| OverlayMsg::ReqRemove { filter, child }),
        arb_actor().prop_map(|subscriber| OverlayMsg::Detach { subscriber }),
        arb_actor().prop_map(|subscriber| OverlayMsg::Attach { subscriber }),
        (any::<u64>(), arb_envelope())
            .prop_map(|(link_seq, env)| OverlayMsg::Sequenced { link_seq, env }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(from_seq, to_seq)| OverlayMsg::Nack { from_seq, to_seq }),
        any::<u64>().prop_map(|to| OverlayMsg::Advance { to }),
        Just(OverlayMsg::RenewAck),
        Just(OverlayMsg::Rejoin),
        Just(OverlayMsg::Reannounce),
        Just(OverlayMsg::Credit),
        any::<u64>().prop_map(|consumed_total| OverlayMsg::CreditGrant { consumed_total }),
        (any::<u64>(), arb_envelope()).prop_map(|(off, env)| OverlayMsg::Durable { off, env }),
        (0u32..8, any::<u64>()).prop_map(|(class, upto)| OverlayMsg::AckUpto {
            class: ClassId(class),
            upto
        }),
        (0u32..8, any::<u64>()).prop_map(|(class, base)| OverlayMsg::DurableBase {
            class: ClassId(class),
            base
        }),
    ]
}

/// Encode in shared-dictionary mode (the in-process configuration) and
/// decode back.
fn bin_round_trip_shared(msg: &OverlayMsg) -> OverlayMsg {
    let mut dict = EncodeDict::new(DictMode::Shared);
    let mut bytes = Vec::new();
    msg.encode_bin(&mut bytes, &mut dict);
    assert!(
        !dict.has_pending(),
        "shared mode never queues dictionary updates"
    );
    let ddict = DecodeDict::new(DictMode::Shared);
    let mut r = WireReader::new(&bytes);
    let back = OverlayMsg::decode_bin(&mut r, &ddict).expect("shared-mode decode");
    r.expect_end().expect("decode consumed the whole encoding");
    back
}

/// Encode in negotiated mode, apply the pending dictionary update to a
/// fresh receiver (as the wire layer's spliced dict frame would), then
/// decode.
fn bin_round_trip_negotiated(msg: &OverlayMsg) -> OverlayMsg {
    let mut dict = EncodeDict::new(DictMode::Negotiated);
    let mut bytes = Vec::new();
    msg.encode_bin(&mut bytes, &mut dict);
    let mut ddict = DecodeDict::new(DictMode::Negotiated);
    if dict.has_pending() {
        let mut update = Vec::new();
        encode_dict_update(&dict.take_pending(), &mut update);
        // encode_dict_update emits the payload-kind discriminator first;
        // apply_update takes the body behind it.
        ddict
            .apply_update(&update[1..])
            .expect("dict update applies");
    }
    let mut r = WireReader::new(&bytes);
    let back = OverlayMsg::decode_bin(&mut r, &ddict).expect("negotiated decode");
    r.expect_end().expect("decode consumed the whole encoding");
    back
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The binary codec is value-equivalent to the JSON serde seam it
    /// replaced: both round trips reproduce the original message, in
    /// shared and negotiated dictionary modes alike.
    #[test]
    fn binary_round_trip_equals_json_round_trip(msg in arb_msg()) {
        let via_json: OverlayMsg =
            serde_json::from_slice(&serde_json::to_vec(&msg).expect("json encode"))
                .expect("json decode");
        let via_bin_shared = bin_round_trip_shared(&msg);
        let via_bin_negotiated = bin_round_trip_negotiated(&msg);
        prop_assert_eq!(&via_json, &msg);
        prop_assert_eq!(&via_bin_shared, &msg);
        prop_assert_eq!(&via_bin_negotiated, &msg);
    }

    /// A negotiated connection is stateful: names announced once decode
    /// for every later message on the same connection, in order.
    #[test]
    fn negotiated_streams_decode_in_order(
        msgs in proptest::collection::vec(arb_msg(), 1..8),
    ) {
        let mut dict = EncodeDict::new(DictMode::Negotiated);
        let mut ddict = DecodeDict::new(DictMode::Negotiated);
        let mut out = Vec::new();
        for m in &msgs {
            let mut bytes = Vec::new();
            m.encode_bin(&mut bytes, &mut dict);
            if dict.has_pending() {
                let mut update = Vec::new();
                encode_dict_update(&dict.take_pending(), &mut update);
                ddict.apply_update(&update[1..]).expect("dict update applies");
            }
            let mut r = WireReader::new(&bytes);
            out.push(OverlayMsg::decode_bin(&mut r, &ddict).expect("stream decode"));
            r.expect_end().expect("no trailing bytes");
        }
        prop_assert_eq!(out, msgs);
    }

    /// Withholding the dictionary update makes every name reference a
    /// clean `DictMiss` error — never a panic, never a wrong decode.
    /// (`Publish` always references at least the class name.)
    #[test]
    fn dictionary_miss_is_a_clean_error(env in arb_envelope()) {
        let msg = OverlayMsg::Publish(env);
        let mut dict = EncodeDict::new(DictMode::Negotiated);
        let mut bytes = Vec::new();
        msg.encode_bin(&mut bytes, &mut dict);
        prop_assert!(dict.has_pending(), "a publish always introduces names");
        let empty = DecodeDict::new(DictMode::Negotiated);
        let err = OverlayMsg::decode_bin(&mut WireReader::new(&bytes), &empty)
            .expect_err("unlearned wire ids must not decode");
        prop_assert!(
            matches!(err, CodecError::DictMiss(_)),
            "expected DictMiss, got {:?}", err
        );
    }

    /// Truncating a binary encoding anywhere strictly inside it errors —
    /// the reader's bounds checks catch it before any allocation or
    /// panic.
    #[test]
    fn truncated_encodings_error_cleanly(msg in arb_msg(), cut_seed in 0usize..1_000_000) {
        let mut dict = EncodeDict::new(DictMode::Shared);
        let mut bytes = Vec::new();
        msg.encode_bin(&mut bytes, &mut dict);
        prop_assert!(!bytes.is_empty(), "every message has at least a tag byte");
        let cut = cut_seed % bytes.len(); // 0..len: always strictly short
        let ddict = DecodeDict::new(DictMode::Shared);
        let mut r = WireReader::new(&bytes[..cut]);
        let complete = OverlayMsg::decode_bin(&mut r, &ddict).and_then(|_| r.expect_end());
        prop_assert!(complete.is_err(), "a strict prefix must not decode completely");
    }

    /// Arbitrary garbage fails with an error, not a panic or a giant
    /// allocation (declared lengths are validated against the remaining
    /// input before any buffer is built).
    #[test]
    fn garbage_input_is_rejected_without_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let ddict = DecodeDict::new(DictMode::Shared);
        let mut r = WireReader::new(&bytes);
        // Either it happens to parse as some message or it errors; both
        // are acceptable — what's being tested is that it never panics.
        let _ = OverlayMsg::decode_bin(&mut r, &ddict);
    }
}

/// A hand-crafted oversized length: a `Publish` whose payload claims
/// more bytes than the input holds must be rejected by the bounds check,
/// not trusted into an allocation.
#[test]
fn oversized_declared_lengths_are_rejected() {
    let env = Envelope::from_meta(ClassId(1), "BinTest", EventSeq(7), EventData::new());
    let msg = OverlayMsg::Publish(env);
    let mut dict = EncodeDict::new(DictMode::Shared);
    let mut bytes = Vec::new();
    msg.encode_bin(&mut bytes, &mut dict);
    // The envelope's payload length varint sits right before the final
    // trace marker byte (empty payload → single 0x00 varint). Replace it
    // with a 5-byte varint declaring ~4 GiB.
    let at = bytes.len() - 2;
    assert_eq!(bytes[at], 0, "expected the empty-payload length varint");
    bytes.splice(at..=at, [0xFF, 0xFF, 0xFF, 0xFF, 0x0F]);
    let ddict = DecodeDict::new(DictMode::Shared);
    let err = OverlayMsg::decode_bin(&mut WireReader::new(&bytes), &ddict)
        .expect_err("a 4 GiB declared payload must not decode");
    assert!(
        matches!(
            err,
            CodecError::Length | CodecError::Truncated | CodecError::Overflow
        ),
        "expected a bounds error, got {err:?}"
    );
}
