//! Subscription-aggregation suite: the aggregated broker table must be an
//! invisible optimization. For random Zipf-skewed subscription sets under
//! subscribe/unsubscribe churn, every subscriber's delivery sequence is
//! identical with aggregation on and off; and an expired covering root
//! re-promotes its covered children instead of dropping their deliveries.

use std::sync::Arc;

use layercake_event::{event_data, Advertisement, ClassId, Envelope, EventSeq, TypeRegistry};
use layercake_filter::Filter;
use layercake_overlay::{OverlayConfig, OverlaySim, SubscriberHandle};
use layercake_sim::SimDuration;
use layercake_workload::{StockConfig, StockWorkload, SubsConfig, ZipfSubs};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TTL: u64 = 200;

fn stock_sim(aggregation: bool, leases: bool, levels: Vec<usize>) -> (OverlaySim, ClassId) {
    let mut registry = TypeRegistry::new();
    let stock = StockWorkload::new(StockConfig::default(), &mut registry);
    let class = stock.class();
    let mut sim = OverlaySim::new(
        OverlayConfig {
            levels,
            aggregation_enabled: aggregation,
            leases_enabled: leases,
            ttl: SimDuration::from_ticks(TTL),
            // Symbol-wide subscriptions standardize with a `price`
            // wildcard; anchor-stage placement would host them above
            // stage 1 and the covering tests need them co-located with
            // the narrow filters they cover.
            wildcard_stage_placement: false,
            ..OverlayConfig::default()
        },
        Arc::new(registry),
    );
    sim.advertise(Advertisement::new(class, StockWorkload::stage_map()));
    sim.settle();
    (sim, class)
}

fn publish_quote(sim: &mut OverlaySim, class: ClassId, symbol: &str, price: f64, seq: u64) {
    let data = event_data! { "symbol" => symbol, "price" => price };
    sim.publish(Envelope::from_meta(class, "Stock", EventSeq(seq), data));
}

/// Runs one scripted subscribe/publish/churn/publish scenario and returns
/// each subscriber's delivery sequence. The script depends only on the
/// inputs, so an aggregated and a plain run see byte-identical traffic.
fn run_scenario(
    aggregation: bool,
    seed: u64,
    sub_count: usize,
    churn: &[usize],
    events: usize,
) -> Vec<Vec<EventSeq>> {
    let (mut sim, class) = stock_sim(aggregation, false, vec![4, 2, 1]);
    let mut pool = ZipfSubs::new(
        SubsConfig {
            groups: 10,
            buckets: 5,
            seed,
            ..SubsConfig::default()
        },
        class,
    );
    let handles: Vec<SubscriberHandle> = (0..sub_count)
        .map(|_| {
            sim.add_subscriber(pool.next_filter())
                .expect("valid subscription")
        })
        .collect();
    sim.settle();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut seq = 0u64;
    let mut publish_batch = |sim: &mut OverlaySim, n: usize| {
        for _ in 0..n {
            let symbol = StockWorkload::symbol_name(rng.gen_range(0..10));
            let price = rng.gen_range(0.0..25.0);
            publish_quote(sim, class, &symbol, price, seq);
            seq += 1;
        }
        sim.settle();
    };

    publish_batch(&mut sim, events / 2);
    for &victim in churn {
        sim.unsubscribe_now(handles[victim % handles.len()]);
        sim.settle();
    }
    publish_batch(&mut sim, events - events / 2);

    handles
        .iter()
        .map(|&h| sim.deliveries(h).to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// With merge weakening off (the default), aggregation must not change
    /// a single delivery: not the set, not the order.
    #[test]
    fn aggregated_delivery_sequences_equal_plain(
        seed in 0u64..10_000,
        sub_count in 3usize..20,
        churn in proptest::collection::vec(0usize..32, 0..8),
        events in 8usize..32,
    ) {
        let plain = run_scenario(false, seed, sub_count, &churn, events);
        let agg = run_scenario(true, seed, sub_count, &churn, events);
        prop_assert_eq!(plain, agg);
    }
}

/// Aggregation actually collapses the skewed population — the run above
/// would pass trivially if the feature were a no-op.
#[test]
fn skewed_population_collapses_broker_tables() {
    let live_after = |aggregation: bool| -> (usize, usize) {
        let (mut sim, class) = stock_sim(aggregation, false, vec![1, 1]);
        let mut pool = ZipfSubs::new(
            SubsConfig {
                groups: 8,
                buckets: 6,
                seed: 21,
                ..SubsConfig::default()
            },
            class,
        );
        for _ in 0..64 {
            sim.add_subscriber(pool.next_filter()).expect("valid");
        }
        sim.settle();
        let stage1 = sim.brokers()[0];
        let broker = sim.broker(stage1).expect("broker");
        (broker.filter_count(), broker.covered_subs())
    };
    let (plain_entries, plain_covered) = live_after(false);
    let (agg_entries, agg_covered) = live_after(true);
    assert_eq!(plain_covered, 0);
    assert!(
        agg_entries * 2 <= plain_entries,
        "aggregation should at least halve live entries ({agg_entries} vs {plain_entries})"
    );
    assert!(agg_covered > 0, "covered bookkeeping is visible");
}

/// An expired covering root's children are re-promoted into the live
/// index — silently dropping the covering subscriber must not take the
/// covered ones dark.
#[test]
fn expired_covering_root_repromotes_children_without_dropping_deliveries() {
    let (mut sim, class) = stock_sim(true, true, vec![1, 1]);
    let sym = StockWorkload::symbol_name(0);
    let wide = sim
        .add_subscriber(Filter::for_class(class).eq("symbol", sym.clone()))
        .expect("wide subscription");
    let narrow_lo = sim
        .add_subscriber(
            Filter::for_class(class)
                .eq("symbol", sym.clone())
                .lt("price", 8.0),
        )
        .expect("narrow subscription");
    let narrow_hi = sim
        .add_subscriber(
            Filter::for_class(class)
                .eq("symbol", sym.clone())
                .lt("price", 12.0),
        )
        .expect("narrow subscription");
    sim.run_for(SimDuration::from_ticks(TTL / 2));

    let stage1 = sim.brokers()[0];
    assert_eq!(
        sim.broker(stage1).unwrap().filter_count(),
        1,
        "the symbol-wide root is the only live entry"
    );
    assert_eq!(sim.broker(stage1).unwrap().covered_subs(), 2);

    publish_quote(&mut sim, class, &sym, 5.0, 0);
    sim.run_for(SimDuration::from_ticks(TTL / 4));
    for &h in &[wide, narrow_lo, narrow_hi] {
        assert!(sim.deliveries(h).contains(&EventSeq(0)));
    }

    // The covering subscriber goes silent; its lease expires and the root
    // dissolves. The children must be re-promoted, not lost.
    sim.unsubscribe(wide);
    sim.run_for(SimDuration::from_ticks(5 * TTL));
    let broker = sim.broker(stage1).unwrap();
    assert!(
        broker.filter_count() >= 1,
        "re-promoted children keep live entries"
    );
    assert!(
        !broker
            .table_entries()
            .any(|(f, _)| f.constraints().iter().any(|c| c.is_wildcard())),
        "the expired symbol-wide root left the live index"
    );

    publish_quote(&mut sim, class, &sym, 5.0, 1);
    sim.run_for(SimDuration::from_ticks(TTL / 2));
    assert!(!sim.deliveries(wide).contains(&EventSeq(1)));
    assert!(
        sim.deliveries(narrow_lo).contains(&EventSeq(1)),
        "re-promoted child still receives matching events"
    );
    assert!(sim.deliveries(narrow_hi).contains(&EventSeq(1)));
}

/// The mirror-image churn: explicitly unsubscribing the covering root
/// re-promotes children through the `Unsubscribe` path (not just the
/// lease sweep), and upstream announcements stay consistent — events
/// published right after the removal still reach the children through
/// the root broker.
#[test]
fn explicit_root_removal_keeps_children_reachable_through_the_hierarchy() {
    let (mut sim, class) = stock_sim(true, false, vec![2, 1]);
    let sym = StockWorkload::symbol_name(3);
    let wide = sim
        .add_subscriber(Filter::for_class(class).eq("symbol", sym.clone()))
        .expect("wide");
    let narrow = sim
        .add_subscriber(
            Filter::for_class(class)
                .eq("symbol", sym.clone())
                .lt("price", 9.0),
        )
        .expect("narrow");
    sim.settle();

    publish_quote(&mut sim, class, &sym, 4.0, 0);
    sim.settle();
    assert!(sim.deliveries(wide).contains(&EventSeq(0)));
    assert!(sim.deliveries(narrow).contains(&EventSeq(0)));

    assert!(sim.unsubscribe_now(wide));
    sim.settle();
    publish_quote(&mut sim, class, &sym, 4.0, 1);
    sim.settle();
    assert!(!sim.deliveries(wide).contains(&EventSeq(1)));
    assert!(
        sim.deliveries(narrow).contains(&EventSeq(1)),
        "withdrawing the covering root must not orphan the covered child"
    );
}
