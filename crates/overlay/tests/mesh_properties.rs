//! Property tests for the non-hierarchical mesh (footnote 1): zero-loss
//! delivery over random free trees with random attachment points, and
//! structural validation of generated topologies.

use std::sync::Arc;

use layercake_event::{Advertisement, Envelope, EventSeq, TypeRegistry};
use layercake_filter::IndexKind;
use layercake_overlay::mesh::{MeshConfig, MeshSim};
use layercake_workload::{BiblioConfig, BiblioWorkload};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random free tree over `n` brokers: node `i > 0` connects to a random
/// earlier node.
fn arb_tree(max: usize) -> impl Strategy<Value = MeshConfig> {
    (2usize..=max, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = (1..n).map(|i| (rng.gen_range(0..i), i)).collect();
        MeshConfig {
            brokers: n,
            edges,
            index: IndexKind::Counting,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generated free trees always validate.
    #[test]
    fn random_trees_validate(cfg in arb_tree(12)) {
        prop_assert!(cfg.validate().is_ok(), "{cfg:?}");
    }

    /// Zero loss / zero spurious delivery over random trees and random
    /// attachment points.
    #[test]
    fn mesh_delivery_equals_oracle(cfg in arb_tree(10), seed in 0u64..1_000, subs in 1usize..16, events in 20u64..80) {
        let brokers = cfg.brokers;
        let mut registry = TypeRegistry::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let workload = BiblioWorkload::new(
            BiblioConfig {
                subscriptions: subs,
                conferences: 4,
                authors: 12,
                titles: 25,
                wildcard_rate: 0.2,
                ..BiblioConfig::default()
            },
            &mut registry,
            &mut rng,
        );
        let class = workload.class();
        let registry = Arc::new(registry);
        let mut sim = MeshSim::new(cfg, Arc::clone(&registry));
        sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
        sim.settle();

        let handles: Vec<_> = workload
            .subscriptions()
            .iter()
            .map(|f| {
                let at = rng.gen_range(0..brokers);
                let h = sim.add_subscriber_at(at, f.clone()).unwrap();
                sim.settle();
                h
            })
            .collect();

        let stream: Vec<Envelope> = (0..events).map(|s| workload.envelope(s, &mut rng)).collect();
        for e in &stream {
            let at = rng.gen_range(0..brokers);
            sim.publish_at(at, e.clone());
        }
        sim.settle();

        for (h, f) in handles.iter().zip(workload.subscriptions()) {
            let oracle: Vec<EventSeq> = stream
                .iter()
                .filter(|e| f.matches_envelope(e, &registry))
                .map(Envelope::seq)
                .collect();
            let mut got = sim.deliveries(*h).to_vec();
            got.sort();
            prop_assert_eq!(got, oracle, "mesh mismatch for {} on {} brokers", f, brokers);
        }
    }

    /// Every broker evaluates each event at most once (acyclicity: no
    /// echoes, no duplicates).
    #[test]
    fn events_visit_each_broker_at_most_once(cfg in arb_tree(8), seed in 0u64..500) {
        let brokers = cfg.brokers;
        let mut registry = TypeRegistry::new();
        let class = BiblioWorkload::register(&mut registry);
        let mut sim = MeshSim::new(cfg, Arc::new(registry));
        sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
        sim.settle();
        // A type-only subscription at every broker forces full flooding.
        for at in 0..brokers {
            sim.add_subscriber_at(at, layercake_filter::Filter::for_class(class)).unwrap();
            sim.settle();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let e = layercake_event::event_data! {
            "year" => 2000i64, "conference" => "c", "author" => "a", "title" => "t"
        };
        sim.publish_at(rng.gen_range(0..brokers), Envelope::from_meta(class, "Biblio", EventSeq(0), e));
        sim.settle();
        for i in 0..brokers {
            let rec = sim.broker(i).record();
            prop_assert!(rec.received <= 1, "broker {i} saw the event {} times", rec.received);
        }
        // And with full flooding, every broker saw it exactly once.
        let total: u64 = (0..brokers).map(|i| sim.broker(i).record().received).sum();
        prop_assert_eq!(total, brokers as u64);
    }
}
