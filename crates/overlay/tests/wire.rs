//! Wire-protocol round-trip properties: every [`OverlayMsg`] must survive
//! serialize → frame → deframe → deserialize with **byte-identical**
//! re-encoding, because the wall-clock runtime pays this cycle on every
//! hop and the simulator's virtual-time behavior must stay the reference.
//! Also exercises the framing error paths (truncated streams, garbage
//! length prefixes) the runtime relies on to reject corrupt peers.

use layercake_event::{
    encode_frame, Advertisement, ClassId, Envelope, EventData, EventSeq, FrameDecoder, FrameError,
    StageMap, TraceContext, TraceId,
};
use layercake_filter::{Filter, FilterId};
use layercake_overlay::{OverlayMsg, SubscriptionReq};
use layercake_sim::ActorId;
use proptest::prelude::*;

/// Serialize → frame → deframe → deserialize, asserting the decoded value
/// equals the original and re-encodes to the exact same bytes.
fn round_trip(msg: &OverlayMsg) -> OverlayMsg {
    let bytes = serde_json::to_vec(msg).expect("serialize");
    let framed = encode_frame(&bytes).expect("frame");
    let mut dec = FrameDecoder::new();
    dec.push(&framed);
    let payload = dec
        .next_frame()
        .expect("well-formed frame")
        .expect("complete frame");
    assert_eq!(payload, bytes, "framing must not alter the payload");
    assert!(dec.next_frame().expect("no trailing error").is_none());
    dec.finish().expect("no partial frame left behind");
    let back: OverlayMsg = serde_json::from_slice(&payload).expect("deserialize");
    let re = serde_json::to_vec(&back).expect("re-serialize");
    assert_eq!(bytes, re, "re-encode of {msg:?} is not byte-identical");
    back
}

fn arb_actor() -> impl Strategy<Value = ActorId> {
    prop_oneof![any::<usize>().prop_map(ActorId), Just(ActorId(usize::MAX))]
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    (
        proptest::option::of(0u32..8),
        proptest::collection::vec((0usize..4, -1000i64..1000), 0..4),
    )
        .prop_map(|(class, constraints)| {
            let mut f = match class {
                Some(c) => Filter::for_class(ClassId(c)),
                None => Filter::any(),
            };
            for (attr, val) in constraints {
                f = match attr {
                    0 => f.eq("wire-attr-a", val),
                    1 => f.le("wire-attr-b", val as f64),
                    2 => f.prefix("wire-attr-c", format!("p{val}")),
                    _ => f.exists("wire-attr-d"),
                };
            }
            f
        })
}

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    (
        0u32..8,
        any::<u64>(),
        proptest::collection::vec((0usize..3, -1000i64..1000), 0..5),
        proptest::option::of((any::<u64>(), any::<u64>())),
    )
        .prop_map(|(class, seq, attrs, trace)| {
            let mut meta = EventData::new();
            for (i, (kind, val)) in attrs.into_iter().enumerate() {
                match kind {
                    0 => meta.insert(format!("wire-meta-{i}"), val),
                    1 => meta.insert(format!("wire-meta-{i}"), val as f64 / 4.0),
                    _ => meta.insert(format!("wire-meta-{i}"), format!("s{val}")),
                };
            }
            let mut env = Envelope::from_meta(ClassId(class), "WireTest", EventSeq(seq), meta);
            if let Some((id, at)) = trace {
                env.set_trace(Some(TraceContext::new(TraceId(id), at)));
            }
            env
        })
}

fn arb_req() -> impl Strategy<Value = SubscriptionReq> {
    (any::<u64>(), arb_filter(), arb_actor(), any::<bool>()).prop_map(
        |(id, filter, subscriber, durable)| SubscriptionReq {
            id: FilterId(id),
            filter,
            subscriber,
            durable,
        },
    )
}

/// A strategy covering every `OverlayMsg` variant with randomized payloads.
fn arb_msg() -> impl Strategy<Value = OverlayMsg> {
    prop_oneof![
        (0u32..8, 1usize..4).prop_map(|(c, stages)| {
            let prefixes: Vec<usize> = (1..=stages).rev().collect();
            OverlayMsg::Advertise(Advertisement::new(
                ClassId(c),
                StageMap::from_prefixes(&prefixes).expect("non-increasing prefixes"),
            ))
        }),
        arb_req().prop_map(OverlayMsg::Subscribe),
        (arb_req(), arb_actor()).prop_map(|(req, node)| OverlayMsg::JoinAt { req, node }),
        (any::<u64>(), arb_actor()).prop_map(|(id, node)| OverlayMsg::AcceptedAt {
            id: FilterId(id),
            node
        }),
        (arb_filter(), arb_actor())
            .prop_map(|(filter, child)| OverlayMsg::ReqInsert { filter, child }),
        arb_envelope().prop_map(OverlayMsg::Publish),
        arb_envelope().prop_map(OverlayMsg::Deliver),
        Just(OverlayMsg::Renew),
        (arb_filter(), arb_actor())
            .prop_map(|(filter, subscriber)| OverlayMsg::Unsubscribe { filter, subscriber }),
        (arb_filter(), arb_actor())
            .prop_map(|(filter, child)| OverlayMsg::ReqRemove { filter, child }),
        arb_actor().prop_map(|subscriber| OverlayMsg::Detach { subscriber }),
        arb_actor().prop_map(|subscriber| OverlayMsg::Attach { subscriber }),
        (any::<u64>(), arb_envelope())
            .prop_map(|(link_seq, env)| OverlayMsg::Sequenced { link_seq, env }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(from_seq, to_seq)| OverlayMsg::Nack { from_seq, to_seq }),
        any::<u64>().prop_map(|to| OverlayMsg::Advance { to }),
        Just(OverlayMsg::RenewAck),
        Just(OverlayMsg::Rejoin),
        Just(OverlayMsg::Reannounce),
        Just(OverlayMsg::Credit),
        any::<u64>().prop_map(|consumed_total| OverlayMsg::CreditGrant { consumed_total }),
        (any::<u64>(), arb_envelope()).prop_map(|(off, env)| OverlayMsg::Durable { off, env }),
        (0u32..8, any::<u64>()).prop_map(|(class, upto)| OverlayMsg::AckUpto {
            class: ClassId(class),
            upto
        }),
        (0u32..8, any::<u64>()).prop_map(|(class, base)| OverlayMsg::DurableBase {
            class: ClassId(class),
            base
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every message value round-trips through the framed wire byte-identically.
    #[test]
    fn framed_round_trip_is_byte_identical(msg in arb_msg()) {
        let back = round_trip(&msg);
        prop_assert_eq!(back, msg);
    }

    /// A stream of many frames decodes to the same messages in order even
    /// when delivered in arbitrary chunk sizes (TCP-style re-segmentation).
    #[test]
    fn chunked_streams_preserve_message_order(
        msgs in proptest::collection::vec(arb_msg(), 1..8),
        chunk in 1usize..64,
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode_frame(&serde_json::to_vec(m).unwrap()).unwrap());
        }
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.push(piece);
            while let Some(frame) = dec.next_frame().unwrap() {
                out.push(serde_json::from_slice::<OverlayMsg>(&frame).unwrap());
            }
        }
        dec.finish().unwrap();
        prop_assert_eq!(out, msgs);
    }

    /// Cutting a framed message anywhere strictly inside it leaves the
    /// decoder reporting a truncated stream, never a phantom frame.
    #[test]
    fn truncated_frames_are_detected(msg in arb_msg(), cut_seed in 0usize..1_000_000) {
        let framed = encode_frame(&serde_json::to_vec(&msg).unwrap()).unwrap();
        let cut = 1 + cut_seed % (framed.len() - 1); // 1..framed.len()
        let mut dec = FrameDecoder::new();
        dec.push(&framed[..cut]);
        prop_assert!(dec.next_frame().unwrap().is_none(), "partial frame must not decode");
        let err = dec.finish().expect_err("truncation must be reported");
        prop_assert!(matches!(err, FrameError::Truncated { .. }), "{err}");
    }

    /// Garbage length prefixes beyond the frame-size cap are rejected
    /// instead of driving a huge allocation.
    #[test]
    fn garbage_length_prefixes_are_rejected(len in 0x0100_0001u32..=u32::MAX) {
        let mut dec = FrameDecoder::new();
        dec.push(&len.to_le_bytes());
        let err = dec.next_frame().expect_err("oversized length must error");
        prop_assert!(matches!(err, FrameError::Oversized { .. }), "{err}");
    }

    /// A framing error is terminal: after a corrupt header the decoder
    /// keeps reporting the same error and never "resynchronizes" onto
    /// valid-looking frames that follow — there are no boundaries left
    /// to trust. (Regression: the decoder used to clear its state and
    /// decode phantom frames out of the corrupt tail.)
    #[test]
    fn framing_errors_poison_the_stream(
        msg in arb_msg(),
        after in arb_msg(),
        len in 0x0100_0001u32..=u32::MAX,
    ) {
        let mut dec = FrameDecoder::new();
        dec.push(&encode_frame(&serde_json::to_vec(&msg).unwrap()).unwrap());
        dec.push(&len.to_le_bytes());
        dec.push(&encode_frame(&serde_json::to_vec(&after).unwrap()).unwrap());
        // The frame before the corruption still comes out.
        prop_assert!(dec.next_frame().unwrap().is_some());
        let err = dec.next_frame().expect_err("corrupt header must error");
        prop_assert!(dec.is_poisoned());
        // Latched: every later poll re-reports, nothing ever decodes.
        prop_assert_eq!(dec.next_frame().expect_err("stays poisoned"), err.clone());
        prop_assert_eq!(dec.finish().expect_err("finish reports it too"), err);
        prop_assert_eq!(dec.pending(), 0, "poisoned tail must be discarded");
    }
}

/// Garbage *payload* bytes inside a well-formed frame fail at the serde
/// layer with an error, not a panic.
#[test]
fn garbage_payloads_fail_cleanly() {
    for payload in [&b"\xff\xfe\x00"[..], b"{}", b"{\"t\":\"Nope\"}", b"[]"] {
        let framed = encode_frame(payload).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&framed);
        let got = dec.next_frame().unwrap().unwrap();
        assert_eq!(got, payload);
        assert!(serde_json::from_slice::<OverlayMsg>(&got).is_err());
    }
}
