//! Tests for the protocol features beyond the basic Figure 5/6 machinery:
//! explicit unsubscription (Section 4.3), durable subscriptions with
//! disconnection buffering (Section 2.1), and soft-state cleanup under
//! network partitions (the failure case TTLs are designed for).

use std::sync::Arc;

use layercake_event::{event_data, Advertisement, Envelope, EventData, EventSeq, TypeRegistry};
use layercake_filter::Filter;
use layercake_overlay::{OverlayConfig, OverlaySim};
use layercake_sim::SimDuration;
use layercake_workload::BiblioWorkload;

fn sim(cfg: OverlayConfig) -> (OverlaySim, layercake_event::ClassId) {
    let mut registry = TypeRegistry::new();
    let class = BiblioWorkload::register(&mut registry);
    let mut sim = OverlaySim::new(cfg, Arc::new(registry));
    sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
    sim.settle();
    (sim, class)
}

fn ev(year: i64, conf: &str, author: &str, title: &str) -> EventData {
    event_data! { "year" => year, "conference" => conf, "author" => author, "title" => title }
}

fn env(class: layercake_event::ClassId, seq: u64, e: EventData) -> Envelope {
    Envelope::from_meta(class, "Biblio", EventSeq(seq), e)
}

#[test]
fn explicit_unsubscription_removes_filters_immediately() {
    let (mut sim, class) = sim(OverlayConfig {
        levels: vec![4, 2, 1],
        ..OverlayConfig::default()
    });
    let keep = sim
        .add_subscriber(Filter::for_class(class).eq("year", 2000).eq("author", "k"))
        .unwrap();
    let gone = sim
        .add_subscriber(Filter::for_class(class).eq("year", 2001).eq("author", "g"))
        .unwrap();
    sim.settle();

    assert!(sim.unsubscribe_now(gone));
    sim.settle();

    sim.publish(env(class, 0, ev(2000, "c", "k", "t")));
    sim.publish(env(class, 1, ev(2001, "c", "g", "t")));
    sim.settle();
    assert_eq!(sim.deliveries(keep).len(), 1);
    assert!(sim.deliveries(gone).is_empty());

    // The event for the removed subscription dies at the root: no broker
    // below it should even have received it.
    let below_root_received: u64 = sim
        .brokers()
        .iter()
        .filter(|&&b| b != sim.root())
        .map(|&b| sim.broker(b).unwrap().record().received)
        .sum();
    // Only the matching event travels below the root (3 hops: stage-2,
    // stage-1 for the kept subscription path).
    assert!(below_root_received <= 2, "got {below_root_received}");
}

#[test]
fn unsubscription_withdraws_upstream_filters_completely() {
    let (mut sim, class) = sim(OverlayConfig {
        levels: vec![4, 2, 1],
        ..OverlayConfig::default()
    });
    let only = sim
        .add_subscriber(
            Filter::for_class(class)
                .eq("year", 1999)
                .eq("title", "solo"),
        )
        .unwrap();
    sim.settle();
    // Before: the root holds the weakened (year) filter.
    assert_eq!(sim.broker(sim.root()).unwrap().filter_count(), 1);

    assert!(sim.unsubscribe_now(only));
    sim.settle();
    // Every broker table is empty again.
    for &b in sim.brokers() {
        assert_eq!(
            sim.broker(b).unwrap().filter_count(),
            0,
            "broker {} still holds filters",
            sim.broker(b).unwrap().label()
        );
    }
}

#[test]
fn unsubscription_keeps_shared_covering_filters_for_others() {
    let (mut sim, class) = sim(OverlayConfig {
        levels: vec![4, 2, 1],
        ..OverlayConfig::default()
    });
    // Two subscriptions sharing the (year, conference) prefix: the upstream
    // weakened filters are shared.
    let stay = sim
        .add_subscriber(
            Filter::for_class(class)
                .eq("year", 2000)
                .eq("conference", "icdcs")
                .eq("author", "stay")
                .eq("title", "a"),
        )
        .unwrap();
    let leave = sim
        .add_subscriber(
            Filter::for_class(class)
                .eq("year", 2000)
                .eq("conference", "icdcs")
                .eq("author", "leave")
                .eq("title", "b"),
        )
        .unwrap();
    sim.settle();
    assert!(sim.unsubscribe_now(leave));
    sim.settle();

    // The shared path must still work for the remaining subscription.
    sim.publish(env(class, 0, ev(2000, "icdcs", "stay", "a")));
    sim.publish(env(class, 1, ev(2000, "icdcs", "leave", "b")));
    sim.settle();
    assert_eq!(sim.deliveries(stay), &[EventSeq(0)]);
    assert!(sim.deliveries(leave).is_empty());
    // Root still has the year filter (needed by `stay`).
    assert_eq!(sim.broker(sim.root()).unwrap().filter_count(), 1);
}

#[test]
fn unsubscribe_before_placement_returns_false() {
    let (mut sim, class) = sim(OverlayConfig {
        levels: vec![4, 1],
        ..OverlayConfig::default()
    });
    let h = sim
        .add_subscriber(Filter::for_class(class).eq("year", 2000).eq("author", "x"))
        .unwrap();
    // No settle: the placement walk has not run.
    assert!(!sim.unsubscribe_now(h));
}

#[test]
fn durable_subscriber_catches_up_after_reconnect() {
    let (mut sim, class) = sim(OverlayConfig {
        levels: vec![4, 1],
        ..OverlayConfig::default()
    });
    let durable = sim
        .add_subscriber(Filter::for_class(class).eq("year", 2000).eq("author", "d"))
        .unwrap();
    sim.settle();

    sim.publish(env(class, 0, ev(2000, "c", "d", "before")));
    sim.settle();
    assert!(sim.disconnect(durable));
    sim.settle();

    // Published while offline: buffered at the hosting node.
    for i in 1..=3u64 {
        sim.publish(env(class, i, ev(2000, "c", "d", "offline")));
    }
    sim.publish(env(class, 4, ev(1999, "c", "d", "nomatch")));
    sim.settle();
    assert_eq!(
        sim.deliveries(durable).len(),
        1,
        "nothing delivered while offline"
    );

    assert!(sim.reconnect(durable));
    sim.settle();
    // Catch-up preserves publication order and loses nothing.
    assert_eq!(
        sim.deliveries(durable),
        &[EventSeq(0), EventSeq(1), EventSeq(2), EventSeq(3)]
    );

    // Back to live delivery afterwards.
    sim.publish(env(class, 5, ev(2000, "c", "d", "live")));
    sim.settle();
    assert_eq!(sim.deliveries(durable).len(), 5);
}

#[test]
fn detach_does_not_affect_other_subscribers() {
    let (mut sim, class) = sim(OverlayConfig {
        levels: vec![2, 1],
        ..OverlayConfig::default()
    });
    let offline = sim
        .add_subscriber(Filter::for_class(class).eq("year", 2000))
        .unwrap();
    let online = sim
        .add_subscriber(Filter::for_class(class).eq("year", 2000))
        .unwrap();
    sim.settle();
    sim.disconnect(offline);
    sim.settle();
    sim.publish(env(class, 0, ev(2000, "c", "a", "t")));
    sim.settle();
    assert_eq!(sim.deliveries(online).len(), 1);
    assert!(sim.deliveries(offline).is_empty());
    sim.reconnect(offline);
    sim.settle();
    assert_eq!(sim.deliveries(offline).len(), 1);
}

#[test]
fn covering_collapse_shrinks_tables_and_keeps_delivery_exact() {
    let build = |collapse: bool| {
        let (mut s, class) = sim(OverlayConfig {
            levels: vec![1],
            covering_collapse: collapse,
            ..OverlayConfig::default()
        });
        // The paper's Example 5 shape: g-covering chains on one node.
        let weak = s
            .add_subscriber(Filter::for_class(class).eq("year", 2000).lt("year", 2005))
            .unwrap();
        s.settle();
        let mid = s
            .add_subscriber(
                Filter::for_class(class)
                    .eq("year", 2000)
                    .eq("conference", "icdcs"),
            )
            .unwrap();
        s.settle();
        let strong = s
            .add_subscriber(
                Filter::for_class(class)
                    .eq("year", 2000)
                    .eq("conference", "icdcs")
                    .eq("author", "eugster"),
            )
            .unwrap();
        s.settle();
        (s, class, [weak, mid, strong])
    };

    let (mut plain, class, plain_subs) = build(false);
    let (mut collapsed, _, collapsed_subs) = build(true);
    // Collapse folds the stronger filters into the earlier covering ones.
    let plain_filters = plain.broker(plain.root()).unwrap().filter_count();
    let collapsed_filters = collapsed.broker(collapsed.root()).unwrap().filter_count();
    assert!(
        collapsed_filters < plain_filters,
        "collapse must shrink the table ({collapsed_filters} vs {plain_filters})"
    );

    // Delivery stays exact either way.
    for (i, (year, conf, author)) in [
        (2000i64, "icdcs", "eugster"),
        (2000, "icdcs", "felber"),
        (2000, "podc", "x"),
        (1999, "icdcs", "eugster"),
    ]
    .into_iter()
    .enumerate()
    {
        let e = ev(year, conf, author, "t");
        plain.publish(env(class, i as u64, e.clone()));
        collapsed.publish(env(class, i as u64, e));
    }
    plain.settle();
    collapsed.settle();
    for (p, c) in plain_subs.iter().zip(&collapsed_subs) {
        assert_eq!(plain.deliveries(*p), collapsed.deliveries(*c));
    }

    // Collapsed unsubscription removes the folded subscription only.
    assert!(collapsed.unsubscribe_now(collapsed_subs[2]));
    collapsed.settle();
    collapsed.publish(env(class, 10, ev(2000, "icdcs", "eugster", "t")));
    collapsed.settle();
    assert_eq!(
        collapsed.deliveries(collapsed_subs[2]).len(),
        1,
        "only the pre-unsubscription delivery remains"
    );
    let before = collapsed.deliveries(collapsed_subs[1]).len();
    assert!(before >= 3, "other folded subscriptions keep flowing");
}

#[test]
fn partition_triggers_soft_state_cleanup() {
    let ttl = SimDuration::from_ticks(1_000);
    let (mut sim, class) = sim(OverlayConfig {
        levels: vec![4, 1],
        leases_enabled: true,
        ttl,
        ..OverlayConfig::default()
    });
    let victim = sim
        .add_subscriber(Filter::for_class(class).eq("year", 2000).eq("author", "v"))
        .unwrap();
    let witness = sim
        .add_subscriber(Filter::for_class(class).eq("year", 2000).eq("author", "w"))
        .unwrap();
    sim.settle();
    let host = sim.subscriber(victim).host().unwrap();

    // Partition the subscriber from its host: renewals are lost — the
    // scenario explicit unsubscribe cannot handle (Section 4.3).
    let victim_actor = sim.subscriber_actor(victim);
    sim.partition(victim_actor, host);
    sim.run_for(ttl * 8);

    // The victim's filter has been swept; the witness is unaffected.
    sim.publish(env(class, 0, ev(2000, "c", "v", "t")));
    sim.publish(env(class, 1, ev(2000, "c", "w", "t")));
    sim.settle();
    assert!(sim.deliveries(victim).is_empty());
    assert_eq!(sim.deliveries(witness), &[EventSeq(1)]);
}

#[test]
fn healed_partition_allows_resubscription() {
    let ttl = SimDuration::from_ticks(1_000);
    let (mut sim, class) = sim(OverlayConfig {
        levels: vec![4, 1],
        leases_enabled: true,
        ttl,
        ..OverlayConfig::default()
    });
    let sub = sim
        .add_subscriber(Filter::for_class(class).eq("year", 2000).eq("author", "v"))
        .unwrap();
    sim.settle();
    let host = sim.subscriber(sub).host().unwrap();
    let actor = sim.subscriber_actor(sub);

    sim.partition(actor, host);
    sim.run_for(ttl * 8);
    sim.heal_partition(actor, host);

    // A fresh subscription from the same application re-establishes flow.
    let again = sim
        .add_subscriber(Filter::for_class(class).eq("year", 2000).eq("author", "v"))
        .unwrap();
    sim.settle();
    sim.publish(env(class, 0, ev(2000, "c", "v", "t")));
    sim.settle();
    assert_eq!(sim.deliveries(again), &[EventSeq(0)]);
}
