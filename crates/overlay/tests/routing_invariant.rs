//! The structural invariant multi-stage routing stands on: every filter a
//! broker stores is covered by a filter its parent stores *for that
//! broker*. If this chain breaks anywhere, events get lost upstream of the
//! subscriber — so we check it after randomized subscribe/unsubscribe
//! sequences.

use std::sync::Arc;

use layercake_event::{Advertisement, TypeRegistry};
use layercake_overlay::{OverlayConfig, OverlaySim, PlacementPolicy};
use layercake_workload::{BiblioConfig, BiblioWorkload};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Asserts the covering chain over the whole hierarchy.
fn assert_covering_chain(sim: &OverlaySim) {
    let registry = Arc::clone(sim.registry());
    for &id in sim.brokers() {
        let broker = sim.broker(id).expect("broker id");
        let Some(parent_id) = broker.parent() else {
            continue;
        };
        let parent = sim.broker(parent_id).expect("parent is a broker");
        for (filter, _) in broker.table_entries() {
            let covered = parent.table_entries().any(|(pf, dests)| {
                dests.iter().any(|d| d.0 == id.0 as u64) && pf.covers(filter, &registry)
            });
            assert!(
                covered,
                "{}'s filter {} has no covering parent entry at {}",
                broker.label(),
                filter,
                parent.label()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parent_tables_always_cover_child_tables(
        seed in 0u64..10_000,
        subs in 1usize..25,
        unsubscribe_mask in proptest::collection::vec(any::<bool>(), 1..25),
        wildcard_rate in prop_oneof![Just(0.0), Just(0.4)],
        random_placement in any::<bool>(),
        collapse in any::<bool>(),
    ) {
        let mut registry = TypeRegistry::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let workload = BiblioWorkload::new(
            BiblioConfig {
                subscriptions: subs,
                wildcard_rate,
                conferences: 4,
                authors: 10,
                titles: 20,
                ..BiblioConfig::default()
            },
            &mut registry,
            &mut rng,
        );
        let class = workload.class();
        let mut sim = OverlaySim::new(
            OverlayConfig {
                levels: vec![6, 3, 1],
                placement: if random_placement { PlacementPolicy::Random } else { PlacementPolicy::Similarity },
                covering_collapse: collapse,
                seed,
                ..OverlayConfig::default()
            },
            Arc::new(registry),
        );
        sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
        sim.settle();

        let mut handles = Vec::new();
        for f in workload.subscriptions() {
            handles.push(sim.add_subscriber(f.clone()).unwrap());
            sim.settle();
            assert_covering_chain(&sim);
        }
        for (h, gone) in handles.iter().zip(unsubscribe_mask.iter()) {
            if *gone {
                sim.unsubscribe_now(*h);
                sim.settle();
                assert_covering_chain(&sim);
            }
        }
    }
}
