//! Zero-loss suite: under *transient* link faults (drops, duplications,
//! jitter — no crashes), per-link reliability must deliver every matching
//! event exactly once after the faults heal. Unlike `tests/chaos.rs`,
//! which tolerates losing events that traversed a crashed broker, here
//! every sender's retransmission buffer survives, so nothing may be lost.

use std::sync::Arc;

use layercake_event::{event_data, Advertisement, Envelope, EventSeq, TypeRegistry};
use layercake_filter::Filter;
use layercake_overlay::{OverlayConfig, OverlaySim};
use layercake_sim::{FaultPlan, SimDuration};
use layercake_workload::BiblioWorkload;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const TTL: u64 = 400;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn transient_link_faults_lose_nothing(
        seed in 0u64..1_000,
        drop_p in 0.0f64..=0.15,
        dup_p in 0.0f64..=0.1,
        jitter in 0u64..=3,
    ) {
        run_zero_loss(seed, drop_p, dup_p, jitter, false)?;
    }

    /// The same zero-loss guarantee must hold with the overload-protection
    /// layer switched on: under capacity, credit windows and bounded
    /// queues may delay events but never drop them, and the per-link
    /// dedup/ordering machinery survives credit stalls.
    #[test]
    fn flow_control_preserves_zero_loss_under_capacity(
        seed in 0u64..1_000,
        drop_p in 0.0f64..=0.15,
        dup_p in 0.0f64..=0.1,
        jitter in 0u64..=3,
    ) {
        run_zero_loss(seed, drop_p, dup_p, jitter, true)?;
    }
}

fn run_zero_loss(
    seed: u64,
    drop_p: f64,
    dup_p: f64,
    jitter: u64,
    flow_control: bool,
) -> Result<(), TestCaseError> {
    {
        let mut registry = TypeRegistry::new();
        let class = BiblioWorkload::register(&mut registry);
        let mut sim = OverlaySim::new(
            OverlayConfig {
                levels: vec![4, 2, 1],
                leases_enabled: true,
                reliability_enabled: true,
                ttl: SimDuration::from_ticks(TTL),
                seed,
                flow_control_enabled: flow_control,
                // The egress queue must hold a full retransmission window
                // (`validate()` enforces window <= queue).
                queue_capacity: 256,
                ..OverlayConfig::default()
            },
            Arc::new(registry),
        );
        sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
        sim.settle();
        let subs: Vec<_> = (0..4)
            .map(|i| {
                sim.add_subscriber(
                    Filter::for_class(class)
                        .eq("year", 2000i64)
                        .eq("conference", "icdcs")
                        .eq("author", format!("a{i}")),
                )
                .expect("valid subscription")
            })
            .collect();
        sim.run_for(SimDuration::from_ticks(TTL / 2));

        sim.set_fault_seed(seed ^ 0x10_55);
        sim.set_default_fault_plan(Some(FaultPlan {
            drop_probability: drop_p,
            dup_probability: dup_p,
            max_jitter: SimDuration::from_ticks(jitter),
        }));

        // 25 events per subscriber while the links misbehave — well below
        // the retransmission window, so every loss stays recoverable.
        let mut published = Vec::new();
        let mut seq = 0u64;
        for round in 0..25 {
            let _ = round;
            for (i, _) in subs.iter().enumerate() {
                let data = event_data! {
                    "year" => 2000i64,
                    "conference" => "icdcs",
                    "author" => format!("a{i}"),
                    "title" => format!("t{seq}"),
                };
                sim.publish(Envelope::from_meta(class, "Biblio", EventSeq(seq), data));
                published.push((i, EventSeq(seq)));
                seq += 1;
            }
            sim.run_for(SimDuration::from_ticks(8));
        }

        // Heal, then push a few flusher events per subscriber so trailing
        // gaps on every link get exposed (gap detection is arrival-driven).
        sim.clear_fault_plans();
        for round in 0..3 {
            let _ = round;
            for (i, _) in subs.iter().enumerate() {
                let data = event_data! {
                    "year" => 2000i64,
                    "conference" => "icdcs",
                    "author" => format!("a{i}"),
                    "title" => format!("t{seq}"),
                };
                sim.publish(Envelope::from_meta(class, "Biblio", EventSeq(seq), data));
                published.push((i, EventSeq(seq)));
                seq += 1;
            }
            sim.run_for(SimDuration::from_ticks(2 * TTL));
        }

        // Zero loss, exactly once: every published event reached exactly
        // its subscriber, no duplicates recorded anywhere.
        for &(i, s) in &published {
            let count = sim.deliveries(subs[i]).iter().filter(|&&d| d == s).count();
            prop_assert_eq!(
                count,
                1,
                "event {:?} for sub {} delivered {} times (drop={}, dup={})",
                s,
                i,
                count,
                drop_p,
                dup_p
            );
        }
        let total: usize = subs.iter().map(|&h| sim.deliveries(h).len()).sum();
        prop_assert_eq!(total, published.len(), "no spurious deliveries");
    }
    Ok(())
}
