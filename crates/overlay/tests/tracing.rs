//! Observability suite: sampled per-event traces through the overlay —
//! hop provenance, verdicts, latency/weakening aggregation, `explain()`
//! reports, and byte-identical JSONL logs under identical seeds and
//! fault plans.

use std::sync::Arc;

use layercake_event::{event_data, Advertisement, ClassId, Envelope, EventSeq, TypeRegistry};
use layercake_filter::Filter;
use layercake_overlay::{OverlayConfig, OverlaySim, SubscriberHandle};
use layercake_sim::{FaultPlan, SimDuration};
use layercake_trace::HopVerdict;
use layercake_workload::BiblioWorkload;

const TTL: u64 = 200;

struct Rig {
    sim: OverlaySim,
    class: ClassId,
    subs: Vec<SubscriberHandle>,
    next_seq: u64,
}

/// A `[4, 2, 1]` biblio overlay with `n` subscribers pinning all four
/// attributes, so a wrong `title` is an exact injected false positive:
/// every covering stage sees only `year`/`conference`/`author` prefixes.
fn build(n: usize, trace_sample_every: u64, reliability: bool, seed: u64) -> Rig {
    let mut registry = TypeRegistry::new();
    let class = BiblioWorkload::register(&mut registry);
    let mut sim = OverlaySim::new(
        OverlayConfig {
            levels: vec![4, 2, 1],
            reliability_enabled: reliability,
            ttl: SimDuration::from_ticks(TTL),
            seed,
            trace_sample_every,
            ..OverlayConfig::default()
        },
        Arc::new(registry),
    );
    sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
    sim.settle();
    let mut subs = Vec::new();
    for i in 0..n {
        let h = sim
            .add_subscriber(
                Filter::for_class(class)
                    .eq("year", 2000 + (i % 2) as i64)
                    .eq("conference", format!("c{}", i % 2))
                    .eq("author", format!("a{i}"))
                    .eq("title", format!("t{i}")),
            )
            .expect("valid subscription");
        subs.push(h);
    }
    sim.settle();
    Rig {
        sim,
        class,
        subs,
        next_seq: 0,
    }
}

impl Rig {
    fn publish(&mut self, year: i64, conf: &str, author: &str, title: &str) -> EventSeq {
        let seq = EventSeq(self.next_seq);
        self.next_seq += 1;
        let data = event_data! {
            "year" => year,
            "conference" => conf.to_owned(),
            "author" => author.to_owned(),
            "title" => title.to_owned(),
        };
        self.sim
            .publish(Envelope::from_meta(self.class, "Biblio", seq, data));
        seq
    }

    /// Exact match for subscriber `i`.
    fn publish_hit(&mut self, i: usize) -> EventSeq {
        let (year, conf) = (2000 + (i % 2) as i64, format!("c{}", i % 2));
        self.publish(year, &conf, &format!("a{i}"), &format!("t{i}"))
    }

    /// Wrong title: passes every covering stage, dies at stage 0.
    fn publish_near_miss(&mut self, i: usize) -> EventSeq {
        let (year, conf) = (2000 + (i % 2) as i64, format!("c{}", i % 2));
        self.publish(year, &conf, &format!("a{i}"), "no-such-title")
    }
}

#[test]
fn delivered_event_leaves_full_hop_trail() {
    let mut rig = build(4, 1, false, 7);
    rig.sim.set_store_envelopes(rig.subs[0], true);
    let seq = rig.publish_hit(0);
    rig.sim.run_for(SimDuration::from_ticks(50));

    assert!(rig.sim.deliveries(rig.subs[0]).contains(&seq));
    let traces = rig.sim.traces();
    assert_eq!(traces.len(), 1);
    let t = &traces[0];
    assert_eq!(t.seq, seq.0);
    assert!(t.delivered());
    // Root (stage 3) down to the subscriber (stage 0), one hop per stage.
    let stages: Vec<usize> = t.hops.iter().map(|h| h.stage).collect();
    assert!(stages.contains(&3) && stages.contains(&0));
    assert!(t
        .hops
        .iter()
        .any(|h| h.verdict == HopVerdict::Delivered && h.stage == 0));
    assert!(t.e2e_latency().is_some());
    // The delivered envelope still carries the sampled context.
    for env in rig.sim.take_inbox(rig.subs[0]) {
        assert_eq!(env.trace().map(|tc| tc.id), Some(t.id));
    }
}

#[test]
fn explain_attributes_injected_false_positive_to_weakening_stage() {
    let mut rig = build(4, 1, false, 7);
    let seq = rig.publish_near_miss(0);
    rig.sim.run_for(SimDuration::from_ticks(50));

    assert!(!rig.sim.deliveries(rig.subs[0]).contains(&seq));
    let traces = rig.sim.traces();
    let t = traces.iter().find(|t| t.seq == seq.0).expect("traced");
    assert!(!t.false_positive_hops().is_empty());

    let report = rig
        .sim
        .explain(t.id, rig.subs[0])
        .expect("trace exists and tracing is on");
    assert!(report.contains("false positive"), "report: {report}");
    assert!(
        report.contains("the weakening applied at stage 1 let it through"),
        "report: {report}"
    );
    assert!(
        report.contains("REJECTED by the original subscription"),
        "report: {report}"
    );
}

#[test]
fn explain_reports_clean_delivery() {
    let mut rig = build(4, 1, false, 7);
    let seq = rig.publish_hit(1);
    rig.sim.run_for(SimDuration::from_ticks(50));

    let traces = rig.sim.traces();
    let t = traces.iter().find(|t| t.seq == seq.0).expect("traced");
    let report = rig.sim.explain(t.id, rig.subs[1]).expect("explainable");
    assert!(report.contains("delivered"), "report: {report}");
    assert!(!report.contains("false positive"), "report: {report}");
}

#[test]
fn weakening_summary_counts_injected_false_positives() {
    let mut rig = build(4, 1, false, 7);
    for round in 0..8 {
        let i = round % 4;
        rig.publish_hit(i);
        rig.publish_near_miss(i);
        rig.sim.run_for(SimDuration::from_ticks(10));
    }
    rig.sim.run_for(SimDuration::from_ticks(100));

    let m = rig.sim.metrics();
    assert_eq!(m.latency.traced, 16);
    let stage = |k: usize| {
        m.weakening
            .iter()
            .find(|w| w.stage == k)
            .expect("stage row")
    };
    // Every near miss is rejected by the original filter at stage 0 and
    // was admitted by exactly one stage-1 covering filter.
    assert_eq!(stage(0).false_positives, 8);
    assert_eq!(stage(1).false_positives, 8);
    assert_eq!(stage(0).matched, 8);
    // Latency histograms cover the hits end to end.
    assert_eq!(m.latency.e2e.count(), 8);
    assert!(m.latency.e2e.p50() <= m.latency.e2e.p99());
    assert!(m
        .latency
        .hop_by_stage
        .iter()
        .any(|s| s.stage == 1 && !s.hist.is_empty()));
}

#[test]
fn sampling_traces_one_in_n_deterministically() {
    let mut rig = build(2, 3, false, 7);
    for _ in 0..9 {
        rig.publish_hit(0);
    }
    rig.sim.run_for(SimDuration::from_ticks(100));

    let sink = rig.sim.trace_sink().expect("tracing on");
    assert_eq!(sink.published_count(), 9);
    // Publishes 0, 3, 6 fall on the sampling grid.
    assert_eq!(sink.traced_count(), 3);
    assert_eq!(rig.sim.metrics().latency.traced, 3);
}

#[test]
fn sampling_off_leaves_envelopes_untraced_and_metrics_empty() {
    let mut rig = build(2, 0, false, 7);
    rig.sim.set_store_envelopes(rig.subs[0], true);
    let seq = rig.publish_hit(0);
    rig.sim.run_for(SimDuration::from_ticks(50));

    assert!(rig.sim.deliveries(rig.subs[0]).contains(&seq));
    assert!(rig.sim.trace_sink().is_none());
    assert!(rig.sim.trace_jsonl().is_none());
    assert!(rig.sim.traces().is_empty());
    let m = rig.sim.metrics();
    assert_eq!(m.latency.traced, 0);
    assert!(m.latency.e2e.is_empty());
    assert!(m.weakening.is_empty());
    // The delivered payload never carried a context.
    let inbox = rig.sim.take_inbox(rig.subs[0]);
    assert!(!inbox.is_empty());
    for env in inbox {
        assert!(env.trace().is_none());
    }
}

/// Satellite: identical seeds + fault plans ⇒ byte-identical JSONL logs,
/// even with drops, duplicates, jitter, and reliability repair in play.
#[test]
fn jsonl_log_is_byte_identical_across_identical_chaotic_runs() {
    let run = || {
        let mut rig = build(4, 2, true, 42);
        rig.sim.set_fault_seed(0xFA0173);
        rig.sim.set_default_fault_plan(Some(FaultPlan {
            drop_probability: 0.10,
            dup_probability: 0.05,
            max_jitter: SimDuration::from_ticks(3),
        }));
        for round in 0..10 {
            let i = round % 4;
            rig.publish_hit(i);
            rig.publish_near_miss(i);
            rig.sim.run_for(SimDuration::from_ticks(8));
        }
        rig.sim.run_for(SimDuration::from_ticks(4 * TTL));
        rig.sim.trace_jsonl().expect("tracing on")
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(
        a, b,
        "same seed + fault plan must reproduce the trace log byte-for-byte"
    );
}

/// A different fault seed must actually change what the traces record —
/// otherwise the determinism test above would be vacuous.
#[test]
fn different_fault_seed_changes_the_trace_log() {
    let run = |fault_seed: u64| {
        let mut rig = build(4, 1, true, 42);
        rig.sim.set_fault_seed(fault_seed);
        rig.sim.set_default_fault_plan(Some(FaultPlan {
            drop_probability: 0.25,
            dup_probability: 0.10,
            max_jitter: SimDuration::from_ticks(4),
        }));
        for round in 0..10 {
            rig.publish_hit(round % 4);
            rig.sim.run_for(SimDuration::from_ticks(8));
        }
        rig.sim.run_for(SimDuration::from_ticks(4 * TTL));
        rig.sim.trace_jsonl().expect("tracing on")
    };
    assert_ne!(run(1), run(2));
}
