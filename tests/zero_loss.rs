//! The end-to-end correctness invariant of multi-stage filtering: for every
//! subscriber, the set of delivered events equals the set of events
//! matching its *original* subscription — pre-filtering loses nothing and
//! delivers nothing spurious ("nodes taken together perform complete
//! filtering of events according to the interests of subscribers",
//! Section 6).

use std::sync::Arc;

use layercake::event::Advertisement;
use layercake::overlay::{OverlayConfig, OverlaySim};
use layercake::workload::{BiblioConfig, BiblioWorkload};
use layercake::{EventSeq, Filter, IndexKind, PlacementPolicy, TypeRegistry};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs a random bibliographic workload over a given topology/policy
/// combination and checks delivered == oracle for every subscriber.
#[allow(clippy::too_many_arguments)]
fn check_zero_loss(
    levels: Vec<usize>,
    placement: PlacementPolicy,
    index: IndexKind,
    wildcard_rate: f64,
    subs: usize,
    events: u64,
    seed: u64,
    covering_collapse: bool,
) -> Result<(), TestCaseError> {
    let mut registry = TypeRegistry::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let workload = BiblioWorkload::new(
        BiblioConfig {
            subscriptions: subs,
            wildcard_rate,
            conferences: 5,
            authors: 20,
            titles: 50,
            ..BiblioConfig::default()
        },
        &mut registry,
        &mut rng,
    );
    let class = workload.class();
    let registry = Arc::new(registry);
    let mut sim = OverlaySim::new(
        OverlayConfig {
            levels,
            placement,
            index,
            seed,
            covering_collapse,
            ..OverlayConfig::default()
        },
        Arc::clone(&registry),
    );
    sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
    sim.settle();

    let mut handles = Vec::new();
    for f in workload.subscriptions() {
        handles.push(sim.add_subscriber(f.clone()).expect("valid filter"));
        sim.settle();
    }

    let stream: Vec<_> = (0..events)
        .map(|seq| workload.envelope(seq, &mut rng))
        .collect();
    for env in &stream {
        sim.publish(env.clone());
    }
    sim.settle();

    for (h, f) in handles.iter().zip(workload.subscriptions()) {
        let oracle: Vec<EventSeq> = stream
            .iter()
            .filter(|env| f.matches_envelope(env, &registry))
            .map(|env| env.seq())
            .collect();
        let delivered = sim.deliveries(*h);
        prop_assert_eq!(
            delivered,
            oracle.as_slice(),
            "subscriber {} mismatch for filter {}",
            sim.subscriber(*h).filter(),
            f
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Zero loss / zero spurious delivery across random topologies,
    /// placement policies, index kinds and wildcard rates.
    #[test]
    fn delivery_equals_oracle(
        levels_ix in 0usize..4,
        placement_random in any::<bool>(),
        counting in any::<bool>(),
        wildcard_rate in prop_oneof![Just(0.0), Just(0.3), Just(1.0)],
        subs in 1usize..30,
        events in 20u64..120,
        seed in 0u64..1_000,
        collapse in any::<bool>(),
    ) {
        let levels = match levels_ix {
            0 => vec![1],
            1 => vec![4, 1],
            2 => vec![8, 2, 1],
            _ => vec![8, 4, 2, 1],
        };
        let placement = if placement_random { PlacementPolicy::Random } else { PlacementPolicy::Similarity };
        let index = if counting { IndexKind::Counting } else { IndexKind::Naive };
        check_zero_loss(levels, placement, index, wildcard_rate, subs, events, seed, collapse)?;
    }
}

/// The same invariant at the paper's own scale, as a single deterministic
/// regression case.
#[test]
fn paper_scale_delivery_equals_oracle() {
    check_zero_loss(
        vec![20, 4, 1],
        PlacementPolicy::Similarity,
        IndexKind::Counting,
        0.1,
        80,
        2_000,
        2002,
        false,
    )
    .expect("paper-scale zero-loss check");
}

/// The same invariant with covering collapse enabled everywhere.
#[test]
fn paper_scale_zero_loss_with_collapse() {
    check_zero_loss(
        vec![20, 4, 1],
        PlacementPolicy::Similarity,
        IndexKind::Counting,
        0.2,
        60,
        1_500,
        7,
        true,
    )
    .expect("collapse zero-loss check");
}

/// Identical subscriptions from many subscribers all receive the stream.
#[test]
fn duplicate_subscriptions_fan_out() {
    let mut registry = TypeRegistry::new();
    let class = BiblioWorkload::register(&mut registry);
    let registry = Arc::new(registry);
    let mut sim = OverlaySim::new(
        OverlayConfig {
            levels: vec![6, 2, 1],
            ..OverlayConfig::default()
        },
        Arc::clone(&registry),
    );
    sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
    sim.settle();

    let filter = Filter::for_class(class)
        .eq("year", 2000)
        .eq("author", "dup");
    let handles: Vec<_> = (0..10)
        .map(|_| {
            let h = sim.add_subscriber(filter.clone()).unwrap();
            sim.settle();
            h
        })
        .collect();

    let e = layercake::event::event_data! {
        "year" => 2000, "conference" => "c", "author" => "dup", "title" => "t"
    };
    sim.publish(layercake::Envelope::from_meta(
        class,
        "Biblio",
        EventSeq(0),
        e,
    ));
    sim.settle();
    for h in handles {
        assert_eq!(sim.deliveries(h), &[EventSeq(0)]);
    }
}
