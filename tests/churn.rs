//! Subscription churn: interleaved subscribe / explicit-unsubscribe /
//! publish sequences, checked against an interval oracle — every
//! subscriber receives exactly the matching events published while its
//! subscription was active.

use std::sync::Arc;

use layercake::event::{event_data, Advertisement};
use layercake::overlay::{OverlayConfig, OverlaySim, SubscriberHandle};
use layercake::workload::{BiblioConfig, BiblioWorkload};
use layercake::{Envelope, EventSeq, Filter, TypeRegistry};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, Clone)]
enum Op {
    Subscribe(usize), // index into the subscription pool
    Unsubscribe(usize),
    Publish,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..6).prop_map(Op::Subscribe),
            (0usize..6).prop_map(Op::Unsubscribe),
            Just(Op::Publish),
            Just(Op::Publish), // bias towards traffic
        ],
        4..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn churn_matches_interval_oracle(ops in arb_ops(), seed in 0u64..500) {
        let mut registry = TypeRegistry::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let workload = BiblioWorkload::new(
            BiblioConfig {
                subscriptions: 6,
                conferences: 3,
                authors: 6,
                titles: 10,
                match_bias: 0.8,
                title_scramble: 0.2,
                ..BiblioConfig::default()
            },
            &mut registry,
            &mut rng,
        );
        let class = workload.class();
        let registry = Arc::new(registry);
        let mut sim = OverlaySim::new(
            OverlayConfig {
                levels: vec![4, 2, 1],
                seed,
                ..OverlayConfig::default()
            },
            Arc::clone(&registry),
        );
        sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
        sim.settle();

        // Pool slot → currently live handle (if any); every live handle
        // accumulates its expected deliveries.
        let mut live: Vec<Option<SubscriberHandle>> = vec![None; 6];
        let mut expected: std::collections::HashMap<SubscriberHandle, Vec<EventSeq>> =
            std::collections::HashMap::new();
        let mut filters: Vec<Option<Filter>> = vec![None; 6];
        let mut seq = 0u64;

        for op in ops {
            match op {
                Op::Subscribe(slot) => {
                    if live[slot].is_none() {
                        let f = workload.subscriptions()[slot].clone();
                        let h = sim.add_subscriber(f.clone()).unwrap();
                        sim.settle();
                        live[slot] = Some(h);
                        filters[slot] = Some(f);
                        expected.insert(h, Vec::new());
                    }
                }
                Op::Unsubscribe(slot) => {
                    if let Some(h) = live[slot].take() {
                        assert!(sim.unsubscribe_now(h));
                        sim.settle();
                        filters[slot] = None;
                    }
                }
                Op::Publish => {
                    let env = workload.envelope(seq, &mut rng);
                    seq += 1;
                    for slot in 0..6 {
                        if let (Some(h), Some(f)) = (live[slot], &filters[slot]) {
                            if f.matches_envelope(&env, &registry) {
                                expected.get_mut(&h).unwrap().push(env.seq());
                            }
                        }
                    }
                    sim.publish(env);
                    sim.settle();
                }
            }
        }

        for (h, want) in &expected {
            prop_assert_eq!(
                sim.deliveries(*h),
                want.as_slice(),
                "churned subscriber received the wrong event set"
            );
        }
    }
}

/// Deterministic regression: subscribe → publish → unsubscribe → publish →
/// resubscribe → publish; the subscriber sees exactly the events from its
/// active intervals.
#[test]
fn resubscription_intervals() {
    let mut registry = TypeRegistry::new();
    let class = BiblioWorkload::register(&mut registry);
    let registry = Arc::new(registry);
    let mut sim = OverlaySim::new(
        OverlayConfig {
            levels: vec![4, 1],
            ..OverlayConfig::default()
        },
        Arc::clone(&registry),
    );
    sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
    sim.settle();

    let filter = Filter::for_class(class).eq("year", 2000).eq("author", "me");
    let publish = |sim: &mut OverlaySim, seq: u64| {
        let e =
            event_data! { "year" => 2000, "conference" => "c", "author" => "me", "title" => "t" };
        sim.publish(Envelope::from_meta(class, "Biblio", EventSeq(seq), e));
        sim.settle();
    };

    let first = sim.add_subscriber(filter.clone()).unwrap();
    sim.settle();
    publish(&mut sim, 0);
    assert!(sim.unsubscribe_now(first));
    sim.settle();
    publish(&mut sim, 1); // missed: nobody subscribed
    let second = sim.add_subscriber(filter).unwrap();
    sim.settle();
    publish(&mut sim, 2);

    assert_eq!(sim.deliveries(first), &[EventSeq(0)]);
    assert_eq!(sim.deliveries(second), &[EventSeq(2)]);
}

/// Node churn: a broker goes dark ([`OverlaySim::isolate`]) and comes back
/// ([`OverlaySim::heal_node`]). With per-link reliability the events
/// published while it was dark are retransmitted after heal — node churn
/// costs latency, not deliveries.
#[test]
fn isolated_broker_heals_without_losing_events() {
    use layercake::sim::SimDuration;

    let mut registry = TypeRegistry::new();
    let class = BiblioWorkload::register(&mut registry);
    let registry = Arc::new(registry);
    let mut sim = OverlaySim::new(
        OverlayConfig {
            levels: vec![4, 1],
            reliability_enabled: true,
            ..OverlayConfig::default()
        },
        Arc::clone(&registry),
    );
    sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
    sim.settle();

    let filter = Filter::for_class(class).eq("year", 2000).eq("author", "me");
    let sub = sim.add_subscriber(filter).unwrap();
    sim.settle();
    let host = sim.subscriber(sub).host().expect("placed");
    let publish = |sim: &mut OverlaySim, seq: u64| {
        let e =
            event_data! { "year" => 2000, "conference" => "c", "author" => "me", "title" => "t" };
        sim.publish(Envelope::from_meta(class, "Biblio", EventSeq(seq), e));
        sim.run_for(SimDuration::from_ticks(32));
    };

    publish(&mut sim, 0);
    sim.isolate(host);
    publish(&mut sim, 1); // dropped on the blocked link, buffered upstream
    assert_eq!(sim.deliveries(sub), &[EventSeq(0)]);
    sim.heal_node(host);
    publish(&mut sim, 2); // exposes the gap; 1 is NACKed and retransmitted

    assert_eq!(
        sim.deliveries(sub),
        &[EventSeq(0), EventSeq(1), EventSeq(2)]
    );
    assert!(sim.metrics().chaos.retransmitted > 0);
}
