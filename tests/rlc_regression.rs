//! Regression lock on the paper's headline evaluation shape (Section 5.3):
//! a scaled-down E1 run inside `cargo test`, asserting the structural
//! properties the reproduction stands on. If a change to placement,
//! weakening or forwarding breaks the load distribution, this fails before
//! any benchmark is run.

use std::sync::Arc;

use layercake::event::Advertisement;
use layercake::overlay::{OverlayConfig, OverlaySim};
use layercake::workload::{BiblioConfig, BiblioWorkload};
use layercake::TypeRegistry;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run() -> layercake::RunMetrics {
    let mut registry = TypeRegistry::new();
    let mut rng = StdRng::seed_from_u64(2002);
    let workload = BiblioWorkload::new(
        BiblioConfig {
            subscriptions: 60,
            ..BiblioConfig::default()
        },
        &mut registry,
        &mut rng,
    );
    let class = workload.class();
    let mut sim = OverlaySim::new(
        OverlayConfig {
            levels: vec![20, 4, 1],
            ..OverlayConfig::default()
        },
        Arc::new(registry),
    );
    sim.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
    sim.settle();
    for f in workload.subscriptions() {
        sim.add_subscriber(f.clone()).expect("valid subscription");
        sim.settle();
    }
    for seq in 0..4_000 {
        sim.publish(workload.envelope(seq, &mut rng));
    }
    sim.settle();
    sim.metrics()
}

#[test]
fn rlc_shape_matches_the_paper() {
    let m = run();
    let summary = m.stage_summary();
    let by_stage = |s: usize| {
        summary
            .iter()
            .find(|x| x.stage == s)
            .expect("stage present")
    };

    // 1. Every node far below the centralized server's RLC of 1.
    for s in &summary {
        assert!(
            s.avg_rlc < 0.5,
            "stage {} avg RLC {} approaches centralized load",
            s.stage,
            s.avg_rlc
        );
    }
    // 2. Per-node load decreases towards the subscribers.
    assert!(by_stage(0).avg_rlc < by_stage(1).avg_rlc);
    assert!(by_stage(1).avg_rlc < by_stage(2).avg_rlc);
    // 3. The root's RLC is structural: its table holds the distinct
    //    year-filters, so RLC(root) = distinct_years / total_subs.
    let root = m
        .records
        .iter()
        .find(|r| r.node == "N3.1")
        .expect("root record");
    assert_eq!(root.received, m.total_events, "the root sees every event");
    let expected = root.filters as f64 / m.total_subs as f64;
    assert!(
        (root.rlc(m.total_events, m.total_subs) - expected).abs() < 1e-9,
        "root RLC must equal filters/subscriptions"
    );
    assert!(
        root.filters <= 3,
        "three publication years collapse to ≤3 root filters"
    );
    // 4. No more total work than one centralized server.
    assert!(m.global_rlc_total() < 1.0);
}

#[test]
fn matching_rate_shape_matches_figure_7() {
    let m = run();
    let sub_mr = m.avg_mr_at(0);
    assert!(
        (0.80..=0.95).contains(&sub_mr),
        "subscriber MR {sub_mr} should sit near the paper's 0.87"
    );
    for stage in [1usize, 2] {
        let mr = m.avg_mr_at(stage);
        assert!(
            mr > 0.6,
            "level-{stage} active nodes should mostly receive relevant events (MR {mr})"
        );
    }
    // Pre-filtering keeps a large share of stage-1 nodes entirely idle.
    let s1 = m
        .stage_summary()
        .into_iter()
        .find(|s| s.stage == 1)
        .expect("stage 1");
    assert!(
        s1.active_nodes < s1.nodes,
        "similarity placement should leave some stage-1 nodes without traffic"
    );
}
