//! Cross-implementation consistency: the hierarchical overlay (the paper's
//! configuration) and the peer mesh (footnote 1) must deliver *identical*
//! event sets for the same subscriptions and the same stream — the routing
//! substrate must never change delivery semantics.

use std::sync::Arc;

use layercake::event::Advertisement;
use layercake::overlay::mesh::{MeshConfig, MeshSim};
use layercake::overlay::{OverlayConfig, OverlaySim};
use layercake::workload::{BiblioConfig, BiblioWorkload};
use layercake::{Envelope, EventSeq, TypeRegistry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn mesh_and_hierarchy_deliver_identically() {
    let mut registry = TypeRegistry::new();
    let mut rng = StdRng::seed_from_u64(77);
    let workload = BiblioWorkload::new(
        BiblioConfig {
            subscriptions: 40,
            conferences: 6,
            authors: 30,
            titles: 60,
            wildcard_rate: 0.15,
            ..BiblioConfig::default()
        },
        &mut registry,
        &mut rng,
    );
    let class = workload.class();
    let registry = Arc::new(registry);
    let stream: Vec<Envelope> = (0..1_500).map(|s| workload.envelope(s, &mut rng)).collect();

    // Hierarchy run.
    let mut hier = OverlaySim::new(
        OverlayConfig {
            levels: vec![8, 2, 1],
            ..OverlayConfig::default()
        },
        Arc::clone(&registry),
    );
    hier.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
    hier.settle();
    let hier_handles: Vec<_> = workload
        .subscriptions()
        .iter()
        .map(|f| {
            let h = hier.add_subscriber(f.clone()).unwrap();
            hier.settle();
            h
        })
        .collect();
    for e in &stream {
        hier.publish(e.clone());
    }
    hier.settle();

    // Mesh run: same subscriptions at random attachment points.
    let mut mesh = MeshSim::new(MeshConfig::star(11), Arc::clone(&registry));
    mesh.advertise(Advertisement::new(class, BiblioWorkload::stage_map()));
    mesh.settle();
    let mut attach_rng = StdRng::seed_from_u64(5);
    let mesh_handles: Vec<_> = workload
        .subscriptions()
        .iter()
        .map(|f| {
            let at = attach_rng.gen_range(0..11);
            let h = mesh.add_subscriber_at(at, f.clone()).unwrap();
            mesh.settle();
            h
        })
        .collect();
    for e in &stream {
        let at = attach_rng.gen_range(0..11);
        mesh.publish_at(at, e.clone());
    }
    mesh.settle();

    let mut total = 0usize;
    for (hh, mh) in hier_handles.iter().zip(&mesh_handles) {
        let hier_set: Vec<EventSeq> = hier.deliveries(*hh).to_vec();
        let mut mesh_set: Vec<EventSeq> = mesh.deliveries(*mh).to_vec();
        mesh_set.sort();
        assert_eq!(hier_set, mesh_set, "substrates disagree on a subscription");
        total += hier_set.len();
    }
    assert!(total > 0, "the workload should produce deliveries");
}
