//! Every worked example from the paper, verified end to end.
//!
//! Example/section numbers refer to "Tradeoffs in Event Systems" (the
//! extended version of "Event Systems: How to Have Your Cake and Eat It
//! Too"), Eugster, Felber, Guerraoui, Handurukande, 2002.

use layercake::event::event_data;
use layercake::filter::{event_covers_for, merge_cover, standardize, weaken_to_stage};
use layercake::workload::auction::AuctionWorkload;
use layercake::workload::stock::{BuyFilter, Stock};
use layercake::{AttributeDecl, Filter, StageMap, TypeRegistry, TypedEvent, ValueKind};

fn stock_registry() -> (TypeRegistry, layercake::ClassId) {
    let mut r = TypeRegistry::new();
    let id = r
        .register(
            "Stock",
            None,
            vec![
                AttributeDecl::new("symbol", ValueKind::Str),
                AttributeDecl::new("price", ValueKind::Float),
                AttributeDecl::new("volume", ValueKind::Int),
            ],
        )
        .unwrap();
    (r, id)
}

/// Example 1: stock-quote events and the filter
/// `f = (symbol, "Foo", =) (price, 5.0, >)`.
#[test]
fn example_1_filter_matching() {
    let e1 = event_data! { "symbol" => "Foo", "price" => 10.0, "volume" => 32_300 };
    let e2 = event_data! { "symbol" => "Bar", "price" => 15.0, "volume" => 25_600 };
    let f = Filter::any().eq("symbol", "Foo").gt("price", 5.0);
    assert!(f.matches_meta(&e1), "f(e1) = true");
    assert!(!f.matches_meta(&e2), "f(e2) = false");
}

/// Example 2: the three filters covering `f`.
#[test]
fn example_2_filter_covering() {
    let (r, _) = stock_registry();
    let f = Filter::any().eq("symbol", "Foo").gt("price", 5.0);
    let f1 = Filter::any().eq("symbol", "Foo");
    let f2 = Filter::any().gt("price", 5.0);
    let f3 = Filter::any().eq("symbol", "Foo").ge("price", 4.5);
    for (name, weak) in [("f'", &f1), ("f''", &f2), ("f'''", &f3)] {
        assert!(weak.covers(&f, &r), "{name} ⊒ f");
    }
    // And the covering is strict in each case.
    for weak in [&f1, &f2, &f3] {
        assert!(!f.covers(weak, &r));
    }
}

/// Example 3 + the remark after it: `e1' = (symbol, Foo)(price, 10.0)`
/// covers `e1` for `f`, but NOT for the existence filter `(volume, ∃)`.
#[test]
fn example_3_event_covering_depends_on_filter() {
    let (r, stock) = stock_registry();
    let f = Filter::any().eq("symbol", "Foo").gt("price", 5.0);
    let e1 = event_data! { "symbol" => "Foo", "price" => 10.0, "volume" => 32_300 };
    let e1p = event_data! { "symbol" => "Foo", "price" => 10.0 };
    assert!(event_covers_for(&f, (stock, &e1p), (stock, &e1), &r));
    let f_exists = Filter::any().exists("volume");
    assert!(!event_covers_for(
        &f_exists,
        (stock, &e1p),
        (stock, &e1),
        &r
    ));
}

/// The `f_T` / `f_F` remarks after Definition 2: the always-true filter
/// covers all filters.
#[test]
fn match_all_filter_covers_everything() {
    let (r, stock) = stock_registry();
    let ft = Filter::any();
    for f in [
        Filter::for_class(stock).eq("symbol", "Foo"),
        Filter::any().gt("price", 1.0).exists("volume"),
        Filter::any(),
    ] {
        assert!(ft.covers(&f, &r));
    }
}

/// Section 3.4: the Stock class and the meta-data the system infers from
/// it — `d1 = (class, Stock)(symbol, Foo)(price, 9.0)`.
#[test]
fn section_3_4_metadata_inference() {
    let d = Stock::new("Foo".to_owned(), 9.0);
    let d1 = d.extract();
    assert_eq!(d1.to_string(), "(symbol, \"Foo\") (price, 9)");
    assert_eq!(Stock::CLASS_NAME, "Stock");
}

/// Section 3.4: the filter weakening chain f/g → f1/g1 → g2 → g3, with the
/// coverings the paper derives, including the collapse `g1 ⊒ f1`.
#[test]
fn section_3_4_weakening_chain() {
    let mut r = TypeRegistry::new();
    let stock = r
        .register(
            "Stock",
            None,
            vec![
                AttributeDecl::new("symbol", ValueKind::Str),
                AttributeDecl::new("price", ValueKind::Float),
            ],
        )
        .unwrap();

    // f = BuyFilter("Foo", 10.0, 0.95), g = BuyFilter("Foo", 11.0, 0.97).
    let f = BuyFilter::new("Foo", 10.0, 0.95);
    let g = BuyFilter::new("Foo", 11.0, 0.97);
    let f1 = f.declarative(stock);
    let g1 = g.declarative(stock);
    assert_eq!(
        f1,
        Filter::for_class(stock)
            .eq("symbol", "Foo")
            .lt("price", 10.0)
    );
    // g1 ⊒ f1: on the common path only g1 needs to be kept.
    assert!(g1.covers(&f1, &r));
    assert!(!f1.covers(&g1, &r));

    // d1 covers d for both weakened filters (trivially: d1 = extract(d)).
    // g2 = (class Stock)(symbol Foo): weaken g1 by dropping price.
    let class = r.class(stock).unwrap();
    let gmap = StageMap::from_prefixes(&[2, 1]).unwrap();
    let g2 = weaken_to_stage(&g1, class, &gmap, 1);
    assert_eq!(g2, Filter::for_class(stock).eq("symbol", "Foo"));
    assert!(g2.covers(&g1, &r));

    // g3 = (class Stock): type-only filtering, "topic-based addressing is a
    // degenerated form of content-based addressing". An empty stage set in
    // the map strips every attribute constraint.
    let gmap_type_only = StageMap::new(vec![vec![0, 1], vec![0], vec![]]).unwrap();
    let g3 = weaken_to_stage(&g2, class, &gmap_type_only, 2);
    assert_eq!(g3, Filter::for_class(stock));
    assert!(g3.covers(&g2, &r));
    assert!(g3.covers(&f1, &r)); // transitive down the chain

    // The stateful halves behave as the paper walks through.
    let mut f = BuyFilter::new("Foo", 10.0, 0.95);
    let d = Stock::new("Foo".to_owned(), 9.0);
    assert!(!f.matches(&d)); // last = 0 → no match, but primes the state
    assert!(f.matches(&Stock::new("Foo".to_owned(), 8.0)));
}

/// Example 5: the four subscriber filters weakened across the 4-stage
/// hierarchy (g/h/i families) with coverings at every step.
#[test]
fn example_5_stage_families() {
    let mut r = TypeRegistry::new();
    let stock = r
        .register(
            "Stock",
            None,
            vec![
                AttributeDecl::new("symbol", ValueKind::Str),
                AttributeDecl::new("price", ValueKind::Float),
            ],
        )
        .unwrap();
    let auction = r
        .register(
            "Auction",
            None,
            vec![
                AttributeDecl::new("product", ValueKind::Str),
                AttributeDecl::new("kind", ValueKind::Str),
                AttributeDecl::new("capacity", ValueKind::Int),
                AttributeDecl::new("price", ValueKind::Float),
            ],
        )
        .unwrap();

    let f1 = Filter::for_class(stock)
        .eq("symbol", "DEF")
        .lt("price", 10.0);
    let f2 = Filter::for_class(stock)
        .eq("symbol", "DEF")
        .lt("price", 11.0);
    let f3 = Filter::for_class(stock)
        .eq("symbol", "GHI")
        .lt("price", 8.0);
    let f4 = Filter::for_class(auction)
        .eq("product", "Vehicle")
        .eq("kind", "Car")
        .lt("capacity", 2_000)
        .lt("price", 10_000.0);

    // Stage 1: f1 and f2 merge into g1 = (Stock)(DEF)(price < 11).
    let g1 = merge_cover(&[&f1, &f2], &r);
    assert_eq!(
        g1,
        Filter::for_class(stock)
            .eq("symbol", "DEF")
            .lt("price", 11.0)
    );
    assert!(g1.covers(&f1, &r) && g1.covers(&f2, &r));
    let g2 = f3.clone();
    // Stage 1 keeps f4's first four attributes: g3 drops the price.
    let auction_class = r.class(auction).unwrap().clone();
    let g_auction = StageMap::from_prefixes(&[4, 3, 2, 1]).unwrap();
    let g3 = weaken_to_stage(&f4, &auction_class, &g_auction, 1);
    assert_eq!(g3.constraints().len(), 3);
    assert!(g3.covers(&f4, &r));

    // Stage 2: h families drop the price / capacity.
    let stock_class = r.class(stock).unwrap().clone();
    let g_stock = StageMap::from_prefixes(&[2, 2, 1, 0]).unwrap();
    let h1 = weaken_to_stage(&g1, &stock_class, &g_stock, 2);
    assert_eq!(h1, Filter::for_class(stock).eq("symbol", "DEF"));
    let h2 = weaken_to_stage(&g2, &stock_class, &g_stock, 2);
    assert_eq!(h2, Filter::for_class(stock).eq("symbol", "GHI"));
    let h3 = weaken_to_stage(&g3, &auction_class, &g_auction, 2);
    assert_eq!(h3.constraints().len(), 2);

    // Stage 3: i families filter on type only.
    let i1 = weaken_to_stage(&h1, &stock_class, &g_stock, 3);
    assert_eq!(i1, Filter::for_class(stock));
    let i2 = weaken_to_stage(&h3, &auction_class, &g_auction, 3);
    assert_eq!(i2.constraints().len(), 1); // product survives stage 3 of G_Auction
    assert!(i1.covers(&h1, &r) && i1.covers(&f1, &r) && i1.covers(&f2, &r));
    assert!(i2.covers(&f4, &r));
}

/// Example 6: `G_Auction` associates shrinking attribute prefixes with the
/// four stages.
#[test]
fn example_6_stage_map() {
    let g = StageMap::from_prefixes(&[5, 4, 3, 1]).unwrap();
    assert_eq!(
        g.to_string(),
        "{<Stage-0: 0 1 2 3 4>, <Stage-1: 0 1 2 3>, <Stage-2: 0 1 2>, <Stage-3: 0>}"
    );
    // "g3 is obtained from f4 by keeping only the first four attributes at
    // Stage-1" — with our 4-attribute schema (class carried separately).
    let mut r = TypeRegistry::new();
    let w = AuctionWorkload::new(&mut r);
    let class = r.class(w.class()).unwrap();
    let g = AuctionWorkload::stage_map();
    let g3 = weaken_to_stage(&w.paper_f4(), class, &g, 1);
    assert_eq!(
        g3,
        Filter::for_class(w.class())
            .eq("product", "Vehicle")
            .eq("kind", "Car")
            .lt("capacity", 2_000)
    );
}

/// Section 4.4: wildcard subscription filters — `fy` and `fz` are equal
/// after conversion to the standard subscription filter format, and `fx`
/// receives events irrespective of price.
#[test]
fn section_4_4_standard_format() {
    let mut r = TypeRegistry::new();
    let stock = r
        .register(
            "Stock",
            None,
            vec![
                AttributeDecl::new("symbol", ValueKind::Str),
                AttributeDecl::new("price", ValueKind::Float),
            ],
        )
        .unwrap();
    let class = r.class(stock).unwrap();

    let fy = Filter::for_class(stock)
        .wildcard("symbol")
        .lt("price", 100.0);
    let fz = Filter::for_class(stock).lt("price", 100.0);
    assert_eq!(
        standardize(&fy, class).unwrap(),
        standardize(&fz, class).unwrap()
    );

    let fx = Filter::for_class(stock).eq("symbol", "DEF");
    let std_fx = standardize(&fx, class).unwrap();
    for price in [1.0, 1_000.0] {
        let e = event_data! { "symbol" => "DEF", "price" => price };
        assert!(
            std_fx.matches(stock, &e, &r),
            "fx matches irrespective of price"
        );
    }
}

/// Section 5.2: the simulated filter formats at each stage of the
/// bibliographic hierarchy.
#[test]
fn section_5_2_biblio_stage_formats() {
    let mut r = TypeRegistry::new();
    let class_id = layercake::workload::BiblioWorkload::register(&mut r);
    let class = r.class(class_id).unwrap();
    let g = layercake::workload::BiblioWorkload::stage_map();
    let f = Filter::for_class(class_id)
        .eq("year", 2002)
        .eq("conference", "icdcs")
        .eq("author", "handurukande")
        .eq("title", "tradeoffs in event systems");
    let names = |f: &Filter| -> Vec<String> {
        f.constraints()
            .iter()
            .map(|c| c.name().to_owned())
            .collect()
    };
    assert_eq!(
        names(&weaken_to_stage(&f, class, &g, 1)),
        ["year", "conference", "author"]
    );
    assert_eq!(
        names(&weaken_to_stage(&f, class, &g, 2)),
        ["year", "conference"]
    );
    assert_eq!(names(&weaken_to_stage(&f, class, &g, 3)), ["year"]);
}
