//! Cross-crate integration tests exercising the typed API over the full
//! overlay: multiple event classes, subtype polymorphism, wildcard
//! anchoring, soft-state leases, and channel delivery.

use layercake::workload::auction::Auction;
use layercake::workload::stock::{Stock, VolumeStock};
use layercake::{typed_event, CoreError, EventSystem, PlacementPolicy, SimDuration};

fn system() -> EventSystem {
    let mut system = EventSystem::builder()
        .levels(&[8, 4, 1])
        .with_event::<Stock>()
        .expect("register Stock")
        .with_event::<VolumeStock>()
        .expect("register VolumeStock")
        .with_event::<Auction>()
        .expect("register Auction")
        .build();
    system.advertise::<Stock>(None).expect("advertise Stock");
    system
        .advertise::<VolumeStock>(None)
        .expect("advertise VolumeStock");
    system
        .advertise::<Auction>(None)
        .expect("advertise Auction");
    system
}

#[test]
fn multiple_classes_route_independently() {
    let mut sys = system();
    let stocks = sys.subscribe::<Stock>(|f| f.eq("symbol", "A")).unwrap();
    let auctions = sys
        .subscribe::<Auction>(|f| f.eq("product", "Vehicle"))
        .unwrap();

    sys.publish(&Stock::new("A".into(), 1.0)).unwrap();
    sys.publish(&Auction::new("Vehicle".into(), "Car".into(), 10, 5.0))
        .unwrap();
    sys.publish(&Auction::new("Property".into(), "Flat".into(), 3, 9.0))
        .unwrap();
    sys.settle();

    assert_eq!(sys.poll(&stocks).unwrap().len(), 1);
    let got = sys.poll(&auctions).unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].product(), "Vehicle");
}

#[test]
fn subtype_events_reach_supertype_subscribers_only_when_matching() {
    let mut sys = system();
    let all_stock = sys.subscribe::<Stock>(|f| f).unwrap();
    let pricey = sys.subscribe::<Stock>(|f| f.gt("price", 100.0)).unwrap();

    sys.publish(&VolumeStock::new("V".into(), 150.0, 9))
        .unwrap();
    sys.publish(&VolumeStock::new("V".into(), 50.0, 9)).unwrap();
    sys.publish(&Stock::new("S".into(), 200.0)).unwrap();
    sys.settle();

    assert_eq!(sys.poll(&all_stock).unwrap().len(), 3);
    let got = sys.poll(&pricey).unwrap();
    assert_eq!(got.len(), 2);
    assert!(got.iter().all(|s| *s.price() > 100.0));
}

#[test]
fn sibling_classes_do_not_leak() {
    typed_event! {
        pub struct Heartbeat: "Heartbeat" { node: String }
    }
    let mut sys = EventSystem::builder()
        .levels(&[4, 1])
        .with_event::<Stock>()
        .unwrap()
        .with_event::<Heartbeat>()
        .unwrap()
        .build();
    sys.advertise::<Stock>(None).unwrap();
    sys.advertise::<Heartbeat>(None).unwrap();
    let beats = sys.subscribe::<Heartbeat>(|f| f).unwrap();
    for i in 0..10 {
        sys.publish(&Stock::new(format!("S{i}"), 1.0)).unwrap();
    }
    sys.publish(&Heartbeat::new("n1".into())).unwrap();
    sys.settle();
    let got = sys.poll(&beats).unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].node(), "n1");
}

#[test]
fn wildcard_subscription_through_typed_api() {
    let mut sys = system();
    // No constraints at all: a type-only subscription.
    let everything = sys.subscribe::<Auction>(|f| f).unwrap();
    // Partially wildcarded (kind unspecified = hole in the schema prefix).
    let vehicles = sys
        .subscribe::<Auction>(|f| f.eq("product", "Vehicle").lt("price", 100.0))
        .unwrap();

    sys.publish(&Auction::new("Vehicle".into(), "Car".into(), 10, 50.0))
        .unwrap();
    sys.publish(&Auction::new("Vehicle".into(), "Truck".into(), 10, 500.0))
        .unwrap();
    sys.publish(&Auction::new("Property".into(), "Flat".into(), 1, 50.0))
        .unwrap();
    sys.settle();

    assert_eq!(sys.poll(&everything).unwrap().len(), 3);
    let got = sys.poll(&vehicles).unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].kind(), "Car");
}

#[test]
fn lease_based_unsubscription_via_typed_api() {
    let ttl = SimDuration::from_ticks(500);
    let mut sys = EventSystem::builder()
        .levels(&[4, 1])
        .leases(ttl)
        .with_event::<Stock>()
        .unwrap()
        .build();
    sys.advertise::<Stock>(None).unwrap();
    let keep = sys.subscribe::<Stock>(|f| f.eq("symbol", "K")).unwrap();
    let gone = sys.subscribe::<Stock>(|f| f.eq("symbol", "G")).unwrap();
    sys.settle();

    sys.unsubscribe(&gone);
    sys.run_for(SimDuration::from_ticks(500 * 8));

    sys.publish(&Stock::new("K".into(), 1.0)).unwrap();
    sys.publish(&Stock::new("G".into(), 1.0)).unwrap();
    sys.settle();
    assert_eq!(sys.poll(&keep).unwrap().len(), 1);
    assert!(sys.poll(&gone).unwrap().is_empty());
}

#[test]
fn explicit_unsubscription_via_typed_api() {
    let mut sys = system();
    let keep = sys.subscribe::<Stock>(|f| f.eq("symbol", "K")).unwrap();
    let gone = sys.subscribe::<Stock>(|f| f.eq("symbol", "G")).unwrap();
    assert!(sys.unsubscribe_now(&gone));
    sys.settle();
    sys.publish(&Stock::new("K".into(), 1.0)).unwrap();
    sys.publish(&Stock::new("G".into(), 1.0)).unwrap();
    sys.settle();
    assert_eq!(sys.poll(&keep).unwrap().len(), 1);
    assert!(sys.poll(&gone).unwrap().is_empty());
}

#[test]
fn durable_subscription_via_typed_api() {
    let mut sys = system();
    let durable = sys.subscribe::<Stock>(|f| f.eq("symbol", "D")).unwrap();
    assert!(sys.disconnect(&durable));
    sys.settle();
    for price in [1.0, 2.0, 3.0] {
        sys.publish(&Stock::new("D".into(), price)).unwrap();
    }
    sys.settle();
    assert!(sys.poll(&durable).unwrap().is_empty());
    assert!(sys.reconnect(&durable));
    sys.settle();
    let got = sys.poll(&durable).unwrap();
    assert_eq!(
        got.iter().map(|s| *s.price()).collect::<Vec<_>>(),
        vec![1.0, 2.0, 3.0],
        "catch-up preserves publication order"
    );
}

#[test]
fn channels_and_polls_coexist_on_different_subscriptions() {
    let mut sys = system();
    let polled = sys.subscribe::<Stock>(|f| f.eq("symbol", "P")).unwrap();
    let channeled = sys.subscribe::<Stock>(|f| f.eq("symbol", "C")).unwrap();
    let rx = sys.channel(&channeled);

    for sym in ["P", "C", "P", "X"] {
        sys.publish(&Stock::new(sym.into(), 1.0)).unwrap();
    }
    sys.settle();

    assert_eq!(sys.poll(&polled).unwrap().len(), 2);
    assert_eq!(rx.try_iter().count(), 1);
}

#[test]
fn random_placement_still_delivers_exactly() {
    let mut sys = EventSystem::builder()
        .levels(&[16, 4, 1])
        .placement(PlacementPolicy::Random)
        .seed(99)
        .with_event::<Stock>()
        .unwrap()
        .build();
    sys.advertise::<Stock>(None).unwrap();
    let subs: Vec<_> = (0..20)
        .map(|i| {
            sys.subscribe::<Stock>(move |f| f.eq("symbol", format!("S{i}")))
                .unwrap()
        })
        .collect();
    for round in 0..5 {
        for i in 0..20 {
            sys.publish(&Stock::new(format!("S{i}"), f64::from(round)))
                .unwrap();
        }
    }
    sys.settle();
    for sub in &subs {
        assert_eq!(sys.poll(sub).unwrap().len(), 5);
    }
}

#[test]
fn disjunctive_subscription_delivers_union_exactly_once() {
    use layercake::Filter;
    let mut sys = system();
    // Foo at any price OR anything under 1.0.
    let sub = sys
        .subscribe_any::<Stock>(vec![
            Filter::any().eq("symbol", "Foo"),
            Filter::any().lt("price", 1.0),
        ])
        .unwrap();
    sys.settle();
    sys.publish(&Stock::new("Foo".into(), 10.0)).unwrap(); // branch 1 only
    sys.publish(&Stock::new("Bar".into(), 0.5)).unwrap(); // branch 2 only
    sys.publish(&Stock::new("Foo".into(), 0.5)).unwrap(); // both branches
    sys.publish(&Stock::new("Bar".into(), 5.0)).unwrap(); // neither
    sys.settle();
    let got = sys.poll(&sub).unwrap();
    assert_eq!(got.len(), 3, "union, with the double-match delivered once");
}

#[test]
fn disjunction_across_subtypes() {
    use layercake::Filter;
    let mut sys = system();
    let volume_class = sys.class_of::<VolumeStock>().unwrap();
    // Cheap base-class quotes OR heavy-volume subtype quotes.
    let sub = sys
        .subscribe_any::<Stock>(vec![
            Filter::any().lt("price", 1.0),
            Filter::for_class(volume_class).gt("volume", 10_000),
        ])
        .unwrap();
    sys.settle();
    sys.publish(&Stock::new("A".into(), 0.5)).unwrap();
    sys.publish(&VolumeStock::new("B".into(), 50.0, 20_000))
        .unwrap();
    sys.publish(&VolumeStock::new("C".into(), 50.0, 10))
        .unwrap();
    sys.settle();
    assert_eq!(sys.poll(&sub).unwrap().len(), 2);
}

#[test]
fn disjunctive_unsubscription_removes_all_branches() {
    use layercake::Filter;
    let mut sys = system();
    let sub = sys
        .subscribe_any::<Stock>(vec![
            Filter::any().eq("symbol", "X"),
            Filter::any().eq("symbol", "Y"),
        ])
        .unwrap();
    sys.settle();
    assert!(sys.unsubscribe_now(&sub));
    sys.settle();
    sys.publish(&Stock::new("X".into(), 1.0)).unwrap();
    sys.publish(&Stock::new("Y".into(), 1.0)).unwrap();
    sys.settle();
    assert!(sys.poll(&sub).unwrap().is_empty());
}

#[test]
fn errors_surface_cleanly() {
    let mut sys = system();
    // Unknown attribute in the filter.
    let err = sys.subscribe::<Stock>(|f| f.eq("dividend", 1)).unwrap_err();
    assert!(matches!(err, CoreError::Filter(_)));
    // Kind mismatch.
    let err = sys.subscribe::<Stock>(|f| f.lt("symbol", 10)).unwrap_err();
    assert!(matches!(err, CoreError::Filter(_)));
}

#[test]
fn optional_attributes_and_exists_filters() {
    typed_event! {
        /// A trade whose volume may be unreported.
        pub struct Trade: "Trade" {
            symbol: String,
            price: f64,
            volume: Option<i64>,
        }
    }
    let mut sys = EventSystem::builder()
        .levels(&[4, 1])
        .with_event::<Trade>()
        .unwrap()
        .build();
    sys.advertise::<Trade>(None).unwrap();
    // Only trades that *report* a volume.
    let with_volume = sys.subscribe::<Trade>(|f| f.exists("volume")).unwrap();
    // Only heavy trades.
    let heavy = sys.subscribe::<Trade>(|f| f.gt("volume", 1_000)).unwrap();
    sys.settle();
    sys.publish(&Trade::new("A".into(), 1.0, Some(5_000)))
        .unwrap();
    sys.publish(&Trade::new("B".into(), 1.0, Some(10))).unwrap();
    sys.publish(&Trade::new("C".into(), 1.0, None)).unwrap();
    sys.settle();
    let reported = sys.poll(&with_volume).unwrap();
    assert_eq!(reported.len(), 2);
    assert!(reported.iter().all(|t| t.volume().is_some()));
    let big = sys.poll(&heavy).unwrap();
    assert_eq!(big.len(), 1);
    assert_eq!(big[0].symbol(), "A");
}

#[test]
fn deep_hierarchies_work() {
    let mut sys = EventSystem::builder()
        .levels(&[16, 8, 4, 2, 1])
        .with_event::<Stock>()
        .unwrap()
        .build();
    sys.advertise::<Stock>(None).unwrap();
    let sub = sys
        .subscribe::<Stock>(|f| f.eq("symbol", "DEEP").lt("price", 5.0))
        .unwrap();
    sys.publish(&Stock::new("DEEP".into(), 4.0)).unwrap();
    sys.publish(&Stock::new("DEEP".into(), 6.0)).unwrap();
    sys.publish(&Stock::new("SHALLOW".into(), 4.0)).unwrap();
    sys.settle();
    assert_eq!(sys.poll(&sub).unwrap().len(), 1);
}

#[test]
fn single_broker_degenerate_topology() {
    let mut sys = EventSystem::builder()
        .levels(&[1])
        .with_event::<Stock>()
        .unwrap()
        .build();
    sys.advertise::<Stock>(None).unwrap();
    let sub = sys.subscribe::<Stock>(|f| f.eq("symbol", "X")).unwrap();
    sys.publish(&Stock::new("X".into(), 1.0)).unwrap();
    sys.settle();
    assert_eq!(sys.poll(&sub).unwrap().len(), 1);
}
